"""Global constants shared across the POD reproduction.

Units used throughout the code base:

* **time** — seconds (floats).  Microsecond-scale costs such as
  fingerprinting are expressed as fractions of a second.
* **size** — bytes (ints).
* **addresses** — 4 KB block numbers (ints).  A *block* is the
  deduplication chunk unit; the paper chunks all write data into fixed
  4 KB chunks before fingerprinting.
"""

from __future__ import annotations

#: Deduplication chunk size in bytes (the paper uses fixed 4 KB chunks).
BLOCK_SIZE: int = 4096

#: RAID-5 stripe unit used in the paper's evaluation (64 KB).
STRIPE_UNIT: int = 64 * 1024

#: Blocks per stripe unit.
BLOCKS_PER_STRIPE_UNIT: int = STRIPE_UNIT // BLOCK_SIZE

#: Fingerprint computation delay charged per 4 KB chunk on the write
#: path (the paper adds 32 us per 4 KB chunk, an overestimate for
#: modern controllers -- Section IV-A).
FINGERPRINT_DELAY: float = 32e-6

#: Size of one entry of the in-memory fingerprint index, in bytes.
#: The paper sizes the full index of 1 TB of 4 KB chunks at ~8 GB,
#: i.e. 32 bytes per entry (Section II-B).
INDEX_ENTRY_SIZE: int = 32

#: Size of one Map-table entry in NVRAM, in bytes (Section IV-D.2).
MAP_ENTRY_SIZE: int = 20

#: Select-Dedupe threshold: minimum number of redundant chunks for a
#: partially redundant request to be deduplicated (category 3).  The
#: paper uses 3 in its current design (Section III-B).
SELECT_DEDUPE_THRESHOLD: int = 3

#: iDedup minimum duplicate-sequence threshold, in chunks.  iDedup only
#: deduplicates runs of consecutive duplicate blocks at least this
#: long, which makes it skip all small requests (FAST'12 uses
#: thresholds around 8-32 KB; we default to 8 chunks = 32 KB).
IDEDUP_THRESHOLD: int = 8
