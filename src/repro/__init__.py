"""POD: Performance-Oriented I/O Deduplication -- full reproduction.

A trace-driven reproduction of *POD: Performance Oriented I/O
Deduplication for Primary Storage Systems in the Cloud* (Mao, Jiang,
Wu, Tian -- IPDPS 2014), including every substrate the evaluation
needs: a discrete-event HDD/RAID simulator, the cache stack, FIU-like
synthetic workloads, and the full set of comparison schemes.

Quick start::

    from repro import POD, SelectDedupe, Native
    from repro.experiments import run_single

    result = run_single("mail", "POD", scale=0.1)
    print(result.summary())

Package map
-----------
``repro.core``        Select-Dedupe, iCache, POD (the contribution)
``repro.baselines``   Native, Full-Dedupe, iDedup, I/O-Dedup
``repro.sim``         event engine, request model, trace replay
``repro.storage``     HDD mechanics, RAID-0/5, allocator, NVRAM
``repro.cache``       LRU, ghost caches, ARC, fixed partition
``repro.dedup``       fingerprinting, Index table, Map table
``repro.traces``      trace format, synthetic generators, analysis
``repro.metrics``     response-time collection, report rendering
``repro.experiments`` runners and per-figure experiment drivers
"""

from __future__ import annotations

from repro.baselines import FullDedupe, IDedup, IODedup, Native, SchemeConfig
from repro.core import POD, ICache, ICacheConfig, SelectDedupe
from repro.sim.replay import ReplayConfig, ReplayResult, replay_trace
from repro.traces import HOMES, MAIL, WEB_VM, Trace, TraceSpec, generate_trace

__version__ = "1.0.0"

__all__ = [
    "POD",
    "SelectDedupe",
    "ICache",
    "ICacheConfig",
    "Native",
    "FullDedupe",
    "IDedup",
    "IODedup",
    "SchemeConfig",
    "ReplayConfig",
    "ReplayResult",
    "replay_trace",
    "Trace",
    "TraceSpec",
    "generate_trace",
    "WEB_VM",
    "HOMES",
    "MAIL",
    "__version__",
]
