"""Exception hierarchy for the POD reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (e.g. an
    event scheduled in the past, or a completion for an unknown op)."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (out-of-range address,
    overlapping allocation, bad RAID geometry)."""


class CacheError(ReproError):
    """A cache invariant was violated (negative capacity, duplicate
    insert where forbidden)."""


class DedupError(ReproError):
    """A deduplication-layer invariant was violated (dangling map
    entry, refcount underflow, overwrite of a referenced block)."""


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class ConfigError(ReproError):
    """An experiment configuration is invalid."""


class FaultError(ReproError):
    """A fault-injection or recovery invariant was violated (content
    oracle mismatch, unrecoverable journal state, malformed fault
    plan)."""


class JobError(ReproError):
    """A leased-job invariant was violated (commit against the wrong
    cursor, malformed job parameters, a fenced write applied)."""


class ClusterError(ReproError):
    """A cluster-layer invariant was violated (empty hash ring,
    unknown shard owner, malformed rebalance spec, node/volume
    assignment mismatch)."""
