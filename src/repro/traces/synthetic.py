"""Seeded synthetic generators for the three FIU-like traces.

The FIU SyLab traces (web-vm, homes, mail) are not redistributable, so
the generators below synthesise request streams calibrated to every
statistic the paper publishes about them:

* Table II -- write ratio, I/O count, mean request size;
* Fig. 1 -- small writes dominate and carry the highest redundancy;
* Fig. 2 -- I/O redundancy exceeds capacity redundancy, because a
  noticeable share of redundant writes re-write the *same* location
  with the same content (temporal locality);
* Section IV-B -- the per-trace redundancy *structure* that drives the
  results: mail is rich in fully redundant writes (Select-Dedupe
  removes ~70% of its writes), homes is rich in *scattered partially
  redundant* writes (deduplicating them fragments reads and makes
  Full-Dedupe slower than Native), web-vm sits in between;
* Section II-B -- read-intensive and write-intensive phases alternate
  (what iCache exploits).

Every write request is assigned a redundancy class:

=================  ====================================================
``unique``         fresh content, never seen before
``full``           an exact copy of an earlier request's contiguous
                   run (optionally re-written to the same LBA)
``partial_seq``    a sequential duplicate run of >= threshold chunks
                   plus fresh chunks (Select-Dedupe category 3)
``partial_scat``   a few isolated duplicate chunks scattered through
                   fresh data (Select-Dedupe category 2 -- the read-
                   amplification trap)
=================  ====================================================

Generation is deterministic given ``(spec, seed, scale)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.sim.request import OpType
from repro.traces.format import Trace, TraceRecord
from repro.traces.workload import (
    ArrivalProcess,
    BurstModel,
    PhaseModel,
    PhaseProcess,
    SizeDistribution,
    ZipfChooser,
)

#: Redundancy class labels, in a fixed order for categorical draws.
CLASSES: Tuple[str, ...] = ("unique", "full", "partial_seq", "partial_scat")


@dataclass(frozen=True)
class TraceSpec:
    """Full parameterisation of one synthetic trace."""

    name: str
    #: Measured (day-15) request count at scale=1.
    n_requests: int
    #: Warm-up prefix (the paper warms with days 1-14).
    warmup_requests: int
    #: Logical address space, 4 KB blocks, at scale=1.
    logical_blocks: int
    #: Long-run write fraction (Table II).
    write_ratio: float
    #: Write-size distribution, blocks -> probability.
    write_sizes: Dict[int, float]
    #: Read-size distribution.
    read_sizes: Dict[int, float]
    #: Redundancy-class probabilities for writes (keys = CLASSES).
    class_probs: Dict[str, float]
    #: For ``full`` writes: probability the copy goes to the donor's
    #: own LBA (same-location redundancy; Fig. 2's gap).
    p_same_lba: float
    #: For ``unique`` writes: probability of overwriting an old
    #: segment instead of appending at the cursor.
    p_overwrite_unique: float = 0.25
    #: Zipf exponent for donor recency popularity (writes).
    zipf_s: float = 0.9
    #: Zipf exponent for read-target popularity.  Reads are typically
    #: more concentrated than write duplication (a small hot set of
    #: files serves most reads), which is what gives the read cache
    #: its utility in the Fig. 3 tradeoff.  ``None`` -> ``zipf_s``.
    read_zipf_s: Optional[float] = None
    #: How many recent write segments stay eligible as donors/targets.
    #: Sized so that the fingerprint working set *exceeds* the index
    #: cache at the suggested memory budget -- the same index-cache
    #: pressure the paper's full-size footprints create (Section II-B).
    recent_segments: int = 12288
    #: Arrival burstiness.
    burst: BurstModel = field(default_factory=BurstModel)
    #: Mean phase length in requests (read/write phase alternation).
    mean_phase_len: int = 400
    #: Probability a read targets a cold random location.
    p_cold_read: float = 0.10
    #: Suggested DRAM budget for the storage cache, bytes, at scale=1
    #: (mirrors the per-trace memory sizes of Section IV-A).
    memory_bytes: int = 8 * 1024 * 1024
    #: Default RNG seed (overridable in generate_trace).
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.n_requests < 1 or self.warmup_requests < 0:
            raise TraceError("request counts must be positive")
        if self.logical_blocks < 64:
            raise TraceError("logical space unreasonably small")
        if not (0.0 < self.write_ratio < 1.0):
            raise TraceError("write ratio must be in (0, 1)")
        if set(self.class_probs) != set(CLASSES):
            raise TraceError(f"class_probs must have exactly the keys {CLASSES}")
        total = sum(self.class_probs.values())
        if not (0.999 <= total <= 1.001):
            raise TraceError(f"class probabilities sum to {total}")
        if not (0.0 <= self.p_same_lba <= 1.0):
            raise TraceError("p_same_lba outside [0, 1]")

    def scaled(self, scale: float) -> "TraceSpec":
        """Proportionally scale request counts, footprint and memory.

        Keeping the footprint/memory ratio constant preserves cache
        pressure, so results at small scales stay representative.
        """
        if scale <= 0:
            raise TraceError("scale must be positive")
        return replace(
            self,
            n_requests=max(1, int(self.n_requests * scale)),
            warmup_requests=int(self.warmup_requests * scale),
            logical_blocks=max(4096, int(self.logical_blocks * scale)),
            memory_bytes=max(64 * 1024, int(self.memory_bytes * scale)),
            recent_segments=max(256, int(self.recent_segments * min(1.0, scale * 2))),
            mean_phase_len=max(50, int(self.mean_phase_len * scale)),
        )


# ----------------------------------------------------------------------
# the three paper traces (Table II: write ratio / I/Os / mean size)
# ----------------------------------------------------------------------

#: web-vm: two web servers in a VM; 69.8% writes, 154,105 I/Os,
#: 14.8 KB mean request size; moderate redundancy, mixed structure.
WEB_VM = TraceSpec(
    name="web-vm",
    n_requests=30_000,
    warmup_requests=30_000,
    logical_blocks=160 * 1024,  # 640 MiB footprint
    write_ratio=0.698,
    write_sizes={1: 0.41, 2: 0.26, 4: 0.16, 8: 0.09, 16: 0.05, 32: 0.03},
    read_sizes={1: 0.37, 2: 0.25, 4: 0.19, 8: 0.11, 16: 0.05, 32: 0.03},
    class_probs={"unique": 0.35, "full": 0.40, "partial_seq": 0.10, "partial_scat": 0.15},
    p_same_lba=0.50,
    burst=BurstModel(mean_burst_size=8.0, inter_gap=0.30),
    memory_bytes=1 * 1024 * 1024,
    seed=151,
)

#: homes: a file server; 80.5% writes, 64,819 I/Os, 13.1 KB mean size;
#: redundancy dominated by *scattered partial* duplicates, which is
#: what makes Full-Dedupe counterproductive on it (Figs. 8-9).
HOMES = TraceSpec(
    name="homes",
    n_requests=13_000,
    warmup_requests=13_000,
    logical_blocks=128 * 1024,  # 512 MiB footprint
    write_ratio=0.805,
    write_sizes={1: 0.50, 2: 0.24, 4: 0.12, 8: 0.07, 16: 0.05, 32: 0.02},
    read_sizes={1: 0.45, 2: 0.25, 4: 0.15, 8: 0.09, 16: 0.04, 32: 0.02},
    class_probs={"unique": 0.38, "full": 0.17, "partial_seq": 0.05, "partial_scat": 0.40},
    p_same_lba=0.50,
    burst=BurstModel(mean_burst_size=6.0, inter_gap=0.40),
    memory_bytes=1 * 1024 * 1024,
    seed=152,
)

#: mail: an email server; 78.5% writes, 328,145 I/Os, 40.8 KB mean
#: size; rich in fully redundant writes (Select-Dedupe removes ~70%
#: of them) including large ones, hence the big mean request size.
MAIL = TraceSpec(
    name="mail",
    n_requests=64_000,
    warmup_requests=64_000,
    logical_blocks=1024 * 1024,  # 4 GiB footprint
    write_ratio=0.785,
    write_sizes={1: 0.32, 2: 0.14, 4: 0.11, 8: 0.10, 16: 0.14, 32: 0.11, 64: 0.06, 128: 0.02},
    read_sizes={1: 0.34, 2: 0.15, 4: 0.13, 8: 0.12, 16: 0.13, 32: 0.09, 64: 0.04},
    class_probs={"unique": 0.18, "full": 0.68, "partial_seq": 0.08, "partial_scat": 0.06},
    p_same_lba=0.45,
    read_zipf_s=1.25,  # mail reads concentrate on a small hot set
    burst=BurstModel(mean_burst_size=12.0, inter_gap=0.22),
    memory_bytes=2560 * 1024,
    seed=153,
)


def paper_traces() -> Dict[str, TraceSpec]:
    """The three evaluation traces keyed by name."""
    return {spec.name: spec for spec in (WEB_VM, HOMES, MAIL)}


# ----------------------------------------------------------------------
# the generator
# ----------------------------------------------------------------------


class _GeneratorState:
    """Mutable state threaded through one trace generation."""

    def __init__(self, spec: TraceSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self.fresh_fp = itertools.count(1)
        #: Recent write segments: (lba, fps) most recent last.
        self.segments: List[Tuple[int, Tuple[int, ...]]] = []
        self.cursor = 0
        self.zipf = ZipfChooser(1, spec.zipf_s)
        self.read_zipf = ZipfChooser(
            1, spec.zipf_s if spec.read_zipf_s is None else spec.read_zipf_s
        )
        self.write_sizes = SizeDistribution.of(spec.write_sizes)
        self.read_sizes = SizeDistribution.of(spec.read_sizes)
        self.class_names = list(CLASSES)
        self.class_p = np.array([spec.class_probs[c] for c in CLASSES])

    # -- segment pool ---------------------------------------------------

    def remember(self, lba: int, fps: Tuple[int, ...]) -> None:
        self.segments.append((lba, fps))
        if len(self.segments) > self.spec.recent_segments:
            del self.segments[0 : len(self.segments) - self.spec.recent_segments]

    def pick_segment(self) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Zipf-by-recency donor choice (rank 0 = most recent)."""
        if not self.segments:
            return None
        self.zipf.resize(len(self.segments))
        rank = self.zipf.draw(self.rng)
        return self.segments[len(self.segments) - 1 - rank]

    def pick_read_segment(self) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Read-target choice (usually more skewed than donors)."""
        if not self.segments:
            return None
        self.read_zipf.resize(len(self.segments))
        rank = self.read_zipf.draw(self.rng)
        return self.segments[len(self.segments) - 1 - rank]

    def pick_segment_min_len(
        self, nblocks: int, tries: int = 8
    ) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Prefer a donor at least ``nblocks`` long.

        Large fully redundant writes (a mail server rewriting whole
        mailboxes) need donors of the same size; without this
        preference every big duplicate would be truncated to a small
        one, starving iDedup of the long runs it deduplicates.
        """
        best = None
        for _ in range(tries):
            seg = self.pick_segment()
            if seg is None:
                return None
            if len(seg[1]) >= nblocks:
                return seg
            if best is None or len(seg[1]) > len(best[1]):
                best = seg
        return best

    # -- address allocation ----------------------------------------------

    def alloc_lba(self, nblocks: int) -> int:
        """Append at the cursor, wrapping the logical space."""
        if nblocks > self.spec.logical_blocks:
            raise TraceError("request larger than the logical space")
        if self.cursor + nblocks > self.spec.logical_blocks:
            self.cursor = 0
        lba = self.cursor
        self.cursor += nblocks
        return lba

    def fresh(self, n: int) -> Tuple[int, ...]:
        return tuple(next(self.fresh_fp) for _ in range(n))


def _gen_write(state: _GeneratorState) -> Tuple[int, Tuple[int, ...]]:
    """One write request: returns (lba, fingerprints)."""
    spec, rng = state.spec, state.rng
    cls = state.class_names[int(rng.choice(len(CLASSES), p=state.class_p))]
    n = state.write_sizes.draw(rng)

    if cls in ("partial_seq", "partial_scat") and n < 4:
        # Partial redundancy needs room for a mixture; small requests
        # fall back to the dominant small-write classes.
        cls = "full" if rng.random() < 0.5 else "unique"

    donor = state.pick_segment()
    if donor is None and cls != "unique":
        cls = "unique"

    if cls == "unique":
        fps = state.fresh(n)
        if state.segments and rng.random() < spec.p_overwrite_unique:
            lba, old_fps = state.segments[
                len(state.segments) - 1 - state.zipf.draw(rng)
            ]
            n = min(n, len(old_fps))
            fps = fps[:n]
        else:
            lba = state.alloc_lba(n)
        return lba, fps

    assert donor is not None
    d_lba, d_fps = donor

    if cls == "full":
        better = state.pick_segment_min_len(n)
        if better is not None:
            d_lba, d_fps = better
        n = min(n, len(d_fps))
        off = 0 if n == len(d_fps) else int(rng.integers(0, len(d_fps) - n + 1))
        fps = d_fps[off : off + n]
        if rng.random() < spec.p_same_lba:
            lba = d_lba + off  # re-write the same location, same content
        else:
            lba = state.alloc_lba(n)
        return lba, fps

    if cls == "partial_seq":
        # A sequential duplicate run (>= 3 chunks) plus fresh tail.
        run = max(3, n // 2)
        run = min(run, len(d_fps), n - 1)
        if run < 3:
            return state.alloc_lba(n), state.fresh(n)
        off = int(rng.integers(0, len(d_fps) - run + 1))
        fps = tuple(d_fps[off : off + run]) + state.fresh(n - run)
        return state.alloc_lba(n), fps

    # partial_scat: isolated duplicate chunks from *different* donors,
    # scattered through fresh data.  Every second position keeps the
    # duplicates isolated (runs of length 1), so the category-3
    # threshold is never met and Select-Dedupe bypasses the request,
    # while Full-Dedupe fragments both the write and later reads.
    k = max(1, n // 3)
    positions = sorted(
        int(p) for p in rng.choice(np.arange(0, n, 2), size=min(k, (n + 1) // 2), replace=False)
    )
    fps_list = list(state.fresh(n))
    for pos in positions:
        seg = state.pick_segment()
        if seg is None:
            continue
        s_lba, s_fps = seg
        fps_list[pos] = s_fps[int(state.rng.integers(0, len(s_fps)))]
    return state.alloc_lba(n), tuple(fps_list)


def _gen_read(state: _GeneratorState) -> Tuple[int, int]:
    """One read request: returns (lba, nblocks)."""
    spec, rng = state.spec, state.rng
    n = state.read_sizes.draw(rng)
    seg = None if rng.random() < spec.p_cold_read else state.pick_read_segment()
    if seg is None:
        lba = int(rng.integers(0, max(1, spec.logical_blocks - n)))
        return lba, n
    s_lba, s_fps = seg
    # Start inside the segment but allow the read to run past it into
    # neighbouring data (sequential read-ahead over adjacent files);
    # only the logical space bounds the length.
    off = int(rng.integers(0, len(s_fps)))
    lba = s_lba + off
    n = min(n, spec.logical_blocks - lba)
    return lba, max(1, n)


def generate_trace(
    spec: TraceSpec,
    seed: Optional[int] = None,
    scale: float = 1.0,
) -> Trace:
    """Generate one synthetic trace.

    Parameters
    ----------
    spec:
        The trace parameterisation (see :data:`WEB_VM` etc.).
    seed:
        RNG seed; defaults to ``spec.seed``.
    scale:
        Proportional scaling of request counts / footprint / memory
        (benches use small scales for speed; 1.0 is the calibrated
        default).
    """
    if scale != 1.0:
        spec = spec.scaled(scale)
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    state = _GeneratorState(spec, rng)
    arrivals = ArrivalProcess(spec.burst, rng)
    phases = PhaseProcess(
        PhaseModel(write_ratio=spec.write_ratio, mean_phase_len=spec.mean_phase_len),
        rng,
    )

    total = spec.warmup_requests + spec.n_requests
    records: List[TraceRecord] = []
    for _ in range(total):
        t = arrivals.next_time()
        if phases.next_is_write() or not state.segments:
            lba, fps = _gen_write(state)
            state.remember(lba, fps)
            records.append(
                TraceRecord(time=t, op=OpType.WRITE, lba=lba, nblocks=len(fps), fingerprints=fps)
            )
        else:
            lba, n = _gen_read(state)
            records.append(TraceRecord(time=t, op=OpType.READ, lba=lba, nblocks=n))

    return Trace(
        name=spec.name,
        records=records,
        logical_blocks=spec.logical_blocks,
        warmup_count=spec.warmup_requests,
    )


# ----------------------------------------------------------------------
# multi-tenant clone families (the cross-VM cloud workload)
# ----------------------------------------------------------------------

#: Fingerprint-space stride between tenants of one clone family.
#: Privatised (diverged) content of tenant *k* is shifted by
#: ``k * FP_TENANT_STRIDE`` so it can never collide with the base
#: image or another tenant's divergence, while undiverged content
#: keeps the base fingerprints and stays cross-tenant deduplicable.
FP_TENANT_STRIDE: int = 1 << 44

#: Fingerprint-space stride between *unrelated* base workloads.
#: Generators restart their fingerprint counters at 1, so replaying
#: two different traces against one shared dedup domain would
#: otherwise alias unrelated content as duplicates.
FP_FAMILY_STRIDE: int = 1 << 54


def salt_fingerprints(trace: Trace, salt: int, name: Optional[str] = None) -> Trace:
    """Shift a trace's whole fingerprint space by ``salt``.

    Used when merging *unrelated* workloads onto one shared dedup
    domain: each family gets a disjoint fingerprint range so only
    genuine (intra-family) redundancy deduplicates.  ``salt=0`` with
    no rename returns the trace unchanged.
    """
    if salt < 0:
        raise TraceError(f"negative fingerprint salt {salt}")
    if salt == 0 and name is None:
        return trace
    records = [
        rec
        if rec.fingerprints is None
        else replace(rec, fingerprints=tuple(fp + salt for fp in rec.fingerprints))
        for rec in trace.records
    ]
    return Trace(
        name=trace.name if name is None else name,
        records=records,
        logical_blocks=trace.logical_blocks,
        warmup_count=trace.warmup_count,
    )


def clone_tenants(
    base: Trace,
    copies: int,
    divergence: float = 0.15,
    arrival_skew: float = 0.5,
    seed: int = 77,
) -> List[Trace]:
    """K tenant volumes cloned from one base image, with divergence.

    Models the paper's headline cloud scenario (Section I): many
    VMs/tenants provisioned from the same golden image whose contents
    then *diverge* per tenant.  Tenant 0 replays the pristine base
    stream; every other tenant ``k``:

    * privatises a random ``divergence`` fraction of the base image's
      distinct content -- each chosen fingerprint is consistently
      remapped into tenant ``k``'s private fingerprint range, so
      diverged content still deduplicates *within* the tenant but
      never across tenants, while the remaining content stays
      bit-identical to the base image and collapses cross-volume;
    * runs at a skewed arrival rate ``(k+1) ** -arrival_skew`` (its
      timestamps stretch accordingly), giving the merged stream the
      uneven per-tenant intensity real multi-VM hosts see (heavy
      tenants dominate early, light tenants trickle).

    Deterministic given ``(base, copies, divergence, arrival_skew,
    seed)``.  ``copies=1`` returns ``[base]`` unchanged.
    """
    if copies < 1:
        raise TraceError(f"need at least one tenant copy, got {copies}")
    if not (0.0 <= divergence <= 1.0):
        raise TraceError("divergence outside [0, 1]")
    if arrival_skew < 0.0:
        raise TraceError("arrival skew must be non-negative")
    if copies == 1:
        return [base]

    # Distinct base fingerprints, in first-occurrence order (the draw
    # order below must be independent of dict/set iteration).
    seen: Dict[int, None] = {}
    for rec in base.records:
        if rec.fingerprints is not None:
            for fp in rec.fingerprints:
                if fp not in seen:
                    seen[fp] = None
    base_fps = list(seen)

    tenants: List[Trace] = []
    for k in range(copies):
        name = f"{base.name}/t{k}"
        if k == 0:
            # The pristine golden image, at full rate.
            tenants.append(
                Trace(
                    name=name,
                    records=list(base.records),
                    logical_blocks=base.logical_blocks,
                    warmup_count=base.warmup_count,
                )
            )
            continue
        rng = np.random.default_rng([seed, k])
        draws = rng.random(len(base_fps)) if base_fps else np.empty(0)
        salt = k * FP_TENANT_STRIDE
        remap = {
            fp: fp + salt
            for fp, draw in zip(base_fps, draws)
            if draw < divergence
        }
        rate = float(k + 1) ** (-arrival_skew)
        records: List[TraceRecord] = []
        for rec in base.records:
            t = rec.time / rate
            if rec.fingerprints is None:
                records.append(replace(rec, time=t))
            else:
                fps = tuple(remap.get(fp, fp) for fp in rec.fingerprints)
                records.append(
                    TraceRecord(
                        time=t,
                        op=rec.op,
                        lba=rec.lba,
                        nblocks=rec.nblocks,
                        fingerprints=fps,
                    )
                )
        tenants.append(
            Trace(
                name=name,
                records=records,
                logical_blocks=base.logical_blocks,
                warmup_count=base.warmup_count,
            )
        )
    return tenants
