"""Columnar (structure-of-arrays) trace representation.

The object replay path materialises one Python object per request; at
fleet scale that caps every experiment at interpreter speed.  A
:class:`ColumnarTrace` stores the same information as a
:class:`~repro.traces.format.Trace` in NumPy columns:

* ``times`` / ``ops`` / ``lbas`` / ``nblocks`` -- one entry per
  request (``ops`` is 0 for reads, 1 for writes);
* ``fp_offsets`` / ``fp_ids`` -- a CSR layout of the per-block write
  fingerprints: request ``i``'s chunks are
  ``fp_ids[fp_offsets[i]:fp_offsets[i+1]]`` (empty for reads);
* ``pool`` -- the interned fingerprint values.  Fingerprint *values*
  are arbitrary-precision ints (FIU traces carry 128-bit MD5s), so the
  pool stays a Python list and the columns index into it with small
  dtypes.

The representation is lossless: ``from_trace`` / ``to_trace`` round-
trip exactly (property-tested), and the columnar replay driver in
:mod:`repro.sim.batch` is bit-identical to the object path.

Batch classification -- the vectorized half of POD's Data
Deduplicator -- happens here: :func:`first_occurrence_mask` marks the
chunks whose fingerprint has never been seen before (those *cannot*
hit the Index table, letting schemes skip the LRU probe), and
:func:`classify_chunks` buckets every chunk as unique / cold / hot by
global occurrence count (the hot set is what POD's Index table is
designed to capture).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.sim.request import IORequest, OpType
from repro.traces.format import Trace, TraceRecord

__all__ = [
    "ColumnarTrace",
    "MergedColumns",
    "merge_columnar",
    "first_occurrence_mask",
    "classify_chunks",
    "load_trace_columnar",
]

#: ``ops`` column encoding.
OP_READ = 0
OP_WRITE = 1


class ColumnarTrace:
    """One trace as NumPy columns plus an interned fingerprint pool."""

    __slots__ = (
        "name",
        "logical_blocks",
        "warmup_count",
        "times",
        "ops",
        "lbas",
        "nblocks",
        "fp_offsets",
        "fp_ids",
        "pool",
    )

    def __init__(
        self,
        name: str,
        logical_blocks: int,
        warmup_count: int,
        times: np.ndarray,
        ops: np.ndarray,
        lbas: np.ndarray,
        nblocks: np.ndarray,
        fp_offsets: np.ndarray,
        fp_ids: np.ndarray,
        pool: List[int],
        validate: bool = True,
    ) -> None:
        self.name = name
        self.logical_blocks = logical_blocks
        self.warmup_count = warmup_count
        self.times = times
        self.ops = ops
        self.lbas = lbas
        self.nblocks = nblocks
        self.fp_offsets = fp_offsets
        self.fp_ids = fp_ids
        self.pool = pool
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # validation (vectorized mirror of Trace/IORequest checks)
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        n = len(self.times)
        if not (
            len(self.ops) == len(self.lbas) == len(self.nblocks) == n
            and len(self.fp_offsets) == n + 1
        ):
            raise TraceError("columnar trace: column lengths disagree")
        if self.logical_blocks <= 0:
            raise TraceError("trace needs a positive logical space")
        if not (0 <= self.warmup_count <= n):
            raise TraceError("warmup count outside the trace")
        if n == 0:
            return
        if np.any(np.diff(self.times) < 0):
            raise TraceError("columnar trace goes back in time")
        if float(self.times[0]) < 0:
            raise TraceError("negative timestamp")
        if np.any(self.nblocks < 1):
            raise TraceError("request length must be >= 1 block")
        if np.any(self.lbas < 0):
            raise TraceError("negative LBA")
        if np.any(self.lbas + self.nblocks > self.logical_blocks):
            raise TraceError(
                f"record touches an LBA outside logical space {self.logical_blocks}"
            )
        counts = np.diff(self.fp_offsets)
        writes = self.ops == OP_WRITE
        if np.any(counts[writes] != self.nblocks[writes]):
            raise TraceError("write fingerprint count disagrees with nblocks")
        if np.any(counts[~writes] != 0):
            raise TraceError("read request must not carry fingerprints")
        if len(self.fp_ids) and (
            int(self.fp_ids.min()) < 0 or int(self.fp_ids.max()) >= len(self.pool)
        ):
            raise TraceError("fingerprint id outside the interned pool")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    @property
    def total_chunks(self) -> int:
        """Total write chunks (= fingerprint column length)."""
        return len(self.fp_ids)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Intern a request-level trace into columns (lossless)."""
        n = len(trace.records)
        times = np.empty(n, dtype=np.float64)
        ops = np.empty(n, dtype=np.uint8)
        lbas = np.empty(n, dtype=np.int64)
        nblocks = np.empty(n, dtype=np.int64)
        fp_offsets = np.zeros(n + 1, dtype=np.int64)
        fp_ids_list: List[int] = []
        pool: List[int] = []
        intern: Dict[int, int] = {}
        append_fp = fp_ids_list.append
        for i, rec in enumerate(trace.records):
            times[i] = rec.time
            ops[i] = OP_WRITE if rec.op is OpType.WRITE else OP_READ
            lbas[i] = rec.lba
            nblocks[i] = rec.nblocks
            if rec.fingerprints is not None:
                for fp in rec.fingerprints:
                    fid = intern.get(fp)
                    if fid is None:
                        fid = len(pool)
                        intern[fp] = fid
                        pool.append(fp)
                    append_fp(fid)
            fp_offsets[i + 1] = len(fp_ids_list)
        return cls(
            name=trace.name,
            logical_blocks=trace.logical_blocks,
            warmup_count=trace.warmup_count,
            times=times,
            ops=ops,
            lbas=lbas,
            nblocks=nblocks,
            fp_offsets=fp_offsets,
            fp_ids=np.asarray(fp_ids_list, dtype=np.int64),
            pool=pool,
            validate=False,  # the Trace already validated every record
        )

    def to_trace(self) -> Trace:
        """Materialise back to a request-level :class:`Trace`."""
        records: List[TraceRecord] = []
        pool = self.pool
        offsets = self.fp_offsets
        fp_ids = self.fp_ids
        for i in range(len(self.times)):
            is_write = self.ops[i] == OP_WRITE
            fps: Optional[Tuple[int, ...]] = None
            if is_write:
                fps = tuple(pool[j] for j in fp_ids[offsets[i] : offsets[i + 1]])
            records.append(
                TraceRecord(
                    time=float(self.times[i]),
                    op=OpType.WRITE if is_write else OpType.READ,
                    lba=int(self.lbas[i]),
                    nblocks=int(self.nblocks[i]),
                    fingerprints=fps,
                )
            )
        return Trace(
            name=self.name,
            records=records,
            logical_blocks=self.logical_blocks,
            warmup_count=self.warmup_count,
        )

    # ------------------------------------------------------------------
    # worker shipping (process-parallel shard replay)
    # ------------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """A plain-dict form for cheap pickling to worker processes.

        NumPy arrays pickle as flat buffers -- orders of magnitude
        cheaper than a deep list of per-record objects, which is what
        makes per-shard process-parallel replay worth its dispatch
        cost.
        """
        return {
            "name": self.name,
            "logical_blocks": self.logical_blocks,
            "warmup_count": self.warmup_count,
            "times": self.times,
            "ops": self.ops,
            "lbas": self.lbas,
            "nblocks": self.nblocks,
            "fp_offsets": self.fp_offsets,
            "fp_ids": self.fp_ids,
            "pool": self.pool,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ColumnarTrace":
        """Rebuild from :meth:`payload` output (validated on entry)."""
        return cls(validate=True, **payload)


# ----------------------------------------------------------------------
# multi-volume merge
# ----------------------------------------------------------------------


class MergedColumns:
    """N volume streams merge-sorted into one global columnar stream.

    The columnar mirror of ``replay_traces``'s ``_merge_streams``:
    requests are rebased into their volume's slice of the shared
    domain, global request ids are positional, and the merge is stable
    (equal timestamps keep volume order).  ``measured`` flags requests
    past their own volume's warm-up prefix.
    """

    __slots__ = (
        "times",
        "ops",
        "lbas",
        "nblocks",
        "volume_ids",
        "measured",
        "fp_offsets",
        "fp_ids",
        "pool",
        "first_unique",
    )

    def __init__(
        self,
        times: np.ndarray,
        ops: np.ndarray,
        lbas: np.ndarray,
        nblocks: np.ndarray,
        volume_ids: np.ndarray,
        measured: np.ndarray,
        fp_offsets: np.ndarray,
        fp_ids: np.ndarray,
        pool: List[int],
        first_unique: np.ndarray,
    ) -> None:
        self.times = times
        self.ops = ops
        self.lbas = lbas
        self.nblocks = nblocks
        self.volume_ids = volume_ids
        self.measured = measured
        self.fp_offsets = fp_offsets
        self.fp_ids = fp_ids
        self.pool = pool
        #: Per-chunk flag: first global occurrence of this fingerprint
        #: (in merged stream order) -- such a chunk can never hit the
        #: Index table, so batch planners skip its LRU probe.
        self.first_unique = first_unique

    def __len__(self) -> int:
        return len(self.times)

    def iter_requests(self) -> Iterator[IORequest]:
        """Materialise :class:`IORequest` objects in merged order.

        Uses :meth:`IORequest.raw` (no re-validation): every record
        came through a validated :class:`Trace`/:class:`ColumnarTrace`.
        """
        pool = self.pool
        offsets = self.fp_offsets
        fp_list = self.fp_ids.tolist()
        times = self.times.tolist()
        lbas = self.lbas.tolist()
        nblocks = self.nblocks.tolist()
        vids = self.volume_ids.tolist()
        is_write = self.ops == OP_WRITE
        raw = IORequest.raw
        read_op = OpType.READ
        write_op = OpType.WRITE
        for i in range(len(times)):
            if is_write[i]:
                fps: Optional[Tuple[int, ...]] = tuple(
                    pool[j] for j in fp_list[offsets[i] : offsets[i + 1]]
                )
                op = write_op
            else:
                fps = None
                op = read_op
            yield raw(times[i], op, lbas[i], nblocks[i], fps, i, vids[i])


def merge_columnar(
    ctraces: Sequence[ColumnarTrace], bases: Sequence[int]
) -> MergedColumns:
    """Stable-merge N columnar volumes into one global stream.

    ``bases`` are the per-volume LBA offsets assigned by the
    :class:`~repro.storage.namespace.NamespaceMapper`.  Equivalent to
    ``heapq.merge`` keyed on timestamp with ties broken by volume
    order -- implemented as one stable argsort over the concatenated
    columns.
    """
    if len(ctraces) != len(bases):
        raise TraceError("need one base offset per volume")
    if not ctraces:
        raise TraceError("merge_columnar needs at least one volume")

    if len(ctraces) == 1:
        # Single volume: times are already sorted (validated), so the
        # stable argsort below is the identity permutation and the
        # merge can share the trace's columns directly.
        ct = ctraces[0]
        base = bases[0]
        n = len(ct)
        return MergedColumns(
            times=ct.times,
            ops=ct.ops,
            lbas=ct.lbas if base == 0 else ct.lbas + base,
            nblocks=ct.nblocks,
            volume_ids=np.zeros(n, dtype=np.int64),
            measured=np.arange(n, dtype=np.int64) >= ct.warmup_count,
            fp_offsets=ct.fp_offsets,
            fp_ids=ct.fp_ids,
            pool=ct.pool,
            first_unique=first_occurrence_mask(ct.fp_ids),
        )

    # Unify the fingerprint pools (chunk ids remapped into the merged
    # pool; values can exceed int64 so the pool stays a Python list).
    pool: List[int] = []
    intern: Dict[int, int] = {}
    remapped: List[np.ndarray] = []
    for ct in ctraces:
        remap = np.empty(len(ct.pool), dtype=np.int64)
        for local_id, fp in enumerate(ct.pool):
            fid = intern.get(fp)
            if fid is None:
                fid = len(pool)
                intern[fp] = fid
                pool.append(fp)
            remap[local_id] = fid
        remapped.append(
            remap[ct.fp_ids] if len(ct.fp_ids) else np.empty(0, dtype=np.int64)
        )

    times = np.concatenate([ct.times for ct in ctraces])
    # Stable sort on time == heapq.merge order: ties keep concatenation
    # order, which is volume order then within-volume order.
    order = np.argsort(times, kind="stable")

    ops = np.concatenate([ct.ops for ct in ctraces])[order]
    lbas = np.concatenate(
        [ct.lbas + base for ct, base in zip(ctraces, bases)]
    )[order]
    nblocks = np.concatenate([ct.nblocks for ct in ctraces])[order]
    volume_ids = np.concatenate(
        [np.full(len(ct), vid, dtype=np.int64) for vid, ct in enumerate(ctraces)]
    )[order]
    measured = np.concatenate(
        [
            np.arange(len(ct), dtype=np.int64) >= ct.warmup_count
            for ct in ctraces
        ]
    )[order]

    # Re-gather the CSR fingerprint columns in merged request order.
    chunk_counts = np.concatenate(
        [np.diff(ct.fp_offsets) for ct in ctraces]
    )[order]
    fp_offsets = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(chunk_counts, out=fp_offsets[1:])
    all_ids = (
        np.concatenate(remapped) if pool else np.empty(0, dtype=np.int64)
    )
    src_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(np.concatenate(
            [np.diff(ct.fp_offsets) for ct in ctraces]
        ))]
    )
    fp_ids = np.empty(len(all_ids), dtype=np.int64)
    pos = 0
    for src_row in order.tolist():
        a = src_offsets[src_row]
        b = src_offsets[src_row + 1]
        if b > a:
            fp_ids[pos : pos + (b - a)] = all_ids[a:b]
            pos += b - a

    return MergedColumns(
        times=times[order],
        ops=ops,
        lbas=lbas,
        nblocks=nblocks,
        volume_ids=volume_ids,
        measured=measured,
        fp_offsets=fp_offsets,
        fp_ids=fp_ids,
        pool=pool,
        first_unique=first_occurrence_mask(fp_ids),
    )


# ----------------------------------------------------------------------
# vectorized fingerprint classification
# ----------------------------------------------------------------------


def first_occurrence_mask(fp_ids: np.ndarray) -> np.ndarray:
    """Boolean mask: chunk ``k`` is the first occurrence of its
    fingerprint in stream order.

    A first-occurrence chunk cannot be present in any Index table (it
    was never admitted) nor in any ghost index (never evicted), so the
    batch planner may replace its index probe with the probe's exact
    miss side effects.
    """
    mask = np.zeros(len(fp_ids), dtype=bool)
    if len(fp_ids):
        _, first_idx = np.unique(fp_ids, return_index=True)
        mask[first_idx] = True
    return mask


def classify_chunks(
    fp_ids: np.ndarray, hot_threshold: int = 3
) -> Dict[str, int]:
    """Bucket every write chunk by global fingerprint popularity.

    * ``unique`` -- its fingerprint occurs exactly once in the stream;
    * ``cold``   -- duplicated, but fewer than ``hot_threshold`` times;
    * ``hot``    -- duplicated ``hot_threshold`` or more times (the
      working set POD's hot-entry-only Index table is built to hold).

    Pure observation over the columns (one ``bincount``); the replay
    drivers use :func:`first_occurrence_mask` for the behavioural
    shortcut and this for reporting.
    """
    if hot_threshold < 2:
        raise TraceError("hot_threshold must be >= 2")
    total = int(len(fp_ids))
    if total == 0:
        return {"chunks": 0, "unique": 0, "cold": 0, "hot": 0, "distinct": 0}
    counts = np.bincount(fp_ids)
    per_chunk = counts[fp_ids]
    unique = int(np.count_nonzero(per_chunk == 1))
    hot = int(np.count_nonzero(per_chunk >= hot_threshold))
    return {
        "chunks": total,
        "unique": unique,
        "cold": total - unique - hot,
        "hot": hot,
        "distinct": int(np.count_nonzero(counts)),
    }


# ----------------------------------------------------------------------
# native columnar loader (text trace format)
# ----------------------------------------------------------------------


def load_trace_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Parse a saved trace file directly into columns.

    The columnar twin of :func:`repro.traces.format.load_trace`:
    requests never exist as per-record objects, only as rows in the
    output arrays (the fingerprint pool is interned during the scan).
    """
    path = Path(path)
    name = path.stem
    logical_blocks: Optional[int] = None
    warmup_count = 0
    times: List[float] = []
    ops: List[int] = []
    lbas: List[int] = []
    nblocks: List[int] = []
    offsets: List[int] = [0]
    fp_ids: List[int] = []
    pool: List[int] = []
    intern: Dict[int, int] = {}
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) >= 2 and parts[0] == "trace":
                    name = parts[1]
                elif len(parts) >= 2 and parts[0] == "logical_blocks":
                    logical_blocks = int(parts[1])
                elif len(parts) >= 2 and parts[0] == "warmup_count":
                    warmup_count = int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 5:
                raise TraceError(
                    f"{path}:{lineno}: expected 5 fields, got {len(parts)}"
                )
            time_s, op_s, lba_s, nblocks_s, fps_s = parts
            if op_s == "W":
                ops.append(OP_WRITE)
            elif op_s == "R":
                ops.append(OP_READ)
            else:
                raise TraceError(f"{path}:{lineno}: bad op {op_s!r}")
            times.append(float(time_s))
            lbas.append(int(lba_s))
            nblocks.append(int(nblocks_s))
            if fps_s != "-":
                for tok in fps_s.split(","):
                    fp = int(tok)
                    fid = intern.get(fp)
                    if fid is None:
                        fid = len(pool)
                        intern[fp] = fid
                        pool.append(fp)
                    fp_ids.append(fid)
            offsets.append(len(fp_ids))
    if logical_blocks is None:
        logical_blocks = max(
            (lba + n for lba, n in zip(lbas, nblocks)), default=1
        )
    return ColumnarTrace(
        name=name,
        logical_blocks=logical_blocks,
        warmup_count=warmup_count,
        times=np.asarray(times, dtype=np.float64),
        ops=np.asarray(ops, dtype=np.uint8),
        lbas=np.asarray(lbas, dtype=np.int64),
        nblocks=np.asarray(nblocks, dtype=np.int64),
        fp_offsets=np.asarray(offsets, dtype=np.int64),
        fp_ids=np.asarray(fp_ids, dtype=np.int64),
        pool=pool,
    )
