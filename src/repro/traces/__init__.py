"""Trace infrastructure.

The paper replays three FIU SyLab traces (web-vm, homes, mail)
collected beneath the buffer cache, with per-chunk content hashes in
the records.  Those traces are not redistributable, so this package
provides:

* :mod:`repro.traces.format` -- a trace record/container and an
  FIU-blkparse-like text serialisation;
* :mod:`repro.traces.workload` -- reusable workload primitives
  (bounded Zipf popularity, burst-phase arrival process, size
  distributions);
* :mod:`repro.traces.synthetic` -- seeded generators calibrated to
  every published statistic of the three traces (Table II, Fig. 1,
  Fig. 2, Section IV);
* :mod:`repro.traces.stats` -- the workload-analysis code that
  recomputes those statistics from any trace (used both to validate
  the generators and to regenerate Figs. 1-2 and Table II).
"""

from __future__ import annotations

from repro.traces.fiu import load_fiu_trace, reconstruct_requests, write_fiu
from repro.traces.format import Trace, TraceRecord, load_trace, save_trace
from repro.traces.synthetic import (
    HOMES,
    MAIL,
    TraceSpec,
    WEB_VM,
    generate_trace,
    paper_traces,
)
from repro.traces.stats import (
    io_vs_capacity_redundancy,
    redundancy_by_size,
    trace_characteristics,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "load_trace",
    "save_trace",
    "load_fiu_trace",
    "write_fiu",
    "reconstruct_requests",
    "TraceSpec",
    "WEB_VM",
    "HOMES",
    "MAIL",
    "generate_trace",
    "paper_traces",
    "trace_characteristics",
    "redundancy_by_size",
    "io_vs_capacity_redundancy",
]
