"""FIU SyLab blkparse-style per-block records and request reconstruction.

The traces the paper replays store one record *per fixed-size chunk*,
each carrying the chunk's content hash; the authors note that "the
original requests are reconstructed according to their timestamp, LBA
and length" (Section IV-A).  This module provides both directions so
users holding real FIU-style traces can replay them through this
library:

* :func:`explode_trace` / :func:`write_fiu` -- split a request-level
  :class:`~repro.traces.format.Trace` into per-block records (useful
  for round-trip testing and for emitting FIU-compatible files);
* :func:`read_fiu` / :func:`reconstruct_requests` -- parse per-block
  records and merge runs with identical timestamp and operation and
  consecutive addresses back into multi-block requests.

Record line format (whitespace-separated, one 4 KB block each)::

    <timestamp> <pid> <process> <lba> <blocks> <R|W> <major> <minor> <hash>

``lba``/``blocks`` are in 4 KB units; ``hash`` is the chunk's content
hash in hex (``-`` for reads).  Real FIU traces use 512-byte sector
addressing and MD5 hashes; :func:`read_fiu` accepts a
``sector_addressing=True`` flag that converts 512-byte sectors to 4 KB
blocks on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import TraceError
from repro.sim.request import OpType
from repro.traces.format import Trace, TraceRecord

if TYPE_CHECKING:
    from repro.traces.columnar import ColumnarTrace

#: 4 KB blocks per 512-byte sector addressing unit.
SECTORS_PER_BLOCK = 8


@dataclass(frozen=True)
class FiuRecord:
    """One per-block record of an FIU-style trace."""

    time: float
    pid: int
    process: str
    lba: int
    op: OpType
    fingerprint: Optional[int]

    def line(self) -> str:
        fp = f"{self.fingerprint:032x}" if self.fingerprint is not None else "-"
        # repr keeps the full float precision so a write/read round
        # trip reproduces timestamps exactly.
        return (
            f"{self.time!r} {self.pid} {self.process} {self.lba} 1 "
            f"{self.op.value} 8 0 {fp}"
        )


def explode_trace(trace: Trace, pid: int = 1000, process: str = "repro") -> Iterator[FiuRecord]:
    """Split every request into per-block FIU records (same timestamp)."""
    for rec in trace.records:
        for i in range(rec.nblocks):
            yield FiuRecord(
                time=rec.time,
                pid=pid,
                process=process,
                lba=rec.lba + i,
                op=rec.op,
                fingerprint=rec.fingerprints[i] if rec.fingerprints else None,
            )


def write_fiu(trace: Trace, path: Union[str, Path]) -> int:
    """Write a trace as per-block FIU records; returns the line count."""
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        for record in explode_trace(trace):
            fh.write(record.line() + "\n")
            count += 1
    return count


def read_fiu(
    path: Union[str, Path], sector_addressing: bool = False
) -> List[FiuRecord]:
    """Parse per-block records from a file.

    With ``sector_addressing`` the lba field is interpreted in
    512-byte sectors (the native FIU unit) and converted to 4 KB
    blocks; records not aligned to a 4 KB boundary are rejected.
    """
    path = Path(path)
    out: List[FiuRecord] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 9:
                raise TraceError(f"{path}:{lineno}: expected 9 fields, got {len(parts)}")
            ts, pid, process, lba, _blocks, op_s, _major, _minor, digest = parts
            try:
                op = OpType(op_s)
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: bad op {op_s!r}") from exc
            address = int(lba)
            if sector_addressing:
                if address % SECTORS_PER_BLOCK:
                    raise TraceError(
                        f"{path}:{lineno}: sector address {address} not 4 KB aligned"
                    )
                address //= SECTORS_PER_BLOCK
            fingerprint = None if digest == "-" else int(digest, 16)
            if op is OpType.WRITE and fingerprint is None:
                raise TraceError(f"{path}:{lineno}: write record without a hash")
            out.append(
                FiuRecord(
                    time=float(ts),
                    pid=int(pid),
                    process=process,
                    lba=address,
                    op=op,
                    fingerprint=fingerprint,
                )
            )
    return out


def reconstruct_requests(
    records: Iterable[FiuRecord],
    time_epsilon: float = 0.0,
) -> List[TraceRecord]:
    """Merge per-block records back into multi-block requests.

    Consecutive records belong to the same request when they share the
    operation, their timestamps differ by at most ``time_epsilon``,
    and their addresses are consecutive -- the paper's "timestamp, LBA
    and length" rule.  Records must be in file order (FIU traces are
    time-ordered).
    """
    out: List[TraceRecord] = []
    run: List[FiuRecord] = []

    def flush() -> None:
        if not run:
            return
        fps: Optional[Tuple[int, ...]] = None
        if run[0].op is OpType.WRITE:
            fps = tuple(r.fingerprint for r in run)  # type: ignore[misc]
        out.append(
            TraceRecord(
                time=run[0].time,
                op=run[0].op,
                lba=run[0].lba,
                nblocks=len(run),
                fingerprints=fps,
            )
        )
        run.clear()

    for record in records:
        if run and not (
            record.op is run[0].op
            and record.lba == run[-1].lba + 1
            and record.time - run[0].time <= time_epsilon
        ):
            flush()
        run.append(record)
    flush()
    return out


def load_fiu_trace(
    path: Union[str, Path],
    name: Optional[str] = None,
    logical_blocks: Optional[int] = None,
    warmup_count: int = 0,
    sector_addressing: bool = False,
    time_epsilon: float = 0.0,
) -> Trace:
    """Read + reconstruct an FIU-style file into a replayable Trace."""
    path = Path(path)
    requests = reconstruct_requests(
        read_fiu(path, sector_addressing=sector_addressing),
        time_epsilon=time_epsilon,
    )
    if logical_blocks is None:
        logical_blocks = max((r.lba + r.nblocks for r in requests), default=1)
    return Trace(
        name=name if name is not None else path.stem,
        records=requests,
        logical_blocks=logical_blocks,
        warmup_count=warmup_count,
    )


def load_fiu_trace_columnar(
    path: Union[str, Path],
    name: Optional[str] = None,
    logical_blocks: Optional[int] = None,
    warmup_count: int = 0,
    sector_addressing: bool = False,
    time_epsilon: float = 0.0,
) -> "ColumnarTrace":
    """Read an FIU-style file straight into a ColumnarTrace.

    FIU parsing is dominated by the record-reconstruction pass (sector
    coalescing, timestamp repair), which inherently assembles
    per-request records; the columnar interning happens immediately
    after, so callers feeding the batch replay driver never hold the
    record list beyond this call.
    """
    from repro.traces.columnar import ColumnarTrace

    return ColumnarTrace.from_trace(
        load_fiu_trace(
            path,
            name=name,
            logical_blocks=logical_blocks,
            warmup_count=warmup_count,
            sector_addressing=sector_addressing,
            time_epsilon=time_epsilon,
        )
    )
