"""Trace records and serialisation.

A trace is an ordered sequence of block-level requests.  Write records
carry one fingerprint per 4 KB block -- exactly like the FIU traces,
whose records include an MD5 of every block's content ("The hash
values of the data chunks are also included with other attributes of
replayed requests", Section IV-A).

The on-disk format is a line-oriented text file, one request per
line::

    <time> <R|W> <lba> <nblocks> [fp1,fp2,...]

which keeps traces diffable and easy to produce from real blkparse
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import TraceError
from repro.sim.request import IORequest, OpType


@dataclass(frozen=True)
class TraceRecord:
    """One request in a trace (an immutable mirror of IORequest)."""

    time: float
    op: OpType
    lba: int
    nblocks: int
    fingerprints: Optional[Tuple[int, ...]] = None

    def to_request(self, req_id: int = -1) -> IORequest:
        return IORequest(
            time=self.time,
            op=self.op,
            lba=self.lba,
            nblocks=self.nblocks,
            fingerprints=self.fingerprints,
            req_id=req_id,
        )

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE


@dataclass
class Trace:
    """An ordered request sequence plus replay metadata.

    Attributes
    ----------
    name:
        Trace identity ("web-vm", "homes", "mail", ...).
    records:
        The requests, ordered by non-decreasing timestamp.
    logical_blocks:
        Size of the logical address space the trace touches.
    warmup_count:
        How many leading records are warm-up (the paper warms the
        caches with days 1-14 and measures day 15); the replay
        harness excludes them from the metrics.
    """

    name: str
    records: List[TraceRecord]
    logical_blocks: int
    warmup_count: int = 0

    def __post_init__(self) -> None:
        if self.logical_blocks <= 0:
            raise TraceError("trace needs a positive logical space")
        if not (0 <= self.warmup_count <= len(self.records)):
            raise TraceError("warmup count outside the trace")
        last = -1.0
        for i, rec in enumerate(self.records):
            if rec.time < last:
                raise TraceError(f"record {i} goes back in time")
            last = rec.time
            if rec.lba + rec.nblocks > self.logical_blocks:
                raise TraceError(
                    f"record {i} touches LBA {rec.lba + rec.nblocks - 1} outside "
                    f"logical space {self.logical_blocks}"
                )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def measured_records(self) -> List[TraceRecord]:
        """The records after the warm-up prefix."""
        return self.records[self.warmup_count :]

    def measured_only(self) -> "Trace":
        """A view of this trace without the warm-up prefix."""
        return Trace(
            name=self.name,
            records=self.measured_records,
            logical_blocks=self.logical_blocks,
            warmup_count=0,
        )

    def requests(self) -> Iterator[IORequest]:
        """Materialise IORequests with stable ids."""
        for i, rec in enumerate(self.records):
            yield rec.to_request(req_id=i)


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace in the line-oriented text format."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# trace {trace.name}\n")
        fh.write(f"# logical_blocks {trace.logical_blocks}\n")
        fh.write(f"# warmup_count {trace.warmup_count}\n")
        for rec in trace.records:
            fps = (
                ",".join(str(f) for f in rec.fingerprints)
                if rec.fingerprints is not None
                else "-"
            )
            fh.write(f"{rec.time:.6f} {rec.op.value} {rec.lba} {rec.nblocks} {fps}\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    name = path.stem
    logical_blocks: Optional[int] = None
    warmup_count = 0
    records: List[TraceRecord] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) >= 2 and parts[0] == "trace":
                    name = parts[1]
                elif len(parts) >= 2 and parts[0] == "logical_blocks":
                    logical_blocks = int(parts[1])
                elif len(parts) >= 2 and parts[0] == "warmup_count":
                    warmup_count = int(parts[1])
                continue
            parts = line.split()
            if len(parts) != 5:
                raise TraceError(f"{path}:{lineno}: expected 5 fields, got {len(parts)}")
            time_s, op_s, lba_s, nblocks_s, fps_s = parts
            try:
                op = OpType(op_s)
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: bad op {op_s!r}") from exc
            fingerprints: Optional[Tuple[int, ...]] = None
            if fps_s != "-":
                fingerprints = tuple(int(f) for f in fps_s.split(","))
            records.append(
                TraceRecord(
                    time=float(time_s),
                    op=op,
                    lba=int(lba_s),
                    nblocks=int(nblocks_s),
                    fingerprints=fingerprints,
                )
            )
    if logical_blocks is None:
        logical_blocks = max((r.lba + r.nblocks for r in records), default=1)
    return Trace(
        name=name,
        records=records,
        logical_blocks=logical_blocks,
        warmup_count=warmup_count,
    )
