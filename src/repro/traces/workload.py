"""Workload primitives used by the synthetic trace generators.

Three building blocks that the workload studies cited by the paper
agree on for primary storage:

* **skewed popularity** -- a bounded Zipf distribution over content
  and over recently written segments (temporal locality);
* **burstiness** -- "primary storage workloads exhibit obvious I/O
  burstiness" (Section I) and "read-intensive periods are interleaved
  with write-intensive periods" (Section II-B): a two-level arrival
  process (bursts of closely spaced requests separated by longer
  gaps) modulated by alternating read/write phases;
* **size mixes dominated by small requests** -- "30% to 62% of I/O
  requests seen at the block level are 4KB" (Section II-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import TraceError


class ZipfChooser:
    """Bounded Zipf(s) sampler over ranks ``0..n-1`` (0 most popular).

    Probabilities are precomputed; draws vectorise through the
    generator's ``choice``.  ``n`` may grow (e.g. as new segments are
    written) via :meth:`resize`, which recomputes the table lazily.
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n < 1:
            raise TraceError("ZipfChooser needs n >= 1")
        if s < 0:
            raise TraceError("Zipf exponent must be non-negative")
        self.s = s
        self._n = 0
        self._cdf: np.ndarray = np.empty(0)
        self.resize(n)

    @property
    def n(self) -> int:
        return self._n

    def resize(self, n: int) -> None:
        if n < 1:
            raise TraceError("ZipfChooser needs n >= 1")
        if n == self._n:
            return
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.s)
        # Precompute the CDF once: each draw is then one uniform
        # sample plus a binary search (rng.choice with explicit
        # probabilities is O(n) per draw and dominates generation).
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._n = n

    def draw(self, rng: np.random.Generator) -> int:
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def draw_many(self, rng: np.random.Generator, k: int) -> np.ndarray:
        return np.searchsorted(self._cdf, rng.random(k), side="right")


@dataclass(frozen=True)
class SizeDistribution:
    """Discrete request-size distribution in 4 KB blocks."""

    sizes: Tuple[int, ...]
    probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.probs) or not self.sizes:
            raise TraceError("sizes and probs must be equal-length, non-empty")
        if any(s < 1 for s in self.sizes):
            raise TraceError("sizes must be >= 1 block")
        total = sum(self.probs)
        if not (0.999 <= total <= 1.001):
            raise TraceError(f"size probabilities sum to {total}, expected 1.0")

    @staticmethod
    def of(table: Dict[int, float]) -> "SizeDistribution":
        sizes = tuple(sorted(table))
        return SizeDistribution(sizes=sizes, probs=tuple(table[s] for s in sizes))

    @property
    def mean_blocks(self) -> float:
        return float(sum(s * p for s, p in zip(self.sizes, self.probs)))

    @property
    def mean_kb(self) -> float:
        return self.mean_blocks * 4.0

    def draw(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.sizes, p=self.probs))


@dataclass(frozen=True)
class BurstModel:
    """Two-level arrival process.

    Requests arrive in bursts: ``burst_size`` is geometric with the
    given mean; within a burst the inter-arrival gap is exponential
    with mean ``intra_gap``; bursts are separated by exponential gaps
    with mean ``inter_gap``.  This reproduces the queue build-up that
    makes write elimination help *read* latency (Section IV-B: the
    reduced write traffic "greatly shortens the length of the disk I/O
    queue").
    """

    mean_burst_size: float = 10.0
    intra_gap: float = 0.3e-3
    inter_gap: float = 250e-3

    def __post_init__(self) -> None:
        if self.mean_burst_size < 1:
            raise TraceError("mean burst size must be >= 1")
        if self.intra_gap < 0 or self.inter_gap < 0:
            raise TraceError("gaps must be non-negative")


class ArrivalProcess:
    """Stateful arrival-time generator for one trace."""

    def __init__(self, model: BurstModel, rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self.now = 0.0
        self._left_in_burst = 0

    def next_time(self) -> float:
        """Arrival time of the next request."""
        if self._left_in_burst <= 0:
            self._left_in_burst = 1 + self.rng.geometric(
                1.0 / self.model.mean_burst_size
            )
            self.now += self.rng.exponential(self.model.inter_gap)
        else:
            self.now += self.rng.exponential(max(self.model.intra_gap, 1e-9))
        self._left_in_burst -= 1
        return self.now


@dataclass(frozen=True)
class PhaseModel:
    """Alternating read-intensive / write-intensive phases.

    ``write_ratio`` is the long-run write fraction; during a write
    phase requests are writes with probability ``write_phase_bias``
    and during a read phase with the complementary probability needed
    to keep the long-run ratio.  Phase lengths are geometric in
    requests.
    """

    write_ratio: float
    mean_phase_len: int = 400
    write_phase_bias: float = 0.95

    def __post_init__(self) -> None:
        if not (0.0 < self.write_ratio < 1.0):
            raise TraceError("write ratio must be in (0, 1)")
        if self.mean_phase_len < 1:
            raise TraceError("phase length must be >= 1")
        if not (0.5 <= self.write_phase_bias <= 1.0):
            raise TraceError("write-phase bias must be in [0.5, 1]")

    def phase_mix(self) -> Tuple[float, float]:
        """(fraction of write phases, write prob in read phases).

        Solving ``f*bias + (1-f)*q = ratio`` with ``f`` chosen so that
        ``q`` stays within [0.02, bias].
        """
        f = min(0.95, self.write_ratio / self.write_phase_bias)
        q = (self.write_ratio - f * self.write_phase_bias) / max(1e-9, 1.0 - f)
        if q < 0.02:
            # Shrink the write-phase share until read phases keep a
            # trickle of writes.
            q = 0.02
            f = (self.write_ratio - q) / (self.write_phase_bias - q)
        return f, q


class PhaseProcess:
    """Stateful phase tracker: is the next request a write?

    Phases strictly alternate write-intensive / read-intensive; the
    long-run write ratio is kept by making write phases longer or
    shorter (length share = the ``f`` of :meth:`PhaseModel.phase_mix`)
    rather than by randomising the phase *type*, which would give the
    ratio a large variance over a one-day trace.
    """

    def __init__(self, model: PhaseModel, rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self._f, self._q = model.phase_mix()
        self._left = 0
        self._in_write_phase = False  # flipped before the first draw
        self.phases_seen = 0

    @property
    def in_write_phase(self) -> bool:
        return self._in_write_phase

    def next_is_write(self) -> bool:
        if self._left <= 0:
            self._in_write_phase = not self._in_write_phase
            share = self._f if self._in_write_phase else 1.0 - self._f
            mean_len = max(1.0, 2.0 * self.model.mean_phase_len * share)
            # Half deterministic + half geometric: bursty phase lengths
            # without the heavy tail that would let a few giant phases
            # skew a one-day trace's read/write ratio.
            base = int(mean_len * 0.5)
            self._left = base + int(self.rng.geometric(min(1.0, 2.0 / mean_len)))
            self.phases_seen += 1
        self._left -= 1
        p = self.model.write_phase_bias if self._in_write_phase else self._q
        return bool(self.rng.random() < p)
