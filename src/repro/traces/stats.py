"""Workload analysis: the statistics behind Table II and Figs. 1-2.

These functions recompute, from any trace, the numbers the paper
derives from the FIU traces:

* :func:`trace_characteristics` -- Table II (write ratio, I/O count,
  mean request size);
* :func:`redundancy_by_size` -- Fig. 1 (the distribution of I/O
  redundancy among requests of different sizes);
* :func:`io_vs_capacity_redundancy` -- Fig. 2 (write data addressed
  to the same location vs a different location with the same
  content; their sum is the I/O redundancy, the latter alone is the
  capacity redundancy).

The analysis mirrors the paper's definitions (Section II-A): a chunk
is *I/O redundant* if a chunk with identical content was written
earlier in the trace (temporal locality included); it is *capacity
redundant* only if that identical content currently lives at a
different LBA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TraceError
from repro.traces.format import Trace, TraceRecord

#: Fig. 1's request-size buckets, in KB (">= 64" is the last bucket).
SIZE_BUCKETS_KB: Tuple[int, ...] = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class TraceCharacteristics:
    """One Table II row."""

    name: str
    write_ratio: float
    io_count: int
    mean_request_kb: float


def trace_characteristics(trace: Trace, measured_only: bool = True) -> TraceCharacteristics:
    """Compute the Table II row for a trace."""
    records = trace.measured_records if measured_only else trace.records
    if not records:
        raise TraceError("empty trace")
    writes = sum(1 for r in records if r.is_write)
    blocks = sum(r.nblocks for r in records)
    return TraceCharacteristics(
        name=trace.name,
        write_ratio=writes / len(records),
        io_count=len(records),
        mean_request_kb=blocks * 4.0 / len(records),
    )


def _bucket_kb(nblocks: int) -> int:
    """Fig. 1 size bucket for a request of ``nblocks`` 4 KB blocks."""
    kb = nblocks * 4
    for bucket in SIZE_BUCKETS_KB[:-1]:
        if kb <= bucket:
            return bucket
    return SIZE_BUCKETS_KB[-1]


@dataclass(frozen=True)
class SizeBucketRow:
    """Fig. 1 data for one request-size bucket."""

    bucket_kb: int
    total: int
    fully_redundant: int
    partially_redundant: int

    @property
    def redundant(self) -> int:
        return self.fully_redundant + self.partially_redundant


def redundancy_by_size(trace: Trace, measured_only: bool = True) -> List[SizeBucketRow]:
    """Fig. 1: write-request totals and redundancy per size bucket.

    A write request is *fully redundant* when every chunk's content
    was written earlier in the trace, *partially redundant* when at
    least one (but not all) was.
    """
    records = trace.measured_records if measured_only else trace.records
    seen: Set[int] = set()
    # Warm the content history with the warm-up prefix so day-15
    # duplicates of day-1..14 content count as redundant, like the
    # paper's analysis over the full three weeks.
    if measured_only:
        for rec in trace.records[: trace.warmup_count]:
            if rec.fingerprints:
                seen.update(rec.fingerprints)
    buckets: Dict[int, List[int]] = {b: [0, 0, 0] for b in SIZE_BUCKETS_KB}
    for rec in records:
        if not rec.is_write:
            continue
        assert rec.fingerprints is not None
        dup = sum(1 for fp in rec.fingerprints if fp in seen)
        seen.update(rec.fingerprints)
        row = buckets[_bucket_kb(rec.nblocks)]
        row[0] += 1
        if dup == rec.nblocks:
            row[1] += 1
        elif dup > 0:
            row[2] += 1
    return [
        SizeBucketRow(b, total, full, partial)
        for b, (total, full, partial) in sorted(buckets.items())
    ]


@dataclass(frozen=True)
class RedundancyBreakdown:
    """Fig. 2 data: percentages of all written blocks.

    ``same_location_pct + different_location_pct`` is the I/O
    redundancy; ``different_location_pct`` alone is the capacity
    redundancy that capacity-oriented schemes can harvest.
    """

    name: str
    same_location_pct: float
    different_location_pct: float

    @property
    def io_redundancy_pct(self) -> float:
        return self.same_location_pct + self.different_location_pct

    @property
    def capacity_redundancy_pct(self) -> float:
        return self.different_location_pct


def io_vs_capacity_redundancy(trace: Trace, measured_only: bool = True) -> RedundancyBreakdown:
    """Fig. 2: same-location vs different-location write redundancy.

    Walks the trace maintaining the current content of every LBA and
    a content -> location-count map:

    * a written chunk whose LBA already holds the same content is
      **same-location** redundant (pure I/O redundancy: eliminating
      it saves the write but no capacity);
    * a chunk whose content exists at some *other* LBA is
      **different-location** redundant (capacity redundancy).
    """
    current: Dict[int, int] = {}  # lba -> fp
    locations: Dict[int, int] = {}  # fp -> number of LBAs holding it
    same = diff = total = 0
    start = trace.warmup_count if measured_only else 0
    for i, rec in enumerate(trace.records):
        if not rec.is_write:
            continue
        assert rec.fingerprints is not None
        counted = i >= start
        for k, fp in enumerate(rec.fingerprints):
            lba = rec.lba + k
            old = current.get(lba)
            if counted:
                total += 1
                if old == fp:
                    same += 1
                elif locations.get(fp, 0) > 0:
                    diff += 1
            # apply the write
            if old is not None:
                remaining = locations.get(old, 0) - 1
                if remaining <= 0:
                    locations.pop(old, None)
                else:
                    locations[old] = remaining
            current[lba] = fp
            locations[fp] = locations.get(fp, 0) + 1
    if total == 0:
        raise TraceError("trace has no measured write blocks")
    return RedundancyBreakdown(
        name=trace.name,
        same_location_pct=same / total * 100.0,
        different_location_pct=diff / total * 100.0,
    )


def burstiness_profile(trace: Trace, window: float = 1.0) -> List[Tuple[float, int, int]]:
    """Reads/writes per time window (diagnostic for the phase model).

    Returns ``(window_start, reads, writes)`` rows; used by the
    iCache ablation bench to show the alternating phases the Swap
    Module reacts to.
    """
    if window <= 0:
        raise TraceError("window must be positive")
    rows: List[Tuple[float, int, int]] = []
    cur_start = 0.0
    reads = writes = 0
    for rec in trace.records:
        while rec.time >= cur_start + window:
            if reads or writes:
                rows.append((cur_start, reads, writes))
            cur_start += window
            reads = writes = 0
        if rec.is_write:
            writes += 1
        else:
            reads += 1
    if reads or writes:
        rows.append((cur_start, reads, writes))
    return rows
