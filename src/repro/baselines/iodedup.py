"""I/O Deduplication (Koller & Rangaswami, FAST'10) -- extension
baseline for Table I.

This scheme never removes writes from the I/O path: "The write
requests are still issued to disks even if their data has already been
stored on disks" (Section V).  Instead it exploits *content
similarity* on the read path: a content-addressed read cache means
that blocks with identical content, cached under one fingerprint,
serve hits for every LBA holding that content -- effectively enlarging
the read cache by the workload's duplication factor.

Our implementation reproduces the content-addressed caching component.
The original system additionally keeps duplicated copies on disk and
lets the head pick the nearest replica to cut seek latency; that
head-scheduling optimisation is orthogonal to the cache and is *not*
modelled (documented substitution -- it would require a continuous
head-position model shared with the scheduler, and Table I only needs
the scheme's policy profile: no write elimination, capacity
unchanged, static cache).

The index cache partition stores the LBA -> content fingerprint
metadata that content-addressed caching requires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme, PlannedIO, SchemeConfig
from repro.sim.request import IORequest, OpType
from repro.storage.volume import VolumeOp, extents_to_ops


class IODedup(DedupScheme):
    """Content-addressed read caching; writes pass through untouched."""

    name = "I/O-Dedup"
    features = {
        "capacity_saving": False,
        "performance_enhancement": True,
        "small_writes_elimination": False,
        "large_writes_elimination": False,
        "cache_partitioning": "static",
    }

    def __init__(self, config: SchemeConfig) -> None:
        super().__init__(config)
        #: Content fingerprint currently stored at each PBA (what the
        #: original system tracks in its content-addressed metadata).
        self._pba_content: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # write path: compute fingerprints (for the content metadata) but
    # never deduplicate.
    # ------------------------------------------------------------------

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        assert self.index_table is not None
        entry = self.index_table.lookup(fingerprint)
        return (entry.pba if entry is not None else None), []

    def _lookup_unique(self, fingerprint: int) -> None:
        # I/O-Dedup's miss path only counts the miss: no ghost-cache
        # notification (there is no adaptive cache to inform).
        assert self.index_table is not None
        self.index_table.lru.misses += 1

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        return set()

    def _commit_write(
        self,
        request: IORequest,
        duplicate_pbas: Sequence[Optional[int]],
        dedupe_idx: Set[int],
    ) -> Tuple[List[VolumeOp], Tuple[int, ...]]:
        ops, deduped = super()._commit_write(request, duplicate_pbas, dedupe_idx)
        # Track content at the written home locations for the
        # content-addressed read cache.
        assert request.fingerprints is not None
        for i, lba in enumerate(request.blocks()):
            self._pba_content[self.map_table.translate(lba)] = request.fingerprints[i]
        return ops, deduped

    # ------------------------------------------------------------------
    # read path: content-addressed cache lookup
    # ------------------------------------------------------------------

    def _process_read(self, request: IORequest, now: float) -> PlannedIO:
        self.reads_total += 1
        self.read_blocks_total += request.nblocks
        pbas = self.map_table.translate_many(request.blocks())
        missing: List[int] = []
        hits = 0
        for pba in pbas:
            fp = self._pba_content.get(pba)
            key = ("c", fp) if fp is not None else ("p", pba)
            if self.cache.read_lookup(key):
                hits += 1
            else:
                missing.append(pba)
        self.read_cache_hit_blocks += hits
        ops = extents_to_ops(OpType.READ, missing)
        self.read_extents_issued += len(ops)
        for pba in set(missing):
            fp = self._pba_content.get(pba)
            key = ("c", fp) if fp is not None else ("p", pba)
            self.cache.read_insert(key)
        return PlannedIO(delay=0.0, volume_ops=ops, cache_hit_blocks=hits)
