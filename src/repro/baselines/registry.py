"""The declarative scheme registry.

Scheme construction used to sprawl across three call sites -- a
``SCHEME_CLASSES`` dict, a ``PAPER_SCHEMES`` tuple, a case-folding
``resolve_scheme_name`` and a ``build_scheme`` factory in the
experiment runner, plus ad-hoc name handling in the CLI.  The
:class:`SchemeRegistry` replaces all of that with one declarative
table: each :class:`SchemeEntry` names a scheme once (canonical report
name, class, CLI aliases, whether it belongs to the paper's headline
comparison set) and every consumer -- :mod:`repro.cli`,
:mod:`repro.experiments.runner`, :mod:`repro.experiments.parallel` --
resolves and builds through the same object.

The registry is also the extension point for later PRs: registering a
new scheme makes it available to ``repro run``, ``repro run-multi``,
``repro compare`` and the parallel matrix without touching any of
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.baselines.base import DedupScheme, SchemeConfig
from repro.baselines.full_dedupe import FullDedupe
from repro.baselines.idedup import IDedup
from repro.baselines.iodedup import IODedup
from repro.baselines.native import Native
from repro.baselines.postprocess import PostProcessDedupe
from repro.errors import ConfigError


@dataclass(frozen=True)
class SchemeEntry:
    """One registered deduplication scheme.

    Attributes
    ----------
    name:
        Canonical report name (the paper's capitalisation).
    cls:
        The :class:`DedupScheme` subclass.
    aliases:
        Extra accepted spellings; resolution is case-insensitive over
        both the name and the aliases, so only genuinely different
        spellings need listing.
    paper:
        Whether the scheme belongs to the paper's headline comparison
        set (Figs. 8-11); these form the default ``compare`` matrix.
    description:
        One-line summary, surfaced in CLI help.
    """

    name: str
    cls: Type[DedupScheme]
    aliases: Tuple[str, ...] = ()
    paper: bool = False
    description: str = ""


class SchemeRegistry:
    """Name -> scheme resolution and construction, in one place."""

    def __init__(self, entries: Iterable[SchemeEntry] = ()) -> None:
        #: Canonical name -> entry, in registration order.
        self._entries: Dict[str, SchemeEntry] = {}
        #: Case-folded name/alias -> canonical name.
        self._lookup: Dict[str, str] = {}
        for entry in entries:
            self.register(entry)

    def register(self, entry: SchemeEntry) -> SchemeEntry:
        """Add a scheme; rejects duplicate names or ambiguous aliases."""
        if entry.name in self._entries:
            raise ConfigError(f"scheme {entry.name!r} is already registered")
        for key in (entry.name, *entry.aliases):
            folded = key.casefold()
            owner = self._lookup.get(folded)
            if owner is not None and owner != entry.name:
                raise ConfigError(
                    f"alias {key!r} for scheme {entry.name!r} collides with "
                    f"registered scheme {owner!r}"
                )
        self._entries[entry.name] = entry
        for key in (entry.name, *entry.aliases):
            self._lookup[key.casefold()] = entry.name
        return entry

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve(self, name: str) -> SchemeEntry:
        """Map a user-typed scheme name to its entry.

        Case-insensitive over canonical names and aliases
        (``pod`` -> ``POD``), so CLI users do not have to remember the
        paper's exact capitalisation.
        """
        canonical = self._lookup.get(str(name).casefold())
        if canonical is None:
            raise ConfigError(
                f"unknown scheme {name!r}; have {sorted(self._entries)}"
            )
        return self._entries[canonical]

    def resolve_name(self, name: str) -> str:
        """Canonical report name for a user-typed scheme name."""
        return self.resolve(name).name

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.casefold() in self._lookup

    def __iter__(self) -> Iterator[SchemeEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def names(self) -> List[str]:
        """Canonical names, in registration order."""
        return list(self._entries)

    def paper_schemes(self) -> Tuple[str, ...]:
        """The paper's headline comparison set, in registration order."""
        return tuple(e.name for e in self._entries.values() if e.paper)

    def classes(self) -> Dict[str, Type[DedupScheme]]:
        """Canonical name -> class (the legacy ``SCHEME_CLASSES`` view)."""
        return {e.name: e.cls for e in self._entries.values()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self, name: str, config: SchemeConfig) -> DedupScheme:
        """Instantiate a scheme from an explicit configuration."""
        return self.resolve(name).cls(config)


def _default_entries() -> List[SchemeEntry]:
    """Build the default entry list.

    The POD-family schemes live in :mod:`repro.core`; importing them
    inside the factory keeps ``repro.baselines`` importable without
    dragging the whole core package in at module-import time.
    """
    from repro.core.pod import POD
    from repro.core.select_dedupe import SelectDedupe

    return [
        SchemeEntry(
            "Native", Native, aliases=("baseline",), paper=True,
            description="no deduplication; in-place writes",
        ),
        SchemeEntry(
            "Full-Dedupe", FullDedupe, aliases=("full", "fulldedupe"), paper=True,
            description="dedupe every duplicate chunk, on-disk full index",
        ),
        SchemeEntry(
            "iDedup", IDedup, paper=True,
            description="inline dedupe of long duplicate runs only",
        ),
        SchemeEntry(
            "Select-Dedupe", SelectDedupe, aliases=("select",), paper=True,
            description="Figure-5 selective inline dedupe, no iCache",
        ),
        SchemeEntry(
            "POD", POD, paper=True,
            description="Select-Dedupe + adaptive iCache partitioning",
        ),
        SchemeEntry(
            "I/O-Dedup", IODedup, aliases=("iodedup", "io-dedup"),
            description="content-addressed read cache, no write dedupe",
        ),
        SchemeEntry(
            "Post-Process", PostProcessDedupe,
            aliases=("postprocess", "offline"),
            description="Native foreground path + offline dedupe passes",
        ),
    ]


#: The process-wide registry with every scheme the evaluation compares.
#: Registration order fixes both ``names()`` and ``paper_schemes()``
#: (the latter must match the paper's figure legends).
DEFAULT_REGISTRY = SchemeRegistry(_default_entries())
