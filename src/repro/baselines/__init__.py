"""Deduplication schemes: the shared scheme interface and the
paper's comparison baselines.

* :mod:`repro.baselines.base` -- :class:`DedupScheme`, the interface
  every scheme implements, plus the shared write/read plumbing
  (chunking, map-table commit, consistency rules, cache interaction).
* :mod:`repro.baselines.native` -- the HDD system without
  deduplication ("Native").
* :mod:`repro.baselines.full_dedupe` -- traditional full inline
  deduplication with a full (partially on-disk) index ("Full-Dedupe").
* :mod:`repro.baselines.idedup` -- iDedup (Srinivasan et al.,
  FAST'12): capacity-oriented, deduplicates only long sequential
  duplicate runs, i.e. large writes.
* :mod:`repro.baselines.iodedup` -- I/O Deduplication (Koller &
  Rangaswami, FAST'10): a content-addressed read cache; extension
  baseline for Table I.
* :mod:`repro.baselines.registry` -- the declarative
  :class:`SchemeRegistry` every consumer (CLI, runner, parallel
  matrix) resolves and builds schemes through.

The paper's own schemes (Select-Dedupe, POD) live in
:mod:`repro.core` and implement the same interface.
"""

from __future__ import annotations

from repro.baselines.base import DedupScheme, PlannedIO, SchemeConfig
from repro.baselines.native import Native
from repro.baselines.full_dedupe import FullDedupe
from repro.baselines.idedup import IDedup
from repro.baselines.iodedup import IODedup
from repro.baselines.postprocess import PostProcessDedupe
from repro.baselines.registry import DEFAULT_REGISTRY, SchemeEntry, SchemeRegistry

__all__ = [
    "DedupScheme",
    "PlannedIO",
    "SchemeConfig",
    "Native",
    "FullDedupe",
    "IDedup",
    "IODedup",
    "PostProcessDedupe",
    "DEFAULT_REGISTRY",
    "SchemeEntry",
    "SchemeRegistry",
]
