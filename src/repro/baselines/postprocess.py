"""Post-processing (offline) deduplication -- Table I's fourth column.

El-Shimi et al. (USENIX ATC'12) deduplicate *after* the fact: the
foreground write path is identical to Native (no fingerprinting, no
index lookups, every write hits the disk), and a background job
periodically scans recently written data, fingerprints it, and remaps
logical blocks whose content already exists elsewhere on disk.

Consequences the paper's Table I and Section II-A attribute to this
design, all reproduced here:

* **capacity saving** -- yes: duplicate copies are reclaimed in the
  background (the paper's Table I credits the scheme with eliminating
  the stored copies of large duplicates, not their I/O);
* **no performance enhancement** -- foreground writes are never
  removed from the I/O path (``write_requests_removed`` stays 0), and
  the background scan adds disk traffic of its own;
* **lower effective I/O dedup ratio** -- Section II-A: "on-line
  deduplication is likely much more effective in reducing I/O traffic
  than post-processing deduplication", because same-location
  redundancy (a rewrite of identical content) leaves nothing for an
  offline pass to reclaim.

The background pass runs on the scheme's epoch hook: it re-reads the
blocks written since the last pass (charged as background disk ops),
fingerprints them (offline CPU, not on the latency path), and remaps
duplicates through the shared Map-table machinery -- including the
refcount consistency rules, so a deduplicated victim is never
overwritten in place afterwards.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme, SchemeConfig
from repro.sim.request import IORequest, OpType
from repro.storage.volume import VolumeOp, extents_to_ops


class PostProcessDedupe(DedupScheme):
    """Native-speed writes; duplicates reclaimed by a background scan."""

    name = "Post-Process"
    uses_fingerprints = False  # nothing is hashed on the write path
    epoch_interval: Optional[float] = 2.0
    features = {
        "capacity_saving": True,
        "performance_enhancement": False,
        "small_writes_elimination": False,
        # Table I credits post-processing with large-writes
        # elimination: the *stored copies* of large duplicates go
        # away, off the critical path.
        "large_writes_elimination": True,
        "cache_partitioning": "static",
    }

    def __init__(self, config: SchemeConfig) -> None:
        super().__init__(config)
        #: LBAs written since the last background pass.
        self._dirty: Set[int] = set()
        #: Offline full index over stored content: fp -> pba.
        self._offline_index: Dict[int, int] = {}
        self._offline_by_pba: Dict[int, int] = {}
        # background-pass statistics
        self.scans = 0
        self.scan_blocks = 0
        self.offline_deduped_blocks = 0

    # ------------------------------------------------------------------
    # foreground path: exactly Native
    # ------------------------------------------------------------------

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        """Never called inline (``uses_fingerprints`` is False)."""
        return None, []

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        return set()

    def _commit_write(
        self,
        request: IORequest,
        duplicate_pbas: Sequence[Optional[int]],
        dedupe_idx: Set[int],
    ) -> Tuple[List[VolumeOp], Tuple[int, ...]]:
        ops, deduped = super()._commit_write(request, duplicate_pbas, dedupe_idx)
        self._dirty.update(request.blocks())
        return ops, deduped

    # ------------------------------------------------------------------
    # the background deduplication pass
    # ------------------------------------------------------------------

    def on_epoch(self, now: float) -> List[VolumeOp]:
        """One offline pass over the blocks written since the last one.

        Returns the scan's read traffic (charged to the disks as
        background load, never to a request's latency).
        """
        if not self._dirty:
            return []
        self.scans += 1
        dirty, self._dirty = sorted(self._dirty), set()
        scan_pbas: List[int] = []

        for lba in dirty:
            pba = self.map_table.translate(lba)
            fingerprint = self.content.read(pba)
            if fingerprint is None:  # trimmed meanwhile
                continue
            scan_pbas.append(pba)
            self.scan_blocks += 1
            canonical = self._offline_index.get(fingerprint)
            if (
                canonical is not None
                and canonical != pba
                and self.content.read(canonical) == fingerprint
            ):
                # Duplicate found: remap this LBA onto the canonical
                # copy and reclaim its private block if possible.
                self._map_dedupe(lba, canonical)
                self.offline_deduped_blocks += 1
            else:
                # This copy becomes the canonical one.
                stale = self._offline_by_pba.pop(pba, None)
                if stale is not None and self._offline_index.get(stale) == pba:
                    del self._offline_index[stale]
                self._offline_index[fingerprint] = pba
                self._offline_by_pba[pba] = fingerprint

        return extents_to_ops(OpType.READ, scan_pbas)

    def _volatile_reset(self) -> None:
        # The dirty set is volatile: blocks written just before a
        # crash are simply not revisited (a missed opportunity, not a
        # correctness issue).  The offline index is on-disk metadata
        # and survives.
        self._dirty.clear()

    def _reclaim(self, freed: Optional[int], keep: Optional[int] = None) -> None:
        if freed is not None and freed != keep:
            stale = self._offline_by_pba.pop(freed, None)
            if stale is not None and self._offline_index.get(stale) == freed:
                del self._offline_index[stale]
        super()._reclaim(freed, keep)

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["offline_scans"] = self.scans
        out["offline_scan_blocks"] = self.scan_blocks
        out["offline_deduped_blocks"] = self.offline_deduped_blocks
        out["offline_index_entries"] = len(self._offline_index)
        return out
