"""The scheme interface and the shared write/read plumbing.

Every deduplication scheme (Native, Full-Dedupe, iDedup, I/O-Dedup,
Select-Dedupe, POD) implements :class:`DedupScheme`.  The base class
owns the storage state common to all of them:

* the :class:`~repro.core.map_table.MapTable` (LBA -> PBA indirection
  with refcount consistency),
* the :class:`~repro.storage.volume.ContentStore` (what is physically
  on disk, used for integrity checking and capacity accounting),
* the :class:`~repro.storage.allocator.LogAllocator` (copy-on-write
  redirection when an in-place overwrite would corrupt a referenced
  block),
* the partitioned DRAM cache (fixed split or iCache),
* the :class:`~repro.dedup.fingerprint.HashEngine` delay model.

Subclasses customise two policy points on the write path:

* :meth:`DedupScheme._lookup_fingerprint` -- how a chunk fingerprint
  is resolved to a candidate duplicate PBA (in-memory-only lookup,
  full index with on-disk lookups, ...), and
* :meth:`DedupScheme._choose_dedupe` -- which redundant chunks to
  actually deduplicate (none, all, long runs only, Figure-5
  categories).

The commit logic is shared and enforces the Request Redirector's
consistency rule: a physical block referenced through the Map table is
never overwritten in place; the write is redirected to a fresh log
block instead.  A stale duplicate target (its content changed between
lookup and commit, possible for intra-request duplicates) is detected
by a content check and falls back to a normal write, so deduplication
can never corrupt data.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.constants import (
    BLOCK_SIZE,
    FINGERPRINT_DELAY,
    IDEDUP_THRESHOLD,
    SELECT_DEDUPE_THRESHOLD,
)
from repro.dedup.chunking import ChunkingConfig, ChunkTransform
from repro.dedup.index_table import IndexTable
from repro.dedup.map_table import MapTable
from repro.dedup.fingerprint import HashEngine
from repro.errors import ConfigError
from repro.cache.api import DramCache
from repro.cache.partition import PartitionedCache
from repro.obs.events import EventType, TraceLevel
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.request import IORequest, OpType
from repro.storage.allocator import LogAllocator, RegionMap
from repro.storage.journal import MapJournal
from repro.storage.nvram import NvramMeter
from repro.storage.volume import ContentStore, VolumeOp, extents_to_ops


@dataclass
class SchemeConfig:
    """Configuration shared by all schemes.

    Parameters mirror the paper's experimental setup (Section IV-A):
    a DRAM budget per trace, a 50/50 fixed index/read split for the
    non-POD schemes, a Select-Dedupe threshold of 3 chunks and an
    iDedup sequence threshold of 8 chunks (32 KB).
    """

    #: Size of the logical address space, in 4 KB blocks.
    logical_blocks: int
    #: Total DRAM budget for index + read caches, bytes.
    memory_bytes: int
    #: Fixed index-cache share of the DRAM budget (Fig. 3 sweeps this).
    index_fraction: float = 0.5
    #: Select-Dedupe category-3 threshold, chunks.
    select_threshold: int = SELECT_DEDUPE_THRESHOLD
    #: iDedup minimum duplicate-sequence length, chunks.
    idedup_threshold: int = IDEDUP_THRESHOLD
    #: Fingerprint compute delay per 4 KB chunk, seconds.
    fingerprint_delay: float = FINGERPRINT_DELAY
    #: Mechanical cost charged for one on-disk index lookup is an
    #: actual read in the index region, so no parameter is needed;
    #: this flag lets tests disable those reads.
    charge_index_io: bool = True
    #: Log region size as a fraction of the logical space.  Sized for
    #: the worst case (Full-Dedupe under heavy sharing redirects a
    #: large share of the overwrites of referenced home blocks).
    log_fraction: float = 0.50
    #: iCache epoch length, simulated seconds (POD only).  Long
    #: enough to integrate a few read/write phases per decision --
    #: shorter epochs repartition on noise and churn the caches (see
    #: benchmarks/bench_ablation_icache.py).
    icache_epoch: float = 4.0
    #: iCache repartition step, fraction of the DRAM budget (POD only).
    icache_step: float = 0.05
    #: iCache minimum share either cache keeps (POD only).
    icache_min_fraction: float = 0.10
    #: iCache benefit per ghost-read hit, seconds.  A re-cached block
    #: usually shortens an extent that is fetched anyway, so the
    #: marginal saving is about half a mechanical read.
    icache_read_miss_cost: float = 6e-3
    #: iCache benefit per ghost-index hit, seconds.  An additional
    #: detected duplicate eliminates a RAID-5 small write: data and
    #: parity read-modify-write, roughly four mechanical ops.
    icache_write_saved_cost: float = 20e-3
    #: SSD staging capacity for the SAR extension, bytes (0 = no SSD).
    ssd_bytes: int = 0
    #: Content-defined chunking (see :mod:`repro.dedup.chunking`).
    #: ``None`` keeps the paper's fixed 4 KB chunks -- the default path
    #: is bit-identical to a build without the chunking subsystem.
    chunking: Optional[ChunkingConfig] = None

    def __post_init__(self) -> None:
        if self.logical_blocks <= 0:
            raise ConfigError("logical space must be positive")
        if self.memory_bytes < 0:
            raise ConfigError("negative memory budget")
        if not (0.0 <= self.index_fraction <= 1.0):
            raise ConfigError("index fraction outside [0, 1]")
        if self.select_threshold < 1 or self.idedup_threshold < 1:
            raise ConfigError("thresholds must be >= 1")

    def make_regions(self) -> RegionMap:
        """Physical region layout for this logical space."""
        return RegionMap.for_logical_space(
            self.logical_blocks, log_fraction=self.log_fraction
        )


class PlannedIO:
    """What one request costs: a delay plus physical extent ops.

    Hand-written ``__slots__`` class (not a dataclass): one is built
    per processed request, squarely on the replay hot path.

    Attributes
    ----------
    delay:
        Processing time (fingerprinting) charged before any disk op
        is issued.
    volume_ops:
        Extent operations the request must wait for.
    background_ops:
        Extent operations that load the disks but do not gate the
        request's completion (iCache swap traffic).
    eliminated:
        True when a write request was fully deduplicated -- no data
        write reaches the disks (the Fig. 11 metric).
    deduped_blocks:
        Individual 4 KB blocks of this request whose write was
        eliminated by deduplication (accrues from partially
        deduplicated requests too -- distinct from ``eliminated``,
        which is a whole-request flag).
    cache_hit_blocks:
        Read blocks served from the read cache.
    deduped_idx:
        The chunk indices (into the request) that were deduplicated
        inline (``len(deduped_idx) == deduped_blocks``).  The
        multi-volume replay driver uses these to classify each
        eliminated block as cross-volume or intra-volume redundancy.
    ssd_read_blocks:
        Blocks served by the SSD tier (gates completion; SAR only).
    ssd_write_blocks:
        Blocks copied to the SSD tier in the background (SAR only).
    """

    __slots__ = (
        "delay",
        "volume_ops",
        "background_ops",
        "eliminated",
        "deduped_blocks",
        "cache_hit_blocks",
        "deduped_idx",
        "ssd_read_blocks",
        "ssd_write_blocks",
    )

    delay: float
    volume_ops: List[VolumeOp]
    background_ops: List[VolumeOp]
    eliminated: bool
    deduped_blocks: int
    cache_hit_blocks: int
    deduped_idx: Tuple[int, ...]
    ssd_read_blocks: int
    ssd_write_blocks: int

    def __init__(
        self,
        delay: float = 0.0,
        volume_ops: Optional[List[VolumeOp]] = None,
        background_ops: Optional[List[VolumeOp]] = None,
        eliminated: bool = False,
        deduped_blocks: int = 0,
        cache_hit_blocks: int = 0,
        deduped_idx: Tuple[int, ...] = (),
        ssd_read_blocks: int = 0,
        ssd_write_blocks: int = 0,
    ) -> None:
        self.delay = delay
        self.volume_ops = [] if volume_ops is None else volume_ops
        self.background_ops = [] if background_ops is None else background_ops
        self.eliminated = eliminated
        self.deduped_blocks = deduped_blocks
        self.cache_hit_blocks = cache_hit_blocks
        self.deduped_idx = deduped_idx
        self.ssd_read_blocks = ssd_read_blocks
        self.ssd_write_blocks = ssd_write_blocks

    def __repr__(self) -> str:
        return (
            f"PlannedIO(delay={self.delay!r}, volume_ops={self.volume_ops!r}, "
            f"background_ops={self.background_ops!r}, "
            f"eliminated={self.eliminated!r}, "
            f"deduped_blocks={self.deduped_blocks!r}, "
            f"cache_hit_blocks={self.cache_hit_blocks!r}, "
            f"deduped_idx={self.deduped_idx!r}, "
            f"ssd_read_blocks={self.ssd_read_blocks!r}, "
            f"ssd_write_blocks={self.ssd_write_blocks!r})"
        )


class DedupScheme(abc.ABC):
    """Base class for all deduplication schemes."""

    #: Human-readable scheme name (used in reports).
    name: str = "abstract"
    #: Whether the write path computes fingerprints at all.
    uses_fingerprints: bool = True
    #: Table-I feature flags, overridden per scheme.
    features: Dict[str, object] = {}
    #: Simulated seconds between cache-management epochs, or ``None``.
    epoch_interval: Optional[float] = None
    #: Whether a *guaranteed-miss* index probe may be replaced by
    #: :meth:`_lookup_unique` (the columnar batch driver proves
    #: first-stream-occurrence fingerprints can't be in any index).
    #: ``False`` for schemes whose miss path has side effects beyond
    #: the LRU miss counter and the cache notification (Full-Dedupe
    #: pays an on-disk lookup either way).
    fast_unique: bool = True

    def __init__(self, config: SchemeConfig) -> None:
        self.config = config
        self.regions = config.make_regions()
        self.nvram = NvramMeter()
        self.map_table = MapTable(self.regions, self.nvram)
        self.content = ContentStore(self.regions.total_blocks)
        self.log_alloc = LogAllocator(self.regions.log_base, self.regions.log_blocks)
        self.hash_engine = HashEngine(config.fingerprint_delay)
        #: Optional content-defined chunking transform, applied to
        #: every write's fingerprints before dedup planning.  Stream-
        #: stateful (boundaries are content-defined across requests).
        self.chunker: Optional[ChunkTransform] = (
            ChunkTransform(config.chunking) if config.chunking is not None else None
        )
        self.cache: DramCache = self._make_cache()
        self.index_table: Optional[IndexTable] = (
            IndexTable(self.cache.index) if self.uses_fingerprints else None
        )
        if self.index_table is not None and hasattr(self.cache, "attach_index_table"):
            self.cache.attach_index_table(self.index_table)
        self.written_lbas: Set[int] = set()
        self._swap_cursor = 0
        # ---- degradation mode (fault recovery) -----------------------
        #: LBAs whose mapping could not be re-derived after a crash:
        #: reads of them are unverifiable and writes bypass
        #: deduplication until real data heals the map (extends POD's
        #: miss-as-unique philosophy).  Empty on the healthy path, so
        #: every guard is one truthiness test.
        self.quarantined_lbas: Set[int] = set()
        self.dedupe_bypass_writes = 0
        self.quarantine_heals = 0
        self.quarantine_reads = 0
        # ---- observability -------------------------------------------
        #: Attached trace recorder (NULL_RECORDER = disabled; every
        #: emission site guards on ``self.obs.level`` so the disabled
        #: path costs one integer compare).
        self.obs: TraceRecorder = NULL_RECORDER
        #: Optional per-decision observer called right after
        #: :meth:`_choose_dedupe` with ``(request, duplicate_pbas,
        #: chosen)``.  Observation only -- the write path ignores its
        #: return value.  The POD sanitizer installs its per-scheme
        #: policy check here (``--check-invariants``).
        self.decision_hook: Optional[
            Callable[[IORequest, Sequence[Optional[int]], Set[int]], None]
        ] = None
        #: Simulated time of the request currently being processed
        #: (timestamp source for events emitted below ``process``).
        self._obs_now: float = 0.0
        #: Attached span tracer (:class:`repro.obs.spans.SpanTracer`)
        #: and the current request's root span id -- set by the replay
        #: driver per request when ``--spans`` is armed.  ``None`` by
        #: default: the off path pays one ``is not None`` test per
        #: processed request.
        self.spans: Optional[Any] = None
        self.span_parent: int = -1
        # ---- counters -------------------------------------------------
        self.reads_total = 0
        self.read_blocks_total = 0
        self.read_cache_hit_blocks = 0
        self.read_extents_issued = 0
        self.writes_total = 0
        self.write_blocks_total = 0
        self.write_requests_removed = 0
        self.write_blocks_deduped = 0
        self.write_blocks_written = 0
        self.redirected_writes = 0
        self.stale_dedupe_avoided = 0
        self.disk_index_lookups = 0

    # ------------------------------------------------------------------
    # construction hooks
    # ------------------------------------------------------------------

    def _make_cache(self) -> DramCache:
        """Build the DRAM cache organisation (fixed split by default)."""
        return PartitionedCache(self.config.memory_bytes, self.config.index_fraction)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_observer(self, recorder: TraceRecorder) -> None:
        """Attach a trace recorder to this scheme and its cache.

        Observation only: attaching a recorder (at any level) must
        never change simulation behaviour -- the integration tests
        assert byte-identical results with tracing on and off.
        """
        self.obs = recorder
        if hasattr(self.cache, "attach_observer"):
            self.cache.attach_observer(recorder, clock=self._obs_clock)

    def _obs_clock(self) -> float:
        """Current simulated time for events emitted by owned caches."""
        return self._obs_now

    # ------------------------------------------------------------------
    # the scheme interface
    # ------------------------------------------------------------------

    def process(self, request: IORequest, now: float) -> PlannedIO:
        """Plan the physical I/O for one user request."""
        self._obs_now = now
        if self.chunker is not None and request.op is OpType.WRITE:
            request = self._chunked(request)
        if self.spans is None:
            if request.is_write:
                return self._process_write(request, now)
            return self._process_read(request, now)
        # Span-traced path: the Index/Map lookup (and any dedup
        # classification work inside it) is one child of the request's
        # root span.  Planning happens at one simulated instant, so
        # the span is zero-width; its attrs carry the outcome.
        sid = self.spans.start(
            now, "scheme.lookup", parent=self.span_parent, req_id=request.req_id
        )
        if request.is_write:
            planned = self._process_write(request, now)
        else:
            planned = self._process_read(request, now)
        self.spans.end(
            now,
            sid,
            eliminated=planned.eliminated,
            deduped_blocks=planned.deduped_blocks,
            cache_hit_blocks=planned.cache_hit_blocks,
        )
        return planned

    def _chunked(self, request: IORequest) -> IORequest:
        """Rewrite a write's fingerprints through the CDC transform.

        Shape-preserving (``nblocks`` fingerprints in and out), so the
        commit path is untouched; the request object handed onward is
        a fresh one -- callers holding the original (the replay
        driver, the metrics collector) still see the raw trace record.
        """
        assert self.chunker is not None and request.fingerprints is not None
        return IORequest.raw(
            request.time,
            request.op,
            request.lba,
            request.nblocks,
            self.chunker.transform(request.fingerprints),
            request.req_id,
            request.volume_id,
        )

    def plan_batch(
        self,
        requests: Sequence[IORequest],
        chunk_unique: Optional[Sequence[Optional[Sequence[bool]]]] = None,
    ) -> List[PlannedIO]:
        """Plan a window of requests, in arrival order.

        The batched front-end of the columnar replay driver.  The
        default implementation is the per-request :meth:`process` at
        each request's own arrival time -- exactly what the event loop
        would have done, since planning never reads the clock on the
        fast path.

        ``chunk_unique`` optionally carries, per write request, a
        per-chunk flag marking fingerprints whose occurrence is the
        first in the whole replayed stream (``None`` per read).  Such
        a chunk can't be in any index, so eligible schemes replace the
        probe with its exact miss side effects
        (:meth:`_lookup_unique`) -- a pure shortcut, bit-identical by
        the golden batch-replay tests.  Hints are ignored whenever any
        scheme feature could invalidate them (no-fingerprint schemes,
        chunking rewrites, span tracing, ``fast_unique = False``).
        """
        if (
            chunk_unique is None
            or not self.fast_unique
            or not self.uses_fingerprints
            or self.chunker is not None
            or self.spans is not None
        ):
            process = self.process
            return [process(request, request.time) for request in requests]
        out: List[PlannedIO] = []
        append = out.append
        process = self.process
        hinted = self._process_write_hinted
        for request, mask in zip(requests, chunk_unique):
            if mask is not None:
                append(hinted(request, mask))
            else:
                append(process(request, request.time))
        return out

    def plan_columns(
        self,
        a: int,
        b: int,
        is_write: Sequence[bool],
        lbas: Sequence[int],
        nblocks: Sequence[int],
        fp_offsets: Sequence[int],
        fp_ids: Sequence[int],
        pool: Sequence[int],
    ) -> Optional[List[PlannedIO]]:
        """Plan arrivals ``[a, b)`` straight from merged columns.

        The zero-materialisation tier of the batched front-end: a
        scheme that can plan from the raw column lists (request ``i``
        is ``lbas[i]``/``nblocks[i]``; its write chunks are
        ``pool[fp_ids[k]]`` for ``k`` in ``fp_offsets[i] ..
        fp_offsets[i+1]``) returns the plans and the driver never
        builds :class:`~repro.sim.request.IORequest` objects for the
        window.  Returning ``None`` (the default) falls back to
        materialised :meth:`plan_batch`.  Implementations must be
        bit-identical to the generic path -- the golden batch-replay
        tests pin this.
        """
        return None

    def _lookup_unique(self, fingerprint: int) -> None:
        """Charge the exact side effects of a guaranteed index miss.

        Called in place of :meth:`_lookup_fingerprint` for a chunk the
        batch classifier proved absent from every index (first stream
        occurrence): the LRU's miss counter advances and the cache is
        notified (iCache's ghost index measures the opportunity cost),
        exactly as the missed probe would have done -- only the
        fruitless dictionary search is skipped.
        """
        assert self.index_table is not None
        self.index_table.lru.misses += 1
        self.cache.on_index_miss(fingerprint)

    def _process_write_hinted(
        self, request: IORequest, unique_mask: Sequence[bool]
    ) -> PlannedIO:
        """:meth:`_process_write` with first-occurrence probe hints.

        Line-for-line the unhinted write path, except flagged chunks
        take :meth:`_lookup_unique`.  Only reachable through
        :meth:`plan_batch` on the hint-eligible fast path.
        """
        now = request.time
        self._obs_now = now
        self.writes_total += 1
        self.write_blocks_total += request.nblocks
        fingerprints = request.fingerprints
        assert fingerprints is not None

        delay = self.hash_engine.delay_for(request.nblocks)
        extra_ops: List[VolumeOp] = []
        duplicate_pbas: List[Optional[int]] = []
        append_pba = duplicate_pbas.append
        lookup = self._lookup_fingerprint
        unique = self._lookup_unique
        for i, fp in enumerate(fingerprints):
            if unique_mask[i]:
                unique(fp)
                append_pba(None)
            else:
                pba, ops = lookup(fp)
                if ops:
                    extra_ops.extend(ops)
                append_pba(pba)

        dedupe_idx = self._choose_dedupe(request, duplicate_pbas)
        if self.decision_hook is not None:
            self.decision_hook(request, duplicate_pbas, dedupe_idx)
        if self.quarantined_lbas:
            bypassed = {
                i for i in dedupe_idx
                if request.lba + i in self.quarantined_lbas
            }
            if bypassed:
                self.dedupe_bypass_writes += len(bypassed)
                dedupe_idx = dedupe_idx - bypassed
        write_ops, deduped_idx = self._commit_write(request, duplicate_pbas, dedupe_idx)
        eliminated = not write_ops and request.nblocks > 0
        if eliminated:
            self.write_requests_removed += 1
        self.write_blocks_deduped += len(deduped_idx)
        return PlannedIO(
            delay=delay,
            volume_ops=extra_ops + write_ops,
            eliminated=eliminated,
            deduped_blocks=len(deduped_idx),
            deduped_idx=deduped_idx,
        )

    def on_epoch(self, now: float) -> List[VolumeOp]:
        """Periodic cache management; returns background swap traffic.

        Only meaningful for schemes with ``epoch_interval`` set.
        """
        swapped_bytes = self.cache.on_epoch(now)
        return self._swap_ops(swapped_bytes)

    def capacity_blocks(self) -> int:
        """Physical blocks in use backing all written logical blocks
        (the Fig. 10 capacity measure)."""
        return len(self.map_table.live_pbas(self.written_lbas))

    # ------------------------------------------------------------------
    # fault tolerance hooks
    # ------------------------------------------------------------------

    def enable_journal(self) -> MapJournal:
        """Attach a write-ahead :class:`MapJournal` to the Map table
        (idempotent).  Required before a simulated NVRAM power loss
        can be recovered from."""
        if self.map_table.journal is None:
            self.map_table.attach_journal(MapJournal())
        journal = self.map_table.journal
        assert journal is not None
        return journal

    def quarantine(self, lbas: Set[int]) -> None:
        """Put LBAs into dedupe-bypass degradation mode.

        Crash recovery calls this for every LBA whose mapping could
        not be re-derived: the system no longer vouches for their
        content, so subsequent writes of them must carry real data
        (never a dedup pointer) until the map heals.
        """
        self.quarantined_lbas.update(lbas)

    # ------------------------------------------------------------------
    # policy points
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        """Resolve a chunk fingerprint to a candidate duplicate PBA.

        Returns ``(pba_or_None, extra_ops)`` where ``extra_ops`` are
        lookup costs charged to the request (e.g. an on-disk index
        read for Full-Dedupe).
        """

    @abc.abstractmethod
    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        """Chunk indices (into the request) to deduplicate."""

    def _admit_to_index(self, fingerprint: int, pba: int) -> None:
        """Record a freshly written unique chunk in the index."""
        if self.index_table is None:
            return
        self.index_table.insert(fingerprint, pba)
        evicted = self.index_table.drain_evicted()
        if evicted:
            self.cache.note_index_evictions(evicted)

    # ------------------------------------------------------------------
    # shared read path
    # ------------------------------------------------------------------

    def _process_read(self, request: IORequest, now: float) -> PlannedIO:
        self.reads_total += 1
        self.read_blocks_total += request.nblocks
        if self.quarantined_lbas:
            self.quarantine_reads += sum(
                1 for lba in request.blocks() if lba in self.quarantined_lbas
            )
        pbas = self.map_table.translate_many(request.blocks())
        missing: List[int] = []
        hits = 0
        for pba in pbas:
            if self.cache.read_lookup(pba):
                hits += 1
            else:
                missing.append(pba)
        self.read_cache_hit_blocks += hits
        if self.obs.level >= TraceLevel.CHUNK:
            self.obs.emit(
                TraceLevel.CHUNK,
                now,
                EventType.CACHE_READ,
                req_id=request.req_id,
                hits=hits,
                misses=len(missing),
            )
        ops = extents_to_ops(OpType.READ, missing)
        self.read_extents_issued += len(ops)
        for pba in set(missing):
            self.cache.read_insert(pba)
        return PlannedIO(delay=0.0, volume_ops=ops, cache_hit_blocks=hits)

    # ------------------------------------------------------------------
    # shared write path
    # ------------------------------------------------------------------

    def _process_write(self, request: IORequest, now: float) -> PlannedIO:
        self.writes_total += 1
        self.write_blocks_total += request.nblocks
        assert request.fingerprints is not None

        delay = 0.0
        extra_ops: List[VolumeOp] = []
        if self.uses_fingerprints:
            delay = self.hash_engine.delay_for(request.nblocks)
            duplicate_pbas: List[Optional[int]] = []
            for fp in request.fingerprints:
                pba, ops = self._lookup_fingerprint(fp)
                extra_ops.extend(ops)
                duplicate_pbas.append(pba)
        else:
            duplicate_pbas = [None] * request.nblocks

        dedupe_idx = self._choose_dedupe(request, duplicate_pbas)
        if self.decision_hook is not None:
            self.decision_hook(request, duplicate_pbas, dedupe_idx)
        if self.quarantined_lbas:
            # Degradation mode: a quarantined LBA's content is
            # unverifiable, so its write must carry real data -- never
            # a dedup pointer -- until the map heals (the write-side
            # mirror of POD's miss-as-unique rule).
            bypassed = {
                i for i in dedupe_idx
                if request.lba + i in self.quarantined_lbas
            }
            if bypassed:
                self.dedupe_bypass_writes += len(bypassed)
                dedupe_idx = dedupe_idx - bypassed
        write_ops, deduped_idx = self._commit_write(request, duplicate_pbas, dedupe_idx)
        eliminated = not write_ops and request.nblocks > 0
        if eliminated:
            self.write_requests_removed += 1
        self.write_blocks_deduped += len(deduped_idx)
        return PlannedIO(
            delay=delay,
            volume_ops=extra_ops + write_ops,
            eliminated=eliminated,
            deduped_blocks=len(deduped_idx),
            deduped_idx=deduped_idx,
        )

    def _commit_write(
        self,
        request: IORequest,
        duplicate_pbas: Sequence[Optional[int]],
        dedupe_idx: Set[int],
    ) -> Tuple[List[VolumeOp], Tuple[int, ...]]:
        """Apply one write to the map table, content store and caches.

        Returns ``(data_write_ops, deduped_chunk_indices)`` where the
        indices are the request chunks whose write was eliminated (in
        ascending order; ``len()`` of it is the deduped block count).
        """
        assert request.fingerprints is not None
        write_pbas: List[int] = []
        overwritten: Set[int] = set()
        deduped: List[int] = []

        for i, lba in enumerate(request.blocks()):
            fp = request.fingerprints[i]
            self.written_lbas.add(lba)

            if i in dedupe_idx:
                target = duplicate_pbas[i]
                assert target is not None
                # Safety net: the duplicate target must still hold the
                # claimed content (an earlier chunk of this very
                # request may have overwritten it).
                if target in overwritten or self.content.read(target) != fp:
                    self.stale_dedupe_avoided += 1
                else:
                    self._map_dedupe(lba, target)
                    deduped.append(i)
                    continue

            # Normal (non-deduplicated) write.
            if self.quarantined_lbas and lba in self.quarantined_lbas:
                # Real data reaching a quarantined LBA heals it: the
                # map entry below is rebuilt from scratch and the
                # content is again vouched for.
                self.quarantined_lbas.discard(lba)
                self.quarantine_heals += 1
            target = self._write_target(lba)
            overwritten.add(target)
            if self.index_table is not None:
                self.index_table.invalidate_pba(target)
            self.content.write(target, fp)
            self.cache.read_remove(target)
            self._on_physical_write(target)
            if self.uses_fingerprints:
                self._admit_to_index(fp, target)
            write_pbas.append(target)

        ops = extents_to_ops(OpType.WRITE, write_pbas)
        self.write_blocks_written += len(write_pbas)
        return ops, tuple(deduped)

    def _map_dedupe(self, lba: int, target: int) -> None:
        """Point ``lba`` at an existing duplicate block."""
        if self.map_table.translate(lba) == target:
            return  # same-location redundancy: nothing to update
        if target == self.regions.home_of(lba):
            freed = self.map_table.clear_mapping(lba)
        else:
            freed = self.map_table.set_mapping(lba, target)
        self._reclaim(freed)

    def _write_target(self, lba: int) -> int:
        """Pick the physical block for an in-place or redirected write,
        honouring the consistency rule."""
        home = self.regions.home_of(lba)
        current = self.map_table.translate(lba)
        target = self.map_table.choose_write_target(lba)
        if target is None:
            target = self.log_alloc.allocate()
            freed = self.map_table.set_mapping(lba, target)
            self._reclaim(freed, keep=target)
            self.redirected_writes += 1
        elif target == home and current != home:
            freed = self.map_table.clear_mapping(lba)
            self._reclaim(freed, keep=target)
        return target

    def _reclaim(self, freed: Optional[int], keep: Optional[int] = None) -> None:
        """Recycle a log block whose last reference went away."""
        if freed is None or freed == keep:
            return
        if self.log_alloc.owns(freed) and self.log_alloc.is_allocated(freed):
            self.log_alloc.free(freed)
            self.content.discard(freed)
            self.cache.read_remove(freed)
            if self.index_table is not None:
                self.index_table.invalidate_pba(freed)
            self._on_physical_write(freed)

    def _on_physical_write(self, pba: int) -> None:
        """Hook: the content at ``pba`` changed or was discarded.
        Subclasses with extra per-PBA state (e.g. SAR's SSD residency)
        invalidate it here."""

    # ------------------------------------------------------------------
    # swap traffic (iCache)
    # ------------------------------------------------------------------

    def _swap_ops(self, swapped_bytes: float) -> List[VolumeOp]:
        """Turn a repartition's byte movement into reserved-area I/O.

        The Swap Module reads the swapped-in data from and writes the
        swapped-out data to the reserved region (Section III-C); both
        directions move the same number of bytes.
        """
        if swapped_bytes <= 0 or self.regions.swap_blocks == 0:
            return []
        nblocks = max(1, int(swapped_bytes) // BLOCK_SIZE)
        nblocks = min(nblocks, self.regions.swap_blocks)
        start = self.regions.swap_base + (self._swap_cursor % self.regions.swap_blocks)
        nblocks = min(nblocks, self.regions.swap_base + self.regions.swap_blocks - start)
        self._swap_cursor += nblocks
        return [
            VolumeOp(OpType.READ, start, nblocks),
            VolumeOp(OpType.WRITE, start, nblocks),
        ]

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def simulate_power_failure(self) -> None:
        """Drop every piece of volatile (DRAM) state.

        The paper stores the Map table in NVRAM precisely so this is
        survivable (Sections III-B, IV-D.2): after a power failure the
        Map table and the on-disk content are intact, while the DRAM
        caches -- the read cache and the hot fingerprint Index table --
        are lost.  Recovery therefore preserves *correctness* (every
        LBA still resolves to its last-written content) and only
        temporarily reduces the deduplication ratio until the hot
        index re-warms.
        """
        self.cache: DramCache = self._make_cache()
        if self.uses_fingerprints:
            self.index_table = IndexTable(self.cache.index)
            if hasattr(self.cache, "attach_index_table"):
                self.cache.attach_index_table(self.index_table)
        self._volatile_reset()

    def _volatile_reset(self) -> None:
        """Hook for subclasses with extra volatile state."""

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for reports and tests."""
        out = {
            "scheme": self.name,
            "reads": self.reads_total,
            "read_blocks": self.read_blocks_total,
            "read_cache_hit_blocks": self.read_cache_hit_blocks,
            "read_extents": self.read_extents_issued,
            "writes": self.writes_total,
            "write_blocks": self.write_blocks_total,
            "write_requests_removed": self.write_requests_removed,
            "write_blocks_deduped": self.write_blocks_deduped,
            "write_blocks_written": self.write_blocks_written,
            "redirected_writes": self.redirected_writes,
            "stale_dedupe_avoided": self.stale_dedupe_avoided,
            "disk_index_lookups": self.disk_index_lookups,
            "capacity_blocks": self.capacity_blocks(),
            "map_entries": len(self.map_table),
            "nvram_peak_bytes": self.nvram.peak_bytes,
            "chunks_hashed": self.hash_engine.chunks_hashed,
            "quarantined_lbas": len(self.quarantined_lbas),
            "dedupe_bypass_writes": self.dedupe_bypass_writes,
            "quarantine_heals": self.quarantine_heals,
            "quarantine_reads": self.quarantine_reads,
        }
        if self.map_table.journal is not None:
            out["journal_records_appended"] = self.map_table.journal.records_appended
            out["journal_checkpoints"] = self.map_table.journal.checkpoints_taken
        if self.chunker is not None:
            out.update({f"chunking_{k}": v for k, v in self.chunker.stats().items()})
        out.update({f"cache_{k}": v for k, v in self.cache.stats().items()})
        if self.index_table is not None:
            out.update({f"index_{k}": v for k, v in self.index_table.stats().items()})
        return out

    def check_integrity(self, expected: Dict[int, int]) -> List[str]:
        """Verify that every LBA reads back its last-written content.

        ``expected`` maps LBA -> fingerprint (maintained by the test
        oracle).  Returns a list of violation descriptions (empty when
        consistent).
        """
        problems: List[str] = []
        for lba, fp in sorted(expected.items()):
            pba = self.map_table.translate(lba)
            stored = self.content.read(pba)
            if stored != fp:
                problems.append(
                    f"LBA {lba} -> PBA {pba}: expected fp {fp}, found {stored}"
                )
        return problems
