"""iDedup: latency-aware, capacity-oriented inline deduplication.

Srinivasan et al., FAST'12 -- the scheme POD positions itself against.
iDedup exploits *spatial locality*: it deduplicates only sequences of
consecutive duplicate blocks at least ``threshold`` blocks long (we
default to 8 chunks = 32 KB), so deduplicated data stays sequential on
disk and reads are not fragmented.  The flip side, which the paper
hammers on, is that small writes -- the majority of primary-storage
traffic and the most redundant part of it (Fig. 1) -- are never
deduplicated, so iDedup barely reduces the write traffic (Fig. 11)
and improves performance only marginally (Figs. 8, 9).

iDedup keeps its entire dedup metadata in memory (its design point:
"an in-memory fingerprint cache instead of a full on-disk index"), so
a lookup miss simply means "not a duplicate" -- same as POD, no disk
lookups.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme
from repro.core.categorize import sequential_runs
from repro.sim.request import IORequest
from repro.storage.volume import VolumeOp


class IDedup(DedupScheme):
    """Deduplicate only long sequential duplicate runs (large writes)."""

    name = "iDedup"
    features = {
        "capacity_saving": True,
        "performance_enhancement": False,
        "small_writes_elimination": False,
        "large_writes_elimination": True,
        "cache_partitioning": "static",
    }

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        assert self.index_table is not None
        entry = self.index_table.lookup(fingerprint)
        if entry is not None:
            return entry.pba, []
        self.cache.on_index_miss(fingerprint)
        return None, []

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        """Only sequential duplicate runs >= the iDedup threshold."""
        threshold = self.config.idedup_threshold
        chosen: Set[int] = set()
        for start, length in sequential_runs(duplicate_pbas):
            if length >= threshold:
                chosen.update(range(start, start + length))
        return chosen
