"""Full-Dedupe: traditional full inline deduplication.

Deduplicates *every* redundant chunk, using a complete fingerprint
index.  The full index does not fit in DRAM (Section II-B: 1 TB of
4 KB chunks needs ~8 GB of index), so only the hot part lives in the
index cache; resolving a fingerprint that is in the full index but not
in the cache costs one random read in the on-disk index region -- the
classic index-lookup disk bottleneck.

Every hot-cache miss pays an on-disk lookup, present or absent: this
is the traditional full-dedup design the paper compares against
("most of the hash index entries must be stored on disks, where the
in-disk index-lookup operations can become a severe performance
bottleneck", Section II-B).  Bloom-filter-style absent-lookup
avoidance (Zhu et al., FAST'08) belongs to backup-optimised systems
and is deliberately not modelled -- Figure 3's strong dependence of
write latency on the index-cache size only exists without it.

Consequences reproduced here:

* maximum write elimination and capacity saving (Figs. 10, 11),
* read amplification from scattered partial deduplication, which can
  make Full-Dedupe *slower* than Native on workloads like homes
  (Figs. 8, 9),
* extra write-path latency from on-disk index lookups.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme, SchemeConfig
from repro.sim.request import IORequest, OpType
from repro.storage.volume import VolumeOp


class FullDedupe(DedupScheme):
    """Deduplicate every redundant chunk, whatever the cost."""

    name = "Full-Dedupe"
    #: Even a guaranteed-miss probe pays the on-disk index lookup, so
    #: the batch driver's first-occurrence shortcut does not apply.
    fast_unique = False
    features = {
        "capacity_saving": True,
        "performance_enhancement": False,
        "small_writes_elimination": True,
        "large_writes_elimination": True,
        "cache_partitioning": "static",
    }

    def __init__(self, config: SchemeConfig) -> None:
        super().__init__(config)
        #: The complete fingerprint index (conceptually on disk).
        self._full_index: Dict[int, int] = {}
        #: Reverse map for staleness invalidation of the full index.
        self._full_by_pba: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        assert self.index_table is not None
        entry = self.index_table.lookup(fingerprint)
        if entry is not None:
            return entry.pba, []
        # Hot-cache miss: the full index lives on disk, so resolving
        # the fingerprint (present *or* absent) costs one random 4 KB
        # read in the index region.
        self.disk_index_lookups += 1
        ops: List[VolumeOp] = []
        if self.config.charge_index_io and self.regions.index_blocks > 0:
            slot = fingerprint % self.regions.index_blocks
            ops.append(VolumeOp(OpType.READ, self.regions.index_base + slot, 1))
        pba = self._full_index.get(fingerprint)
        if pba is None:
            return None, ops
        self.index_table.insert(fingerprint, pba)
        self.cache.note_index_evictions(self.index_table.drain_evicted())
        return pba, ops

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        """Everything redundant gets deduplicated."""
        return {i for i, pba in enumerate(duplicate_pbas) if pba is not None}

    # ------------------------------------------------------------------
    # keep the full index consistent with physical content
    # ------------------------------------------------------------------

    def _admit_to_index(self, fingerprint: int, pba: int) -> None:
        stale_fp = self._full_by_pba.pop(pba, None)
        if stale_fp is not None and self._full_index.get(stale_fp) == pba:
            del self._full_index[stale_fp]
        old_pba = self._full_index.get(fingerprint)
        if old_pba is not None:
            self._full_by_pba.pop(old_pba, None)
        self._full_index[fingerprint] = pba
        self._full_by_pba[pba] = fingerprint
        super()._admit_to_index(fingerprint, pba)

    def _reclaim(self, freed: Optional[int], keep: Optional[int] = None) -> None:
        if freed is not None and freed != keep:
            stale_fp = self._full_by_pba.pop(freed, None)
            if stale_fp is not None and self._full_index.get(stale_fp) == freed:
                del self._full_index[stale_fp]
        super()._reclaim(freed, keep)

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["full_index_entries"] = len(self._full_index)
        return out
