"""Native: the HDD-based storage system without deduplication.

The reference point every figure normalises to.  Writes land in place
at their home physical address; no fingerprints are computed, no index
exists, and the entire DRAM budget serves as a read cache (a system
without deduplication has no index to cache).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme, PlannedIO, SchemeConfig
from repro.cache.partition import PartitionedCache
from repro.constants import BLOCK_SIZE
from repro.obs.trace import NULL_RECORDER
from repro.sim.request import IORequest, OpType
from repro.storage.volume import VolumeOp, extents_to_ops

#: Shared empty op list for the fast-path plans below.  Consumers of
#: a PlannedIO only iterate its op lists, so sharing one immutable-by-
#: convention instance avoids two list allocations per request.
_NO_OPS: List[VolumeOp] = []


class Native(DedupScheme):
    """No deduplication: every write goes to disk."""

    name = "Native"
    uses_fingerprints = False
    features = {
        "capacity_saving": False,
        "performance_enhancement": False,
        "small_writes_elimination": False,
        "large_writes_elimination": False,
        "cache_partitioning": "n/a",
    }

    def _make_cache(self) -> PartitionedCache:
        # All DRAM is read cache: there is no index to store.
        return PartitionedCache(self.config.memory_bytes, index_fraction=0.0)

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        """Never called (``uses_fingerprints`` is False)."""
        return None, []

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        return set()

    # ------------------------------------------------------------------
    # batched fast path
    # ------------------------------------------------------------------

    def _batch_fast_ok(self) -> bool:
        """Is the specialised :meth:`plan_batch` below exactly the
        generic write/read path?

        Native never deduplicates, so ``MapTable.set_mapping`` is never
        called and the map stays empty for the scheme's whole lifetime:
        every LBA translates to itself, ``choose_write_target`` always
        returns the (unreferenced) home block, and the log allocator is
        never consulted.  The specialisation additionally requires the
        plain fixed-partition read cache with uniform 4 KB entries and
        none of the optional hooks (observation, spans, decision hook,
        quarantine, chunking) armed.
        """
        return (
            type(self) is Native
            and len(self.map_table) == 0
            and not self.quarantined_lbas
            and self.decision_hook is None
            and self.spans is None
            and self.chunker is None
            and self.obs is NULL_RECORDER
            and type(self.cache) is PartitionedCache
            and self.cache.read.capacity_bytes >= BLOCK_SIZE
        )

    def plan_batch(
        self,
        requests: Sequence[IORequest],
        chunk_unique: Optional[Sequence[Optional[Sequence[bool]]]] = None,
    ) -> List[PlannedIO]:
        """Plan a window of requests through the no-dedup fast path.

        Bit-identical to the generic path (pinned by the golden batch
        tests): with an always-empty map table the write commit per
        block reduces to recording the content, touching the written
        set and invalidating the read cache, and the write extent is a
        single contiguous :class:`VolumeOp`.  The read path inlines the
        LRU read cache (uniform ``BLOCK_SIZE`` entries), reproducing
        its hit/miss/eviction accounting exactly; counters accumulate
        in locals and flush once per call.
        """
        if not self._batch_fast_ok():
            return super().plan_batch(requests, chunk_unique)
        read_lru = self.cache.read
        entries = read_lru._entries  # pod: ignore[POD007]
        e_get = entries.get
        e_pop = entries.pop
        e_popitem = entries.popitem
        move_to_end = entries.move_to_end
        capacity = read_lru.capacity_bytes
        used = read_lru._used  # pod: ignore[POD007]
        hits_c = misses_c = evictions_c = 0
        content = self.content._content  # pod: ignore[POD007]
        written_add = self.written_lbas.add
        reads_c = read_blocks_c = read_hits_c = read_extents_c = 0
        writes_c = write_blocks_c = 0
        write_op = OpType.WRITE
        read_op = OpType.READ
        out: List[PlannedIO] = []
        append = out.append

        for request in requests:
            lba = request.lba
            n = request.nblocks
            if request.op is write_op:
                writes_c += 1
                write_blocks_c += n
                fps = request.fingerprints
                assert fps is not None
                for pba, fp in zip(range(lba, lba + n), fps):
                    written_add(pba)
                    content[pba] = fp
                    e = e_pop(pba, None)
                    if e is not None:
                        used -= e[1]
                append(PlannedIO(0.0, [VolumeOp(write_op, lba, n)], _NO_OPS))
            else:
                reads_c += 1
                read_blocks_c += n
                missing: List[int] = []
                mappend = missing.append
                hits = 0
                for pba in range(lba, lba + n):
                    e = e_get(pba)
                    if e is None:
                        misses_c += 1
                        mappend(pba)
                    else:
                        move_to_end(pba)
                        hits_c += 1
                        hits += 1
                read_hits_c += hits
                if missing:
                    ops = extents_to_ops(read_op, missing)
                    read_extents_c += len(ops)
                    # Same iteration order as the generic path's
                    # ``set(missing)`` insert loop (LRU insertion order
                    # is observable through later evictions).
                    for pba in set(missing):
                        entries[pba] = (True, BLOCK_SIZE)
                        used += BLOCK_SIZE
                        while used > capacity:
                            _k, (_v, s) = e_popitem(last=False)
                            used -= s
                            evictions_c += 1
                    append(PlannedIO(0.0, ops, _NO_OPS, False, 0, hits))
                else:
                    append(PlannedIO(0.0, _NO_OPS, _NO_OPS, False, 0, hits))

        read_lru._used = used  # pod: ignore[POD007]
        read_lru.hits += hits_c
        read_lru.misses += misses_c
        read_lru.evictions += evictions_c
        self.reads_total += reads_c
        self.read_blocks_total += read_blocks_c
        self.read_cache_hit_blocks += read_hits_c
        self.read_extents_issued += read_extents_c
        self.writes_total += writes_c
        self.write_blocks_total += write_blocks_c
        self.write_blocks_written += write_blocks_c
        return out

    def plan_columns(
        self,
        a: int,
        b: int,
        is_write: Sequence[bool],
        lbas: Sequence[int],
        nblocks: Sequence[int],
        fp_offsets: Sequence[int],
        fp_ids: Sequence[int],
        pool: Sequence[int],
    ) -> Optional[List[PlannedIO]]:
        """Columns-native twin of :meth:`plan_batch` (same inlined
        no-dedup core, kept in lockstep): plans straight off the merged
        column lists so the driver skips request materialisation."""
        if not self._batch_fast_ok():
            return None
        read_lru = self.cache.read
        entries = read_lru._entries  # pod: ignore[POD007]
        e_get = entries.get
        e_pop = entries.pop
        e_popitem = entries.popitem
        move_to_end = entries.move_to_end
        capacity = read_lru.capacity_bytes
        used = read_lru._used  # pod: ignore[POD007]
        hits_c = misses_c = evictions_c = 0
        content = self.content._content  # pod: ignore[POD007]
        written_add = self.written_lbas.add
        reads_c = read_blocks_c = read_hits_c = read_extents_c = 0
        writes_c = write_blocks_c = 0
        write_op = OpType.WRITE
        read_op = OpType.READ
        out: List[PlannedIO] = []
        append = out.append

        for i in range(a, b):
            lba = lbas[i]
            n = nblocks[i]
            if is_write[i]:
                writes_c += 1
                write_blocks_c += n
                k = fp_offsets[i]
                if n == 1:
                    written_add(lba)
                    content[lba] = pool[fp_ids[k]]
                    e = e_pop(lba, None)
                    if e is not None:
                        used -= e[1]
                else:
                    for pba, fid in zip(range(lba, lba + n), fp_ids[k : k + n]):
                        written_add(pba)
                        content[pba] = pool[fid]
                        e = e_pop(pba, None)
                        if e is not None:
                            used -= e[1]
                append(PlannedIO(0.0, [VolumeOp(write_op, lba, n)], _NO_OPS))
            elif n == 1:
                # Single-block read: one probe, one extent on a miss.
                reads_c += 1
                read_blocks_c += 1
                e = e_get(lba)
                if e is None:
                    misses_c += 1
                    read_extents_c += 1
                    entries[lba] = (True, BLOCK_SIZE)
                    used += BLOCK_SIZE
                    while used > capacity:
                        _k, (_v, s) = e_popitem(last=False)
                        used -= s
                        evictions_c += 1
                    append(
                        PlannedIO(0.0, [VolumeOp(read_op, lba, 1)], _NO_OPS)
                    )
                else:
                    move_to_end(lba)
                    hits_c += 1
                    read_hits_c += 1
                    append(PlannedIO(0.0, _NO_OPS, _NO_OPS, False, 0, 1))
            else:
                reads_c += 1
                read_blocks_c += n
                missing: List[int] = []
                mappend = missing.append
                hits = 0
                for pba in range(lba, lba + n):
                    e = e_get(pba)
                    if e is None:
                        misses_c += 1
                        mappend(pba)
                    else:
                        move_to_end(pba)
                        hits_c += 1
                        hits += 1
                read_hits_c += hits
                if missing:
                    ops = extents_to_ops(read_op, missing)
                    read_extents_c += len(ops)
                    for pba in set(missing):
                        entries[pba] = (True, BLOCK_SIZE)
                        used += BLOCK_SIZE
                        while used > capacity:
                            _k, (_v, s) = e_popitem(last=False)
                            used -= s
                            evictions_c += 1
                    append(PlannedIO(0.0, ops, _NO_OPS, False, 0, hits))
                else:
                    append(PlannedIO(0.0, _NO_OPS, _NO_OPS, False, 0, hits))

        read_lru._used = used  # pod: ignore[POD007]
        read_lru.hits += hits_c
        read_lru.misses += misses_c
        read_lru.evictions += evictions_c
        self.reads_total += reads_c
        self.read_blocks_total += read_blocks_c
        self.read_cache_hit_blocks += read_hits_c
        self.read_extents_issued += read_extents_c
        self.writes_total += writes_c
        self.write_blocks_total += write_blocks_c
        self.write_blocks_written += write_blocks_c
        return out
