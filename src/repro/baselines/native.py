"""Native: the HDD-based storage system without deduplication.

The reference point every figure normalises to.  Writes land in place
at their home physical address; no fingerprints are computed, no index
exists, and the entire DRAM budget serves as a read cache (a system
without deduplication has no index to cache).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme, SchemeConfig
from repro.cache.partition import PartitionedCache
from repro.sim.request import IORequest
from repro.storage.volume import VolumeOp


class Native(DedupScheme):
    """No deduplication: every write goes to disk."""

    name = "Native"
    uses_fingerprints = False
    features = {
        "capacity_saving": False,
        "performance_enhancement": False,
        "small_writes_elimination": False,
        "large_writes_elimination": False,
        "cache_partitioning": "n/a",
    }

    def _make_cache(self) -> PartitionedCache:
        # All DRAM is read cache: there is no index to store.
        return PartitionedCache(self.config.memory_bytes, index_fraction=0.0)

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        """Never called (``uses_fingerprints`` is False)."""
        return None, []

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        return set()
