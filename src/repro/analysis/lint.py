"""The POD determinism linter: a custom AST pass over the repo.

Usage::

    repro lint                                # lint src/, text output
    python -m repro.analysis.lint src tests   # explicit paths
    repro lint --flow src tests               # + dataflow tier (POD008..)
    repro lint --format json                  # machine readable
    repro lint --format sarif                 # GitHub code scanning
    repro lint --flow --fix src               # autofix mechanical rules
    repro lint --flow --baseline .pod-baseline.json
    repro lint --select POD001,POD005         # subset of rules
    repro lint --list-rules                   # rule catalogue

Two tiers produce findings:

* the **syntactic** tier (always on): single-module AST pattern rules
  ``POD001``..``POD007``;
* the **dataflow** tier (``--flow``): whole-package taint analysis
  (:mod:`repro.analysis.flow`) producing ``POD008``..``POD012``, plus
  the ``POD090`` meta-rule flagging suppressions that suppress nothing.

Each finding carries a stable rule code (``POD001``...).  A finding can
be suppressed on its line with the escape hatch::

    t0 = time.time()  # pod: ignore[POD001]
    t0 = time.time()  # pod: ignore          (all rules on this line)

Pragmas are read from real comment tokens only (a pragma inside a
string literal is inert), and under ``--flow`` a pragma that suppresses
nothing is itself reported (``POD090``).  Accepted legacy findings live
in a committed baseline file (``--baseline``/``--write-baseline``); a
finding matching the baseline is filtered out, and stale entries are
reported so the baseline only ever shrinks.

Exit status: 0 = clean, 1 = findings, 2 = usage or parse errors.

The rules themselves are catalogued in :mod:`repro.analysis.rules` and
documented with examples in ``docs/analysis.md``.  The linter is
self-hosting: CI runs the syntactic tier over ``src/`` and the flow
tier over ``src/`` *and* ``tests/`` (SARIF-uploaded to code scanning)
and fails on any non-baselined finding.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import (
    ALL_RULES,
    DETERMINISTIC_PACKAGES,
    ENTROPY_SUFFIXES,
    NP_RNG_OK,
    Rule,
    RuleScope,
    WALL_CLOCK_SUFFIXES,
    is_timey_identifier,
    matches_suffix,
)

#: Bumped on any breaking change to the JSON findings layout.
LINT_OUTPUT_VERSION = 1

# ----------------------------------------------------------------------
# findings and ignore pragmas
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``fixes`` carries insert-only text edits ((line, col, text)) for
    mechanically fixable findings; it is tool plumbing, not part of the
    reported document (``as_dict``/``render`` omit it).
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    fixes: Tuple[Tuple[int, int, str], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    parse_errors: List[str]
    #: findings filtered out by the suppression baseline
    baselined: int = 0
    #: baseline entries that matched nothing (candidates for pruning)
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": LINT_OUTPUT_VERSION,
            "kind": "pod-lint-report",
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "parse_errors": list(self.parse_errors),
            "baselined": self.baselined,
            "stale_baseline": list(self.stale_baseline),
        }


#: matches the ``pod: ignore`` comment pragma, bare or with a
#: bracketed rule-code list
_IGNORE_RE = re.compile(
    r"#\s*pod:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]*)\])?", re.IGNORECASE
)


def _pragma_from_comment(comment: str) -> Optional[FrozenSet[str]]:
    m = _IGNORE_RE.search(comment)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.split(",") if c.strip())


def _ignored_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule codes (empty set = all).

    Pragmas are extracted from real COMMENT tokens, so ``# pod:
    ignore`` inside a string literal is inert (it used to suppress).
    Falls back to a plain line scan if tokenisation fails -- the AST
    parse will report the underlying syntax error anyway.
    """
    out: Dict[int, FrozenSet[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                codes = _pragma_from_comment(tok.string)
                if codes is not None:
                    out[tok.start[0]] = codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            codes = _pragma_from_comment(line)
            if codes is not None:
                out[lineno] = codes
    return out


def _suppressed(
    ignores: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    codes = ignores.get(line)
    if codes is None:
        return False
    return not codes or code in codes


def normalize_path(path: str) -> str:
    """Repo-relative POSIX path for baselines and SARIF URIs.

    Anchors at the last ``src``/``tests``/``benchmarks`` component so
    the same file fingerprints identically whether linted as
    ``src/repro/x.py`` or ``/abs/repo/src/repro/x.py``.
    """
    parts = Path(path).as_posix().split("/")
    for anchor in ("src", "tests", "benchmarks", "scripts", "examples"):
        if anchor in parts:
            return "/".join(parts[len(parts) - 1 - parts[::-1].index(anchor):])
    return parts[-1]


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Shared domain tables now live in :mod:`repro.analysis.rules` so the
#: dataflow tier can match the same vocabulary; module-local aliases
#: keep this file's rule checks readable.
_WALL_CLOCK_SUFFIXES = WALL_CLOCK_SUFFIXES
_NP_RNG_OK = NP_RNG_OK
_ENTROPY_SUFFIXES = ENTROPY_SUFFIXES
_matches_suffix = matches_suffix

#: Mutable default constructors (POD004), by callable name.
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "OrderedDict", "deque",
                  "defaultdict", "Counter"}


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _param_names(args: ast.arguments) -> Tuple[str, ...]:
    return tuple(
        a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    )


def _is_timey(node: ast.AST) -> bool:
    return is_timey_identifier(_terminal_identifier(node))


def _is_level_guard_test(test: ast.AST) -> bool:
    """True when an ``if`` test is (or contains) a trace-level guard."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in ("level", "enabled"):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "wants"
        ):
            return True
        if isinstance(node, ast.Name) and re.search(
            r"level|trace|guard|obs", node.id, re.IGNORECASE
        ):
            return True
    return False


def _is_recorder_receiver(func: ast.Attribute) -> bool:
    """Does ``<recv>.emit(...)`` target a TraceRecorder-like object?"""
    recv = func.value
    ident = _terminal_identifier(recv)
    if ident is None:
        return False
    return ident == "obs" or "recorder" in ident.lower()


# ----------------------------------------------------------------------
# the visitor
# ----------------------------------------------------------------------


class _PodVisitor(ast.NodeVisitor):
    """Collects findings for one module."""

    def __init__(self, path: str, deterministic: bool) -> None:
        self.path = path
        self.deterministic = deterministic
        self.findings: List[Finding] = []
        #: Stack of enclosing ``if`` guard flags (True = level guard).
        self._guards: List[bool] = []
        #: Stack of enclosing function parameter tuples (seed lookup
        #: for the POD002 autofix).
        self._param_stack: List[Tuple[str, ...]] = []

    # -- plumbing ------------------------------------------------------

    def _add(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        fixes: Tuple[Tuple[int, int, str], ...] = (),
    ) -> None:
        if rule.scope is RuleScope.DETERMINISTIC and not self.deterministic:
            return
        self.findings.append(
            Finding(
                code=rule.code,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                fixes=fixes,
            )
        )

    def _seed_expr(self) -> str:
        """Seed expression for the POD002 autofix: prefer an in-scope
        ``seed`` parameter, then ``config.seed``/``cfg.seed``, then the
        literal ``0`` fallback."""
        for params in reversed(self._param_stack):
            if "seed" in params:
                return "seed"
        for params in reversed(self._param_stack):
            if "config" in params:
                return "config.seed"
            if "cfg" in params:
                return "cfg.seed"
        return "0"

    # -- POD001 / POD002 / POD005 / POD006: calls ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_wall_clock(node, dotted)
            self._check_global_rng_call(node, dotted)
            self._check_entropy(node, dotted)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "emit":
            self._check_emit_guard(node)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        hit = _matches_suffix(dotted, _WALL_CLOCK_SUFFIXES)
        if hit is not None:
            self._add(
                ALL_RULES["POD001"],
                node,
                f"wall-clock call {dotted}() in a deterministic package; "
                "inject a clock (callable) instead",
            )

    def _check_global_rng_call(self, node: ast.Call, dotted: str) -> None:
        rule = ALL_RULES["POD002"]
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) > 1:
            self._add(
                rule,
                node,
                f"stdlib global RNG call {dotted}(); thread a seeded "
                "np.random.Generator instead",
            )
            return
        for i, part in enumerate(parts[:-1]):
            if part == "random" and parts[i - 1] in ("np", "numpy") and i >= 1:
                tail = parts[-1]
                if tail == "default_rng":
                    if not node.args and not node.keywords:
                        fixes: Tuple[Tuple[int, int, str], ...] = ()
                        end_line = getattr(node, "end_lineno", None)
                        end_col = getattr(node, "end_col_offset", None)
                        if end_line is not None and end_col:
                            fixes = ((end_line, end_col - 1, self._seed_expr()),)
                        self._add(
                            rule,
                            node,
                            "unseeded np.random.default_rng(); pass an "
                            "explicit seed",
                            fixes=fixes,
                        )
                elif tail not in _NP_RNG_OK:
                    self._add(
                        rule,
                        node,
                        f"numpy legacy global RNG call {dotted}(); use a "
                        "seeded np.random.Generator instead",
                    )
                return

    def _check_entropy(self, node: ast.Call, dotted: str) -> None:
        hit = _matches_suffix(dotted, _ENTROPY_SUFFIXES)
        if hit is None and dotted.split(".")[0] == "secrets":
            hit = dotted
        if hit is not None:
            self._add(
                ALL_RULES["POD006"],
                node,
                f"ambient process entropy {dotted}() in a deterministic "
                "package",
            )

    def _check_emit_guard(self, node: ast.Call) -> None:
        assert isinstance(node.func, ast.Attribute)
        if not _is_recorder_receiver(node.func):
            return
        if not any(self._guards):
            self._add(
                ALL_RULES["POD005"],
                node,
                "TraceRecorder emission without an enclosing level guard "
                "(`if <recorder>.level >= TraceLevel.X:`); the disabled "
                "path must cost one integer compare",
            )

    # -- POD002 / POD006: imports and attributes -----------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._add(
                    ALL_RULES["POD002"],
                    node,
                    "import of the stdlib global `random` module in a "
                    "deterministic package",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self._add(
                ALL_RULES["POD002"],
                node,
                "from-import of the stdlib global `random` module in a "
                "deterministic package",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_name(node)
        if dotted is not None and _matches_suffix(dotted, ("os.environ",)):
            self._add(
                ALL_RULES["POD006"],
                node,
                "os.environ access in a deterministic package; thread "
                "configuration explicitly",
            )
        self._check_private_access(node)
        self.generic_visit(node)

    # -- POD007: cross-object private attribute access -------------------

    def _check_private_access(self, node: ast.Attribute) -> None:
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            return
        recv = node.value
        # ``self._x`` / ``cls._x`` are the class's own business.
        if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
            return
        # ``super()._x(...)`` is cooperative inheritance, not a breach.
        if (
            isinstance(recv, ast.Call)
            and _dotted_name(recv.func) == "super"
        ):
            return
        self._add(
            ALL_RULES["POD007"],
            node,
            f"access to another object's private attribute `.{attr}`; "
            "add/use a sanctioned accessor on the owning class instead",
        )

    # -- POD003: float time equality -----------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(
                isinstance(side, ast.Constant)
                and (side.value is None or isinstance(side.value, (str, bool)))
                for side in (left, right)
            ):
                continue
            if _is_timey(left) or _is_timey(right):
                self._add(
                    ALL_RULES["POD003"],
                    node,
                    "float ==/!= on a simulated-time expression; exact "
                    "identity of derived times depends on evaluation "
                    "order -- compare with a tolerance or restructure",
                )
                break
        self.generic_visit(node)

    # -- POD004: mutable default arguments ------------------------------

    def _check_defaults(self, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            bad = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            )
            if not bad and isinstance(default, ast.Call):
                name = _dotted_name(default.func)
                bad = name is not None and name.split(".")[-1] in _MUTABLE_CTORS
            if bad:
                self._add(
                    ALL_RULES["POD004"],
                    default,
                    "mutable default argument; default to None (or use "
                    "dataclasses.field(default_factory=...))",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        self._check_defaults(args)
        self._param_stack.append(_param_names(args))
        self.generic_visit(node)
        self._param_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    # -- guard tracking -------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._guards.append(_is_level_guard_test(node.test))
        for child in node.body:
            self.visit(child)
        self._guards.pop()
        # The else branch is not covered by the test's guard.
        self._guards.append(False)
        for child in node.orelse:
            self.visit(child)
        self._guards.pop()

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        # ``guard and obs.emit(...)`` counts as guarded when the left
        # operand is a level guard (short-circuit evaluation).
        if isinstance(node.op, ast.And) and len(node.values) > 1:
            guard = any(_is_level_guard_test(v) for v in node.values[:-1])
            for value in node.values[:-1]:
                self.visit(value)
            self._guards.append(guard)
            self.visit(node.values[-1])
            self._guards.pop()
            return
        self.generic_visit(node)


# ----------------------------------------------------------------------
# driving
# ----------------------------------------------------------------------


def is_deterministic_path(path: str) -> bool:
    """Does ``path`` live inside a determinism-critical package?"""
    posix = Path(path).as_posix()
    return any(fragment in posix for fragment in DETERMINISTIC_PACKAGES)


def _collect_raw(
    source: str,
    path: str,
    deterministic: Optional[bool],
    select: Optional[Set[str]],
) -> List[Finding]:
    """Syntactic-tier findings before pragma suppression."""
    if deterministic is None:
        deterministic = is_deterministic_path(path)
    tree = ast.parse(source, filename=path)
    visitor = _PodVisitor(path, deterministic)
    visitor.visit(tree)
    return [
        f for f in visitor.findings if select is None or f.code in select
    ]


def lint_source(
    source: str,
    path: str = "<string>",
    deterministic: Optional[bool] = None,
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one module's source text (syntactic tier only).

    ``deterministic`` forces the scope decision (``None`` = infer from
    ``path``); ``select`` restricts to a subset of rule codes.
    """
    ignores = _ignored_lines(source)
    findings = [
        f
        for f in _collect_raw(source, path, deterministic, select)
        if not _suppressed(ignores, f.line, f.code)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


#: Marker file: a directory containing it is skipped when expanding
#: directories (the seeded-bug fixture corpus must not self-host-fail
#: the tree it lives in).  Explicit file arguments are always linted.
EXCLUDE_MARKER = ".pod-lint-exclude"


def _excluded(file: Path) -> bool:
    return any((parent / EXCLUDE_MARKER).exists() for parent in file.parents)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
                and ".egg-info" not in str(f)
                and not _excluded(f)
            )
        elif p.suffix == ".py":
            out.append(p)
    return sorted(set(out))


# ----------------------------------------------------------------------
# suppression baseline
# ----------------------------------------------------------------------

#: Bumped on any breaking change to the baseline file layout.
BASELINE_VERSION = 1

_Fingerprint = Tuple[str, str, str]  # (code, normalized path, line text)


def _fingerprint(finding: Finding, sources: Dict[str, str]) -> _Fingerprint:
    """Line-number-free identity of a finding, stable across edits
    elsewhere in the file (code, repo-relative path, stripped line)."""
    text = ""
    source = sources.get(finding.path)
    if source is not None:
        lines = source.splitlines()
        if 1 <= finding.line <= len(lines):
            text = lines[finding.line - 1].strip()
    return (finding.code, normalize_path(finding.path), text)


def load_baseline(path: Path) -> Dict[_Fingerprint, int]:
    """Baseline file -> fingerprint multiset.  Missing file = empty."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}
    counts: Dict[_Fingerprint, int] = {}
    for entry in data.get("entries", []):
        key = (str(entry["code"]), str(entry["path"]), str(entry["text"]))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def write_baseline(
    path: Path, findings: Sequence[Finding], sources: Dict[str, str]
) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    counts: Dict[_Fingerprint, int] = {}
    for finding in findings:
        key = _fingerprint(finding, sources)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"code": code, "path": npath, "text": text, "count": count}
        for (code, npath, text), count in sorted(counts.items())
    ]
    document = {
        "version": BASELINE_VERSION,
        "kind": "pod-lint-baseline",
        "entries": entries,
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def lint_paths(
    paths: Iterable[str],
    select: Optional[Set[str]] = None,
    *,
    flow: bool = False,
    baseline: Optional[Path] = None,
    write_baseline_to: Optional[Path] = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    ``flow=True`` adds the whole-program dataflow tier (POD008..POD012)
    and the POD090 unused-suppression meta-check.  ``baseline`` filters
    findings against a committed suppression baseline (stale entries
    are reported); ``write_baseline_to`` writes the current findings as
    the new baseline instead of failing on them.
    """
    parse_errors: List[str] = []
    files = iter_python_files(paths)
    sources: Dict[str, str] = {}
    raw: List[Finding] = []
    for file in files:
        key = str(file)
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            parse_errors.append(f"{file}: {exc}")
            continue
        sources[key] = source
        try:
            raw.extend(_collect_raw(source, key, None, select))
        except SyntaxError as exc:
            parse_errors.append(f"{file}: {exc.msg} (line {exc.lineno})")

    if flow:
        # Imported lazily: the flow tier pulls in the whole summary
        # machinery, which plain syntactic lints never need.
        from repro.analysis.flow import analyze_files

        flow_report = analyze_files(sorted(sources.items()))
        for ff in flow_report.findings:
            if select is None or ff.code in select:
                raw.append(
                    Finding(
                        code=ff.code,
                        path=ff.path,
                        line=ff.line,
                        col=ff.col,
                        message=ff.message,
                        fixes=ff.fixes,
                    )
                )

    by_path: Dict[str, List[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)

    findings: List[Finding] = []
    for path, source in sources.items():
        ignores = _ignored_lines(source)
        used_lines: Set[int] = set()
        for finding in by_path.get(path, []):
            if _suppressed(ignores, finding.line, finding.code):
                used_lines.add(finding.line)
            else:
                findings.append(finding)
        # POD090: a pragma must suppress something.  Only meaningful
        # when the full rule set ran (otherwise a narrowed --select
        # would make every other pragma look dead).
        if flow and select is None:
            for line, codes in sorted(ignores.items()):
                unknown = sorted(c for c in codes if c not in ALL_RULES)
                if unknown:
                    findings.append(
                        Finding(
                            code="POD090",
                            path=path,
                            line=line,
                            col=0,
                            message=(
                                "`# pod: ignore` pragma names unknown rule "
                                f"code(s) {', '.join(unknown)}; fix or "
                                "remove them"
                            ),
                        )
                    )
                elif line not in used_lines:
                    findings.append(
                        Finding(
                            code="POD090",
                            path=path,
                            line=line,
                            col=0,
                            message=(
                                "`# pod: ignore` pragma suppresses nothing "
                                "(no enabled rule fires on this line); "
                                "remove or narrow it"
                            ),
                        )
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    if write_baseline_to is not None:
        write_baseline(write_baseline_to, findings, sources)

    baselined = 0
    stale: List[str] = []
    if baseline is not None:
        remaining = load_baseline(baseline)
        kept: List[Finding] = []
        for finding in findings:
            key = _fingerprint(finding, sources)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                kept.append(finding)
        findings = kept
        stale = [
            f"{code} {npath}: {text!r} x{count}"
            for (code, npath, text), count in sorted(remaining.items())
            if count > 0
        ]

    return LintReport(
        findings=findings,
        files_checked=len(files),
        parse_errors=parse_errors,
        baselined=baselined,
        stale_baseline=stale,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "POD determinism linter (syntactic rules POD001..POD007; "
            "--flow adds the dataflow tier POD008..POD012 + POD090)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="run the whole-program dataflow tier (taint analysis, "
             "rules POD008..POD012, unused-suppression POD090)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="findings output format (sarif = SARIF 2.1.0 for GitHub "
             "code scanning)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma list of rule codes to enable (default: all)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (sorted() wraps for POD009, RNG "
             "seeds for POD002), then re-lint",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppression baseline: findings matching it are filtered "
             "out; stale entries are reported and fail the run",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--dump-summaries", action="store_true",
        help="print the interprocedural call summaries as JSON and exit "
             "(implies --flow)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        if args.format == "json":
            print(json.dumps(
                {"version": LINT_OUTPUT_VERSION,
                 "rules": [r.as_dict() for r in ALL_RULES.values()]},
                indent=2,
            ))
        else:
            for rule in ALL_RULES.values():
                print(f"{rule.code}  {rule.name} "
                      f"[{rule.scope.value}/{rule.tier.value}]")
                print(f"        {rule.summary}")
        return 0

    select: Optional[Set[str]] = None
    if args.select is not None:
        select = {c.strip().upper() for c in args.select.split(",") if c.strip()}
        unknown = select - set(ALL_RULES)
        if unknown:
            print(f"unknown rule codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not pass as "0 findings in 0 files" --
        # this tool gates CI.
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.dump_summaries:
        from repro.analysis.flow import analyze_files

        pairs: List[Tuple[str, str]] = []
        for file in iter_python_files(args.paths):
            try:
                pairs.append((str(file), file.read_text(encoding="utf-8")))
            except OSError:
                continue
        print(json.dumps(analyze_files(pairs).summaries_as_dict(), indent=2))
        return 0

    baseline = Path(args.baseline) if args.baseline else None

    def run() -> LintReport:
        return lint_paths(
            args.paths, select=select, flow=args.flow, baseline=baseline
        )

    report = run()
    if args.fix:
        from repro.analysis.fix import fix_findings

        result = fix_findings(f for f in report.findings if f.fixes)
        if result:
            print(
                f"fixed {result.findings_fixed} finding(s) in "
                f"{len(result.files_changed)} file(s)",
                file=sys.stderr,
            )
            report = run()

    if args.write_baseline:
        report = lint_paths(
            args.paths,
            select=select,
            flow=args.flow,
            write_baseline_to=Path(args.write_baseline),
        )
        print(
            f"wrote {len(report.findings)} finding(s) to baseline "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(json.dumps(render_sarif(report), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for error in report.parse_errors:
            print(f"parse error: {error}", file=sys.stderr)
        for entry in report.stale_baseline:
            print(f"stale baseline entry: {entry}", file=sys.stderr)
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s)"
        )
        if report.baselined:
            summary += f" ({report.baselined} baselined)"
        print(("" if not report.findings else "\n") + summary)
    if report.parse_errors:
        return 2
    return 1 if report.findings or report.stale_baseline else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
