"""The POD determinism linter: a custom AST pass over the repo.

Usage::

    repro lint                                # lint src/, text output
    python -m repro.analysis.lint src tests   # explicit paths
    repro lint --format json                  # machine readable
    repro lint --select POD001,POD005         # subset of rules
    repro lint --list-rules                   # rule catalogue

Each finding carries a stable rule code (``POD001``...).  A finding can
be suppressed on its line with the escape hatch::

    t0 = time.time()  # pod: ignore[POD001]
    t0 = time.time()  # pod: ignore          (all rules on this line)

Exit status: 0 = clean, 1 = findings, 2 = usage or parse errors.

The rules themselves are catalogued in :mod:`repro.analysis.rules` and
documented with examples in ``docs/analysis.md``.  The linter is
self-hosting: CI runs it over the whole of ``src/`` and fails on any
finding.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import ALL_RULES, DETERMINISTIC_PACKAGES, Rule, RuleScope

#: Bumped on any breaking change to the JSON findings layout.
LINT_OUTPUT_VERSION = 1

# ----------------------------------------------------------------------
# findings and ignore pragmas
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    parse_errors: List[str]

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": LINT_OUTPUT_VERSION,
            "kind": "pod-lint-report",
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "parse_errors": list(self.parse_errors),
        }


#: ``# pod: ignore`` or ``# pod: ignore[POD001, POD005]``
_IGNORE_RE = re.compile(
    r"#\s*pod:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]*)\])?", re.IGNORECASE
)


def _ignored_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule codes (empty set = all)."""
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = frozenset()
        else:
            out[lineno] = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip()
            )
    return out


def _suppressed(
    ignores: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    codes = ignores.get(line)
    if codes is None:
        return False
    return not codes or code in codes


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Wall-clock call suffixes banned in deterministic packages (POD001).
_WALL_CLOCK_SUFFIXES: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: numpy RNG constructors that are fine when explicitly seeded.
_NP_RNG_OK = {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox",
              "SFC64", "MT19937", "RandomState"}

#: Ambient-entropy call/attribute suffixes (POD006).
_ENTROPY_SUFFIXES: Tuple[str, ...] = (
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "os.getpid",
    "os.getenv",
)

#: Mutable default constructors (POD004), by callable name.
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "OrderedDict", "deque",
                  "defaultdict", "Counter"}

#: Identifier segments that mark an expression as simulated time
#: (POD003).  Matched against ``_``-separated segments of the terminal
#: identifier, so ``arrival_time`` and ``t`` match but ``total`` and
#: ``threshold`` do not.
_TIMEY_SEGMENTS = {"t", "now", "time", "arrival", "completion", "deadline",
                   "timestamp", "makespan"}
_TIMEY_EXACT = {"busy_until", "next_time", "last_arrival", "completed_at",
                "issue_time", "ssd_done"}


def _matches_suffix(dotted: str, suffixes: Sequence[str]) -> Optional[str]:
    for suffix in suffixes:
        if dotted == suffix or dotted.endswith("." + suffix):
            return suffix
    return None


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_timey(node: ast.AST) -> bool:
    ident = _terminal_identifier(node)
    if ident is None:
        return False
    if ident in _TIMEY_EXACT:
        return True
    return any(seg in _TIMEY_SEGMENTS for seg in ident.lower().split("_"))


def _is_level_guard_test(test: ast.AST) -> bool:
    """True when an ``if`` test is (or contains) a trace-level guard."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr in ("level", "enabled"):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "wants"
        ):
            return True
        if isinstance(node, ast.Name) and re.search(
            r"level|trace|guard|obs", node.id, re.IGNORECASE
        ):
            return True
    return False


def _is_recorder_receiver(func: ast.Attribute) -> bool:
    """Does ``<recv>.emit(...)`` target a TraceRecorder-like object?"""
    recv = func.value
    ident = _terminal_identifier(recv)
    if ident is None:
        return False
    return ident == "obs" or "recorder" in ident.lower()


# ----------------------------------------------------------------------
# the visitor
# ----------------------------------------------------------------------


class _PodVisitor(ast.NodeVisitor):
    """Collects findings for one module."""

    def __init__(self, path: str, deterministic: bool) -> None:
        self.path = path
        self.deterministic = deterministic
        self.findings: List[Finding] = []
        #: Stack of enclosing ``if`` guard flags (True = level guard).
        self._guards: List[bool] = []

    # -- plumbing ------------------------------------------------------

    def _add(self, rule: Rule, node: ast.AST, message: str) -> None:
        if rule.scope is RuleScope.DETERMINISTIC and not self.deterministic:
            return
        self.findings.append(
            Finding(
                code=rule.code,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- POD001 / POD002 / POD005 / POD006: calls ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_wall_clock(node, dotted)
            self._check_global_rng_call(node, dotted)
            self._check_entropy(node, dotted)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "emit":
            self._check_emit_guard(node)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        hit = _matches_suffix(dotted, _WALL_CLOCK_SUFFIXES)
        if hit is not None:
            self._add(
                ALL_RULES["POD001"],
                node,
                f"wall-clock call {dotted}() in a deterministic package; "
                "inject a clock (callable) instead",
            )

    def _check_global_rng_call(self, node: ast.Call, dotted: str) -> None:
        rule = ALL_RULES["POD002"]
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) > 1:
            self._add(
                rule,
                node,
                f"stdlib global RNG call {dotted}(); thread a seeded "
                "np.random.Generator instead",
            )
            return
        for i, part in enumerate(parts[:-1]):
            if part == "random" and parts[i - 1] in ("np", "numpy") and i >= 1:
                tail = parts[-1]
                if tail == "default_rng":
                    if not node.args and not node.keywords:
                        self._add(
                            rule,
                            node,
                            "unseeded np.random.default_rng(); pass an "
                            "explicit seed",
                        )
                elif tail not in _NP_RNG_OK:
                    self._add(
                        rule,
                        node,
                        f"numpy legacy global RNG call {dotted}(); use a "
                        "seeded np.random.Generator instead",
                    )
                return

    def _check_entropy(self, node: ast.Call, dotted: str) -> None:
        hit = _matches_suffix(dotted, _ENTROPY_SUFFIXES)
        if hit is None and dotted.split(".")[0] == "secrets":
            hit = dotted
        if hit is not None:
            self._add(
                ALL_RULES["POD006"],
                node,
                f"ambient process entropy {dotted}() in a deterministic "
                "package",
            )

    def _check_emit_guard(self, node: ast.Call) -> None:
        assert isinstance(node.func, ast.Attribute)
        if not _is_recorder_receiver(node.func):
            return
        if not any(self._guards):
            self._add(
                ALL_RULES["POD005"],
                node,
                "TraceRecorder emission without an enclosing level guard "
                "(`if <recorder>.level >= TraceLevel.X:`); the disabled "
                "path must cost one integer compare",
            )

    # -- POD002 / POD006: imports and attributes -----------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._add(
                    ALL_RULES["POD002"],
                    node,
                    "import of the stdlib global `random` module in a "
                    "deterministic package",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self._add(
                ALL_RULES["POD002"],
                node,
                "from-import of the stdlib global `random` module in a "
                "deterministic package",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted_name(node)
        if dotted is not None and _matches_suffix(dotted, ("os.environ",)):
            self._add(
                ALL_RULES["POD006"],
                node,
                "os.environ access in a deterministic package; thread "
                "configuration explicitly",
            )
        self._check_private_access(node)
        self.generic_visit(node)

    # -- POD007: cross-object private attribute access -------------------

    def _check_private_access(self, node: ast.Attribute) -> None:
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            return
        recv = node.value
        # ``self._x`` / ``cls._x`` are the class's own business.
        if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
            return
        # ``super()._x(...)`` is cooperative inheritance, not a breach.
        if (
            isinstance(recv, ast.Call)
            and _dotted_name(recv.func) == "super"
        ):
            return
        self._add(
            ALL_RULES["POD007"],
            node,
            f"access to another object's private attribute `.{attr}`; "
            "add/use a sanctioned accessor on the owning class instead",
        )

    # -- POD003: float time equality -----------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(
                isinstance(side, ast.Constant)
                and (side.value is None or isinstance(side.value, (str, bool)))
                for side in (left, right)
            ):
                continue
            if _is_timey(left) or _is_timey(right):
                self._add(
                    ALL_RULES["POD003"],
                    node,
                    "float ==/!= on a simulated-time expression; exact "
                    "identity of derived times depends on evaluation "
                    "order -- compare with a tolerance or restructure",
                )
                break
        self.generic_visit(node)

    # -- POD004: mutable default arguments ------------------------------

    def _check_defaults(self, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            bad = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            )
            if not bad and isinstance(default, ast.Call):
                name = _dotted_name(default.func)
                bad = name is not None and name.split(".")[-1] in _MUTABLE_CTORS
            if bad:
                self._add(
                    ALL_RULES["POD004"],
                    default,
                    "mutable default argument; default to None (or use "
                    "dataclasses.field(default_factory=...))",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    # -- guard tracking -------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._guards.append(_is_level_guard_test(node.test))
        for child in node.body:
            self.visit(child)
        self._guards.pop()
        # The else branch is not covered by the test's guard.
        self._guards.append(False)
        for child in node.orelse:
            self.visit(child)
        self._guards.pop()

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        # ``guard and obs.emit(...)`` counts as guarded when the left
        # operand is a level guard (short-circuit evaluation).
        if isinstance(node.op, ast.And) and len(node.values) > 1:
            guard = any(_is_level_guard_test(v) for v in node.values[:-1])
            for value in node.values[:-1]:
                self.visit(value)
            self._guards.append(guard)
            self.visit(node.values[-1])
            self._guards.pop()
            return
        self.generic_visit(node)


# ----------------------------------------------------------------------
# driving
# ----------------------------------------------------------------------


def is_deterministic_path(path: str) -> bool:
    """Does ``path`` live inside a determinism-critical package?"""
    posix = Path(path).as_posix()
    return any(fragment in posix for fragment in DETERMINISTIC_PACKAGES)


def lint_source(
    source: str,
    path: str = "<string>",
    deterministic: Optional[bool] = None,
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one module's source text.

    ``deterministic`` forces the scope decision (``None`` = infer from
    ``path``); ``select`` restricts to a subset of rule codes.
    """
    if deterministic is None:
        deterministic = is_deterministic_path(path)
    tree = ast.parse(source, filename=path)
    visitor = _PodVisitor(path, deterministic)
    visitor.visit(tree)
    ignores = _ignored_lines(source)
    findings = [
        f
        for f in visitor.findings
        if not _suppressed(ignores, f.line, f.code)
        and (select is None or f.code in select)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts and ".egg-info" not in str(f)
            )
        elif p.suffix == ".py":
            out.append(p)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str], select: Optional[Set[str]] = None
) -> LintReport:
    """Lint every Python file under ``paths``."""
    findings: List[Finding] = []
    parse_errors: List[str] = []
    files = iter_python_files(paths)
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
            findings.extend(
                lint_source(source, path=str(file), select=select)
            )
        except SyntaxError as exc:
            parse_errors.append(f"{file}: {exc.msg} (line {exc.lineno})")
        except OSError as exc:
            parse_errors.append(f"{file}: {exc}")
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return LintReport(
        findings=findings, files_checked=len(files), parse_errors=parse_errors
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="POD determinism linter (rules POD001..POD007)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="findings output format",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma list of rule codes to enable (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        if args.format == "json":
            print(json.dumps(
                {"version": LINT_OUTPUT_VERSION,
                 "rules": [r.as_dict() for r in ALL_RULES.values()]},
                indent=2,
            ))
        else:
            for rule in ALL_RULES.values():
                print(f"{rule.code}  {rule.name} [{rule.scope.value}]")
                print(f"        {rule.summary}")
        return 0

    select: Optional[Set[str]] = None
    if args.select is not None:
        select = {c.strip().upper() for c in args.select.split(",") if c.strip()}
        unknown = select - set(ALL_RULES)
        if unknown:
            print(f"unknown rule codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    report = lint_paths(args.paths, select=select)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for error in report.parse_errors:
            print(f"parse error: {error}", file=sys.stderr)
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s)"
        )
        print(("" if not report.findings else "\n") + summary)
    if report.parse_errors:
        return 2
    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
