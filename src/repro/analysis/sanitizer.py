"""The POD invariant sanitizer: a debug-mode runtime validator.

The paper's correctness story rests on structural invariants that the
unit tests exercise point-wise but nothing re-checks *continuously*
while a replay runs.  :class:`PodSanitizer` re-derives each invariant
from the live scheme state; the replay engine invokes it every
``sanitize_every`` requests and at every iCache epoch boundary when
``--check-invariants`` is passed (``ReplayConfig.check_invariants``).

Checked invariants (each has a stable code used in diagnostics):

``INV-MAP-LIVE``
    Every Map-table entry points at a PBA inside the home or log
    region that physically holds content; log-region targets are
    live in the allocator (Section III-B: deduplicated LBAs link to
    "a unique and distinctive physical data block").
``INV-MAP-MINIMAL``
    No Map-table entry is an identity mapping (LBA -> its own home
    block); the table stores *redirections* only, which is what makes
    the 20 B/entry NVRAM model honest.
``INV-REFCOUNT``
    The per-PBA reference counts equal the counts recomputed from the
    mapping itself -- no leaks, no underflow, every tracked count >= 1.
``INV-INDEX-PBA``
    The Index table's reverse PBA map is an exact bijection with its
    live entries (a stale claim would block future invalidations and
    let dedupe hit overwritten blocks).
``INV-INDEX-COUNT``
    ``Count`` bookkeeping is conservative: counts are non-negative and
    the counts carried by live + swap-parked entries never exceed the
    lookup hits actually observed by the table's LRU (every Count
    increment is one Select-Dedupe hit; Section III-B).
``INV-CAT-SEQ``
    Figure-5 decisions only deduplicate chunk runs whose duplicate
    targets are *consecutive on disk* -- a full-request run, or runs
    of at least the category-3 threshold (enforced per decision via
    :meth:`PodSanitizer.attach`).
``INV-IDEDUP-THRESHOLD``
    iDedup decisions only deduplicate sequential duplicate runs of at
    least ``idedup_threshold`` chunks, with *no* full-request
    exemption -- iDedup's spatial-locality rule is unconditional
    (Srinivasan et al., FAST'12; enforced per decision via
    :meth:`PodSanitizer.attach`).
``INV-CACHE-BUDGET``
    Index + read partitions exactly exhaust the DRAM budget, every
    actual/ghost cache respects its byte capacity, and each ghost's
    capacity is the complement of its actual cache (``actual + ghost``
    bounded by total DRAM, Section III-C).
``INV-CACHE-DISJOINT``
    ARC-style disjointness: no key is simultaneously in an actual
    cache and its ghost (a resident block must not register ghost
    hits for itself).
``INV-NVRAM-MODEL``
    NVRAM accounting matches the 20 B/entry Map-table model exactly:
    ``entries == len(map_table)``, ``bytes == entries * 20`` and the
    peak is monotone.
``INV-REFS-DELTA``
    Windowed flow conservation: between two consecutive checks of the
    same scheme, the Map table cannot have gained more entries than
    the scheme performed entry-creating operations (deduplicated
    write blocks plus redirected writes) in the same window -- every
    new redirection must be accounted for by a write-path decision.
    When a :class:`~repro.obs.registry.MetricsRegistry` is attached,
    each check also snapshots ``sanitizer.map_entries`` and
    ``sanitizer.refcount_total`` gauges so run reports carry the
    refcount-delta timeline.

The sanitizer is observation-only: it reads state, never mutates it,
and never advances simulated time -- ``--check-invariants`` must not
change a single completion time (tests/integration assert this).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import DedupScheme
    from repro.obs.registry import MetricsRegistry
    from repro.sim.request import IORequest

#: Stable invariant codes, in catalogue order (docs/analysis.md).
INVARIANT_CODES = (
    "INV-MAP-LIVE",
    "INV-MAP-MINIMAL",
    "INV-REFCOUNT",
    "INV-INDEX-PBA",
    "INV-INDEX-COUNT",
    "INV-CAT-SEQ",
    "INV-IDEDUP-THRESHOLD",
    "INV-CACHE-BUDGET",
    "INV-CACHE-DISJOINT",
    "INV-NVRAM-MODEL",
    "INV-REFS-DELTA",
)

#: Cap on violations reported per check (diagnostics stay readable
#: even when a corruption cascades).
MAX_VIOLATIONS_PER_CHECK = 20


@dataclass(frozen=True)
class Violation:
    """One broken invariant with a precise diagnostic."""

    code: str
    message: str
    t: float = 0.0

    def render(self) -> str:
        return f"[{self.code}] t={self.t:.6f}: {self.message}"


class InvariantViolationError(ReproError):
    """Raised by :meth:`PodSanitizer.assert_clean` on any violation."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations: List[Violation] = list(violations)
        lines = "\n  ".join(v.render() for v in self.violations)
        super().__init__(
            f"{len(self.violations)} POD invariant violation(s):\n  {lines}"
        )


# ----------------------------------------------------------------------
# Figure-5 decision validation (INV-CAT-SEQ)
# ----------------------------------------------------------------------


def validate_dedupe_selection(
    duplicate_pbas: Sequence[Optional[int]],
    chosen: Set[int],
    threshold: int,
    sequential_policy: bool = True,
    full_request_exemption: bool = True,
    code: str = "INV-CAT-SEQ",
) -> List[Violation]:
    """Validate one write-path dedupe decision against its policy.

    ``chosen`` is the set of chunk indices the scheme decided to
    deduplicate; ``duplicate_pbas`` the per-chunk candidate targets.
    Universal rule: only chunks with a known duplicate may be chosen.
    With ``sequential_policy``, chosen chunks must additionally
    decompose into runs of consecutive indices whose targets are
    consecutive PBAs, each run at least ``threshold`` chunks long.
    ``full_request_exemption`` admits a single run covering the whole
    request regardless of length (Select-Dedupe's category 1 -- a
    fully redundant request is always eliminated); iDedup has no such
    exemption, its threshold applies to every run (pass ``False`` and
    ``code="INV-IDEDUP-THRESHOLD"``).
    """
    violations: List[Violation] = []
    n = len(duplicate_pbas)
    for i in sorted(chosen):
        if i < 0 or i >= n:
            violations.append(Violation(
                code,
                f"dedupe decision chose chunk {i} outside request of {n} chunks",
            ))
            return violations
        if duplicate_pbas[i] is None:
            violations.append(Violation(
                code,
                f"dedupe decision chose chunk {i} with no known duplicate",
            ))
    if violations or not chosen or not sequential_policy:
        return violations

    # Decompose the chosen set into maximal (index, PBA)-consecutive runs.
    runs: List[int] = []
    ordered = sorted(chosen)
    run_len = 1
    for prev, cur in zip(ordered, ordered[1:]):
        prev_pba, cur_pba = duplicate_pbas[prev], duplicate_pbas[cur]
        assert prev_pba is not None and cur_pba is not None
        if cur == prev + 1 and cur_pba == prev_pba + 1:
            run_len += 1
        else:
            runs.append(run_len)
            run_len = 1
    runs.append(run_len)

    fully_redundant = (
        full_request_exemption and len(chosen) == n and len(runs) == 1
    )
    if not fully_redundant:
        for length in runs:
            if length < threshold:
                violations.append(Violation(
                    code,
                    f"sequential-run decision deduplicated a run of {length} "
                    f"chunk(s) below the threshold of {threshold} (or the "
                    "duplicate targets are not sequential on disk)",
                ))
    return violations


# ----------------------------------------------------------------------
# the sanitizer
# ----------------------------------------------------------------------


@dataclass
class SanitizerStats:
    """Counters describing what the sanitizer did (run reports)."""

    checks_run: int = 0
    decisions_validated: int = 0
    violations_found: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "checks_run": self.checks_run,
            "decisions_validated": self.decisions_validated,
            "violations_found": self.violations_found,
        }


class PodSanitizer:
    """Re-derives every POD invariant from live scheme state.

    Parameters
    ----------
    fail_fast:
        When true (the default), :meth:`check_scheme` callers using
        :meth:`assert_clean` raise on the first dirty check; when
        false, violations accumulate in :attr:`violations` (tests).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When
        given, every :meth:`check_scheme` call snapshots the Map-table
        entry count and total refcount mass into
        ``sanitizer.map_entries`` / ``sanitizer.refcount_total``
        gauges and bumps the ``sanitizer.checks`` counter, so the
        refcount-delta timeline lands in run reports for free.
    """

    def __init__(
        self,
        fail_fast: bool = True,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.fail_fast = fail_fast
        self.registry = registry
        self.stats = SanitizerStats()
        #: Violations accumulated when ``fail_fast`` is off.
        self.violations: List[Violation] = []
        #: Last-check snapshots for the INV-REFS-DELTA window, keyed
        #: by ``id(scheme)`` (one sanitizer may watch several schemes
        #: in comparison harnesses).  Each value is
        #: ``(map_entries, write_blocks_deduped, redirected_writes)``.
        self._delta_baseline: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # per-decision hook (INV-CAT-SEQ)
    # ------------------------------------------------------------------

    def attach(self, scheme: "DedupScheme") -> None:
        """Install per-decision validation on the scheme's write path.

        Observation only: the scheme invokes
        :attr:`~repro.baselines.base.DedupScheme.decision_hook` with
        every ``(request, duplicate_pbas, chosen)`` decision and
        ignores the hook's return value.  The policy enforced depends
        on the scheme:

        * Select-Dedupe family (incl. POD): Figure-5 semantics --
          sequential runs of at least ``select_threshold`` chunks, with
          the full-request (category 1) exemption (``INV-CAT-SEQ``);
        * iDedup: sequential runs of at least ``idedup_threshold``
          chunks, *no* full-request exemption -- iDedup's threshold is
          unconditional (``INV-IDEDUP-THRESHOLD``);
        * everything else: only the universal "chosen chunks must have
          a known duplicate" rule.
        """
        from repro.baselines.idedup import IDedup
        from repro.core.select_dedupe import SelectDedupe

        if isinstance(scheme, SelectDedupe):
            sequential_policy = True
            full_request_exemption = True
            threshold = scheme.config.select_threshold
            code = "INV-CAT-SEQ"
        elif isinstance(scheme, IDedup):
            sequential_policy = True
            full_request_exemption = False
            threshold = scheme.config.idedup_threshold
            code = "INV-IDEDUP-THRESHOLD"
        else:
            sequential_policy = False
            full_request_exemption = True
            threshold = scheme.config.select_threshold
            code = "INV-CAT-SEQ"

        def checked(
            request: "IORequest",
            duplicate_pbas: Sequence[Optional[int]],
            chosen: Set[int],
        ) -> None:
            self.stats.decisions_validated += 1
            violations = validate_dedupe_selection(
                duplicate_pbas, chosen, threshold,
                sequential_policy=sequential_policy,
                full_request_exemption=full_request_exemption,
                code=code,
            )
            if violations:
                self._report([
                    Violation(v.code, f"req {request.req_id}: {v.message}", v.t)
                    for v in violations
                ])

        scheme.decision_hook = checked

    # ------------------------------------------------------------------
    # state checks
    # ------------------------------------------------------------------

    def check_scheme(self, scheme: "DedupScheme", now: float = 0.0) -> List[Violation]:
        """Run every structural invariant against ``scheme``.

        Returns the violations found (empty = clean); does not raise.
        """
        self.stats.checks_run += 1
        out: List[Violation] = []
        out.extend(self._check_map_table(scheme))
        out.extend(self._check_index_table(scheme))
        out.extend(self._check_cache(scheme))
        out.extend(self._check_nvram(scheme))
        out.extend(self._check_refs_delta(scheme))
        out = out[:MAX_VIOLATIONS_PER_CHECK]
        if out:
            stamped = [Violation(v.code, v.message, now) for v in out]
            self.stats.violations_found += len(stamped)
            self.violations.extend(stamped)
            return stamped
        return []

    def assert_clean(self, scheme: "DedupScheme", now: float = 0.0) -> None:
        """Raise :class:`InvariantViolationError` if any invariant broke."""
        violations = self.check_scheme(scheme, now)
        if violations and self.fail_fast:
            raise InvariantViolationError(violations)

    def _report(self, violations: List[Violation]) -> None:
        self.stats.violations_found += len(violations)
        self.violations.extend(violations)
        if self.fail_fast:
            raise InvariantViolationError(violations)

    # -- Map table ------------------------------------------------------

    def _check_map_table(self, scheme: "DedupScheme") -> List[Violation]:
        out: List[Violation] = []
        table = scheme.map_table
        regions = scheme.regions
        mapping: Mapping[int, int] = table.mapping
        for lba, pba in mapping.items():
            if not (0 <= pba < regions.total_blocks):
                out.append(Violation(
                    "INV-MAP-LIVE",
                    f"LBA {lba} maps to PBA {pba} outside the volume of "
                    f"{regions.total_blocks} blocks",
                ))
                continue
            if not (regions.is_home(pba) or regions.is_log(pba)):
                out.append(Violation(
                    "INV-MAP-LIVE",
                    f"LBA {lba} maps to PBA {pba} in a metadata region "
                    "(index/swap); data lives in home/log only",
                ))
                continue
            if pba == regions.home_of(lba):
                out.append(Violation(
                    "INV-MAP-MINIMAL",
                    f"identity mapping stored for LBA {lba} (home PBA "
                    f"{pba}); redirections only -- the 20 B/entry NVRAM "
                    "model counts deduplicated writes",
                ))
            if scheme.content.read(pba) is None:
                out.append(Violation(
                    "INV-MAP-LIVE",
                    f"LBA {lba} maps to PBA {pba} holding no content "
                    "(dangling redirection)",
                ))
            if regions.is_log(pba) and not scheme.log_alloc.is_allocated(pba):
                out.append(Violation(
                    "INV-MAP-LIVE",
                    f"LBA {lba} maps to freed log block {pba} "
                    "(use-after-free redirection)",
                ))

        recomputed = _Counter(mapping.values())
        refs: Mapping[int, int] = table.refcounts
        for pba, count in refs.items():
            if count < 1:
                out.append(Violation(
                    "INV-REFCOUNT",
                    f"PBA {pba} tracked with non-positive refcount {count}",
                ))
            if recomputed.get(pba, 0) != count:
                out.append(Violation(
                    "INV-REFCOUNT",
                    f"PBA {pba} has refcount {count} but "
                    f"{recomputed.get(pba, 0)} map entries reference it",
                ))
        for pba, count in recomputed.items():
            if pba not in refs:
                out.append(Violation(
                    "INV-REFCOUNT",
                    f"PBA {pba} referenced by {count} map entries but "
                    "missing from the refcount table",
                ))
        return out

    # -- Index table ----------------------------------------------------

    def _check_index_table(self, scheme: "DedupScheme") -> List[Violation]:
        out: List[Violation] = []
        table = scheme.index_table
        if table is None:
            return out
        lru = table.lru
        by_pba: Mapping[int, int] = table.pba_claims
        live_count_sum = 0
        seen_pbas: Set[int] = set()
        for fp in lru.keys_lru_order():
            entry = lru.peek(fp)
            assert entry is not None
            if entry.count < 0:
                out.append(Violation(
                    "INV-INDEX-COUNT",
                    f"fingerprint {fp} carries negative Count {entry.count}",
                ))
            live_count_sum += max(entry.count, 0)
            if entry.pba in seen_pbas:
                out.append(Violation(
                    "INV-INDEX-PBA",
                    f"two live index entries claim PBA {entry.pba} "
                    "(m-to-1 means one fingerprint per physical block)",
                ))
            seen_pbas.add(entry.pba)
            if by_pba.get(entry.pba) != fp:
                out.append(Violation(
                    "INV-INDEX-PBA",
                    f"fingerprint {fp} -> PBA {entry.pba} but the reverse "
                    f"map says PBA {entry.pba} -> "
                    f"{by_pba.get(entry.pba)!r}",
                ))
        for pba, fp in by_pba.items():
            if fp not in lru:
                out.append(Violation(
                    "INV-INDEX-PBA",
                    f"reverse map claims PBA {pba} -> fingerprint {fp} "
                    "but no live entry exists (stale claim blocks "
                    "invalidation)",
                ))

        parked_count_sum = 0
        parked = getattr(scheme.cache, "parked_index_entries", None)
        if parked is not None:
            parked_count_sum = sum(
                max(entry.count, 0) for entry in parked().values()
            )
        if live_count_sum + parked_count_sum > lru.hits:
            out.append(Violation(
                "INV-INDEX-COUNT",
                f"Count bookkeeping exceeds observed lookups: live counts "
                f"{live_count_sum} + swap-parked counts {parked_count_sum} "
                f"> {lru.hits} Index-table hits (each Count increment is "
                "one dedup hit)",
            ))
        return out

    # -- caches ---------------------------------------------------------

    def _check_cache(self, scheme: "DedupScheme") -> List[Violation]:
        out: List[Violation] = []
        cache = scheme.cache
        index = getattr(cache, "index", None)
        read = getattr(cache, "read", None)
        if index is None or read is None:
            return out

        config = getattr(cache, "config", None)
        total = (
            config.total_bytes
            if config is not None
            else getattr(cache, "total_bytes", None)
        )
        if total is not None:
            if index.capacity_bytes + read.capacity_bytes != total:
                out.append(Violation(
                    "INV-CACHE-BUDGET",
                    f"partitions exceed the DRAM budget: index "
                    f"{index.capacity_bytes} B + read {read.capacity_bytes} "
                    f"B != total {total} B",
                ))
        for name, lru in (("index", index), ("read", read)):
            if lru.used_bytes > lru.capacity_bytes:
                out.append(Violation(
                    "INV-CACHE-BUDGET",
                    f"{name} cache uses {lru.used_bytes} B over its "
                    f"capacity of {lru.capacity_bytes} B",
                ))

        ghost_index = getattr(cache, "ghost_index", None)
        ghost_read = getattr(cache, "ghost_read", None)
        if ghost_index is None or ghost_read is None:
            return out
        assert total is not None
        for name, actual, ghost in (
            ("index", index, ghost_index),
            ("read", read, ghost_read),
        ):
            if ghost.capacity_bytes != total - actual.capacity_bytes:
                out.append(Violation(
                    "INV-CACHE-BUDGET",
                    f"ghost {name} capacity {ghost.capacity_bytes} B is not "
                    f"the complement of the actual cache "
                    f"({total} - {actual.capacity_bytes} B); actual + ghost "
                    "must be bounded by total DRAM",
                ))
            if ghost.used_bytes > ghost.capacity_bytes:
                out.append(Violation(
                    "INV-CACHE-BUDGET",
                    f"ghost {name} cache uses {ghost.used_bytes} B over its "
                    f"capacity of {ghost.capacity_bytes} B",
                ))
            overlap = [key for key in actual if key in ghost]
            if overlap:
                out.append(Violation(
                    "INV-CACHE-DISJOINT",
                    f"{len(overlap)} key(s) live in both the actual and "
                    f"ghost {name} caches (e.g. {overlap[0]!r}); a resident "
                    "entry must not register ghost hits",
                ))
        return out

    # -- refcount-delta flow conservation -------------------------------

    def _check_refs_delta(self, scheme: "DedupScheme") -> List[Violation]:
        """INV-REFS-DELTA: windowed Map-table growth accounting.

        The only operations that *create* Map-table entries are
        write-path dedupe decisions (``write_blocks_deduped``) and
        content-redirected writes (``redirected_writes``), so between
        two consecutive checks the entry count cannot have grown by
        more than the sum of those counters' deltas.  Shrinkage is
        always legal (overwrites clear redirections; crash recovery
        may drop entries).  Per-check gauge snapshots land in the
        attached registry so the timeline is inspectable offline.
        """
        out: List[Violation] = []
        entries = len(scheme.map_table)
        deduped = scheme.write_blocks_deduped
        redirected = scheme.redirected_writes
        if self.registry is not None:
            self.registry.set("sanitizer.map_entries", float(entries))
            self.registry.set(
                "sanitizer.refcount_total",
                float(sum(scheme.map_table.refcounts.values())),
            )
            self.registry.inc("sanitizer.checks")
        key = id(scheme)
        baseline = self._delta_baseline.get(key)
        self._delta_baseline[key] = (entries, deduped, redirected)
        if baseline is None:
            return out
        prev_entries, prev_deduped, prev_redirected = baseline
        d_entries = entries - prev_entries
        d_ops = (deduped - prev_deduped) + (redirected - prev_redirected)
        if d_ops < 0:
            out.append(Violation(
                "INV-REFS-DELTA",
                f"entry-creating counters went backwards between checks "
                f"(deduped {prev_deduped}->{deduped}, redirected "
                f"{prev_redirected}->{redirected}); counters are monotone",
            ))
        elif d_entries > d_ops:
            out.append(Violation(
                "INV-REFS-DELTA",
                f"Map table gained {d_entries} entries between checks but "
                f"only {d_ops} entry-creating operations happened "
                f"(deduped-block delta + redirected-write delta); "
                "redirections appeared from nowhere",
            ))
        return out

    # -- NVRAM ----------------------------------------------------------

    def _check_nvram(self, scheme: "DedupScheme") -> List[Violation]:
        out: List[Violation] = []
        nvram = scheme.nvram
        entries = len(scheme.map_table)
        if nvram.entries != entries:
            out.append(Violation(
                "INV-NVRAM-MODEL",
                f"NVRAM meter tracks {nvram.entries} entries but the Map "
                f"table holds {entries}",
            ))
        if nvram.bytes_used != nvram.entries * nvram.entry_size:
            out.append(Violation(
                "INV-NVRAM-MODEL",
                f"NVRAM bytes {nvram.bytes_used} != entries "
                f"{nvram.entries} x {nvram.entry_size} B/entry",
            ))
        if nvram.peak_entries < nvram.entries:
            out.append(Violation(
                "INV-NVRAM-MODEL",
                f"NVRAM peak {nvram.peak_entries} below the live entry "
                f"count {nvram.entries} (peak must be monotone)",
            ))
        return out

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Sanitizer self-description for run reports."""
        out: Dict[str, Any] = dict(self.stats.as_dict())
        out["invariants"] = list(INVARIANT_CODES)
        return out
