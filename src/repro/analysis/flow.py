"""The dataflow lint tier: taint tracking for determinism bugs.

``repro lint --flow`` runs this engine over the whole analysis set at
once (``src/`` *and* ``tests/`` in CI).  It is flow-sensitive within a
function and interprocedural through call summaries:

* :mod:`repro.analysis.summaries` parses every module into a symbol
  table (functions, methods, imports, callable aliases, frozen
  dataclasses, container annotations);
* a small abstract domain (:class:`Taint`) tags values as ``SimTime``,
  ``WallClock``, ``UnseededRng``, ``SeededRng`` or ``Unordered``
  (dict/set iteration order);
* an abstract interpreter propagates taint through assignments,
  attribute stores, f-strings, container/builtin ops, comprehensions
  and calls, joining environments at control-flow merges;
* function summaries (``returns`` taint + which parameters flow into
  the return value) are computed to a fixpoint over the call graph, so
  a ``time.time()`` laundered through two helper modules still arrives
  at its deterministic-package call site carrying ``WallClock``.

The five rules this tier produces (POD008..POD012) are catalogued in
:mod:`repro.analysis.rules` and documented with examples in
``docs/analysis.md`` ("Dataflow tier").

The sanctioned injected-clock idiom is recognised structurally: calling
a value that *any parameter flows into* (``(clock or _WALL_CLOCK)()``)
is injection, not laundering, and produces no taint.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.rules import (
    ALL_RULES,
    NP_RNG_OK,
    Rule,
    RuleScope,
    WALL_CLOCK_SUFFIXES,
    is_timey_identifier,
    matches_suffix,
)
from repro.analysis.summaries import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
    annotation_is_int,
    annotation_is_unordered,
    build_symbol_table,
    dotted_name,
)

__all__ = [
    "FlowReport",
    "FlowFinding",
    "FunctionSummary",
    "Taint",
    "TaintValue",
    "analyze_files",
    "compute_summaries",
]

#: Summary fixpoint rounds; the call graph is shallow (helpers rarely
#: nest more than 3 deep) and the domain is a finite union lattice, so
#: this converges almost immediately.
_MAX_ROUNDS = 5


class Taint(enum.Flag):
    """The abstract domain: what a value is derived from."""

    NONE = 0
    SIM_TIME = enum.auto()      #: simulated-time floats (Simulator.now, ...)
    WALL_CLOCK = enum.auto()    #: host wall-clock reads
    UNSEEDED_RNG = enum.auto()  #: global/unseeded RNG draws
    SEEDED_RNG = enum.auto()    #: draws from an explicitly seeded Generator
    UNORDERED = enum.auto()     #: iteration order of dict/set-like values

    def names(self) -> List[str]:
        return [t.name or "" for t in Taint if t is not Taint.NONE and t in self]


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural call summary: what calling a function yields.

    ``returns`` is the taint the return value intrinsically carries
    (independent of arguments); ``param_flow`` lists the parameter
    indices whose taint flows into the return value, so call sites can
    splice in argument taint.  ``as_dict`` is the JSON format dumped by
    ``repro lint --flow --dump-summaries``.
    """

    returns: Taint = Taint.NONE
    param_flow: FrozenSet[int] = frozenset()
    param_names: Tuple[str, ...] = ()
    is_method: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "returns": sorted(self.returns.names()),
            "param_flow": sorted(self.param_flow),
            "params": list(self.param_names),
            "method": self.is_method,
        }


_EMPTY_SUMMARY = FunctionSummary()


@dataclass(frozen=True)
class TaintValue:
    """One abstract value: taint flags, parameter provenance, and --
    for function-valued expressions -- the summary of calling it."""

    taint: Taint = Taint.NONE
    params: FrozenSet[int] = frozenset()
    summary: Optional[FunctionSummary] = None

    def join(self, other: "TaintValue") -> "TaintValue":
        summary = self.summary
        if other.summary is not None:
            if summary is None:
                summary = other.summary
            else:
                summary = FunctionSummary(
                    returns=summary.returns | other.summary.returns,
                    param_flow=summary.param_flow | other.summary.param_flow,
                    param_names=summary.param_names or other.summary.param_names,
                    is_method=summary.is_method or other.summary.is_method,
                )
        return TaintValue(
            taint=self.taint | other.taint,
            params=self.params | other.params,
            summary=summary,
        )

    def with_taint(self, taint: Taint) -> "TaintValue":
        return replace(self, taint=taint)


_NONE_VALUE = TaintValue()


@dataclass(frozen=True)
class FlowFinding:
    """One dataflow finding, pre-merge (lint.py turns these into
    :class:`repro.analysis.lint.Finding` rows, applying pragmas)."""

    code: str
    path: str
    line: int
    col: int
    message: str
    #: Insert-only text edits ((line, col, text), applied by fix.py)
    #: for mechanically fixable findings.
    fixes: Tuple[Tuple[int, int, str], ...] = ()


@dataclass
class FlowReport:
    """Everything one flow-analysis run produced."""

    findings: List[FlowFinding]
    parse_errors: List[str]
    summaries: Dict[str, FunctionSummary]

    def summaries_as_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            key: s.as_dict()
            for key, s in sorted(self.summaries.items())
            if s != _EMPTY_SUMMARY
        }


# ----------------------------------------------------------------------
# call classification helpers
# ----------------------------------------------------------------------

#: Builtins whose result preserves the argument's iteration (dis)order.
_ORDER_PRESERVING = {"list", "tuple", "iter", "reversed", "enumerate", "zip"}
#: Builtins whose result is order-insensitive (or scalar).
_ORDER_INSENSITIVE = {"min", "max", "sum", "len", "any", "all", "abs",
                      "round", "str", "repr", "int", "float", "bool",
                      "format", "id", "hash"}
#: Constructors whose result iterates in hash order regardless of input.
_UNORDERED_CTORS = {"set", "frozenset"}
#: Mapping methods whose result iterates in the mapping's order.
_MAPPING_VIEWS = {"keys", "values", "items"}

#: Method calls that write loop-ordered output: appending to report
#: rows, emitting JSONL events, serialising documents.  A dict/set
#: iteration whose body reaches one of these is POD009.
_ORDER_SINK_METHODS = {"append", "extend", "write", "writelines", "emit",
                       "writerow", "dump", "dumps"}


def _rng_classify(node: ast.Call, dotted: Optional[str]) -> Optional[str]:
    """``"unseeded"``/``"seeded"`` for RNG constructor/draw calls."""
    if dotted is None:
        return None
    parts = dotted.split(".")
    has_args = bool(node.args or node.keywords)
    if parts[0] == "random" and len(parts) > 1:
        if parts[-1] in ("Random", "SystemRandom"):
            return "seeded" if has_args else "unseeded"
        return "unseeded"
    for i in range(1, len(parts) - 1):
        if parts[i] == "random" and parts[i - 1] in ("np", "numpy"):
            tail = parts[-1]
            if tail == "default_rng":
                return "seeded" if has_args else "unseeded"
            if tail in NP_RNG_OK:
                return "seeded" if has_args else "unseeded"
            return "unseeded"
    return None


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_timey_node(node: ast.AST) -> bool:
    return is_timey_identifier(_terminal_identifier(node))


def _has_order_sink(body: Sequence[ast.stmt]) -> bool:
    """Does a loop body write anything whose order the loop dictates?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SINK_METHODS
                ):
                    return True
                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    return True
    return False


#: Single-argument wrappers the sorted() fix descends through, so
#: ``enumerate(series)`` becomes ``enumerate(sorted(series))`` (sorting
#: *outside* enumerate would order by index, fixing nothing).
_WRAP_THROUGH = {"enumerate", "list", "tuple", "iter"}


def _fix_target(node: ast.expr) -> ast.expr:
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _WRAP_THROUGH
        and len(node.args) == 1
        and not node.keywords
    ):
        node = node.args[0]
    return node


def _wrap_sorted_fixes(node: ast.expr) -> Tuple[Tuple[int, int, str], ...]:
    """Insert-edits wrapping an expression in ``sorted(...)``."""
    node = _fix_target(node)
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:  # pragma: no cover
        return ()
    if isinstance(node, ast.GeneratorExp):
        # A generator expression's span includes its parentheses (for a
        # sole call argument, the *call's* parentheses); insert inside
        # them so ``join(x for y)`` becomes ``join(sorted(x for y))``.
        return (
            (node.lineno, node.col_offset + 1, "sorted("),
            (end_line, end_col - 1, ")"),
        )
    return (
        (node.lineno, node.col_offset, "sorted("),
        (end_line, end_col, ")"),
    )


# ----------------------------------------------------------------------
# the abstract interpreter
# ----------------------------------------------------------------------


class _Interp:
    """Abstract interpretation of one function (or module body)."""

    def __init__(
        self,
        module: ModuleInfo,
        symtab: SymbolTable,
        summaries: Dict[str, FunctionSummary],
        *,
        deterministic: bool,
        current_class: Optional[ClassInfo] = None,
        func: Optional[FunctionInfo] = None,
        emit: bool = True,
    ) -> None:
        self.module = module
        self.symtab = symtab
        self.summaries = summaries
        self.deterministic = deterministic
        self.current_class = current_class
        self.func = func
        self.func_name = func.name if func is not None else "<module>"
        self.emit_findings = emit
        self.env: Dict[str, TaintValue] = {}
        self.findings: List[FlowFinding] = []
        self._seen: Set[Tuple[str, int, int]] = set()
        #: enclosing-loop unordered flags (POD011 accumulation check)
        self._loops: List[bool] = []
        self._ret = _NONE_VALUE

        if func is not None:
            annotations = func.param_annotations()
            for idx, name in enumerate(func.param_names()):
                ann = annotations.get(name)
                taint = Taint.NONE
                if is_timey_identifier(name) and not annotation_is_int(ann):
                    taint |= Taint.SIM_TIME
                if annotation_is_unordered(ann):
                    taint |= Taint.UNORDERED
                self.env[name] = TaintValue(
                    taint=taint, params=frozenset((idx,))
                )

    # -- plumbing ------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> TaintValue:
        self._exec_block(body)
        return self._ret

    def _emit(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        fixes: Tuple[Tuple[int, int, str], ...] = (),
    ) -> None:
        if not self.emit_findings:
            return
        if rule.scope is RuleScope.DETERMINISTIC and not self.deterministic:
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (rule.code, line, col)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            FlowFinding(
                code=rule.code,
                path=self.module.path,
                line=line,
                col=col,
                message=message,
                fixes=fixes,
            )
        )

    # -- statements ----------------------------------------------------

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt)
            return
        # Generic fallback: evaluate expressions, recurse into nested
        # statement blocks sequentially (match/try*/async variants).
        for name, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                stmts = [s for s in value if isinstance(s, ast.stmt)]
                if stmts:
                    self._exec_block(stmts)
            elif isinstance(value, ast.expr):
                self._eval(value)

    def _exec_Expr(self, stmt: ast.Expr) -> None:
        if isinstance(stmt.value, ast.Call):
            # A bare call statement discards its result: evaluate for
            # side-conditions (POD012, argument taint) but do not
            # report laundering on a value nobody consumes.
            self._eval_call(stmt.value, consume=False)
        else:
            self._eval(stmt.value)

    def _exec_Assign(self, stmt: ast.Assign) -> None:
        value = self._eval(stmt.value)
        for target in stmt.targets:
            self._bind(target, value)

    def _exec_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        value = (
            self._eval(stmt.value) if stmt.value is not None else _NONE_VALUE
        )
        if annotation_is_unordered(stmt.annotation):
            value = value.with_taint(value.taint | Taint.UNORDERED)
        self._bind(stmt.target, value)

    def _exec_AugAssign(self, stmt: ast.AugAssign) -> None:
        value = self._eval(stmt.value)
        if (
            isinstance(stmt.op, ast.Add)
            and Taint.SIM_TIME in value.taint
            and any(self._loops)
        ):
            self._emit(
                ALL_RULES["POD011"],
                stmt,
                "accumulating a SimTime-tainted float inside a loop over "
                "an unordered (dict/set) iterable; float summation is "
                "evaluation-order dependent -- sort the iterable",
            )
        old = self._eval(_target_as_expr(stmt.target))
        self._bind(stmt.target, old.join(value))

    def _exec_Return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            self._ret = self._ret.join(self._eval(stmt.value))

    def _exec_If(self, stmt: ast.If) -> None:
        self._eval(stmt.test)
        before = dict(self.env)
        self._exec_block(stmt.body)
        after_body = self.env
        self.env = dict(before)
        self._exec_block(stmt.orelse)
        self.env = _join_envs(after_body, self.env)

    def _exec_For(self, stmt: ast.For) -> None:
        self._run_loop(stmt.iter, stmt.target, stmt.body, stmt.orelse)

    def _exec_AsyncFor(self, stmt: ast.AsyncFor) -> None:
        self._run_loop(stmt.iter, stmt.target, stmt.body, stmt.orelse)

    def _run_loop(
        self,
        iter_node: ast.expr,
        target: ast.expr,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
    ) -> None:
        itv = self._eval(iter_node)
        unordered = Taint.UNORDERED in itv.taint
        if unordered and _has_order_sink(body):
            self._emit(
                ALL_RULES["POD009"],
                iter_node,
                "iteration over a dict/set-ordered iterable feeds an "
                "ordered output sink (append/write/emit/dump/yield); "
                "wrap the iterable in sorted(...) for report-stable "
                "order",
                fixes=_wrap_sorted_fixes(iter_node),
            )
        # Element taint is not tracked; bind loop targets clean but
        # remember parameter provenance so injected callables survive.
        self._bind(target, _NONE_VALUE)
        self._loops.append(unordered)
        for _ in range(2):  # fixpoint: 2 passes saturate a union domain
            self._exec_block(body)
        self._loops.pop()
        self._exec_block(orelse)

    def _exec_While(self, stmt: ast.While) -> None:
        self._eval(stmt.test)
        self._loops.append(False)
        for _ in range(2):
            self._exec_block(stmt.body)
        self._loops.pop()
        self._exec_block(stmt.orelse)

    def _exec_With(self, stmt: ast.With) -> None:
        self._with_items(stmt.items)
        self._exec_block(stmt.body)

    def _exec_AsyncWith(self, stmt: ast.AsyncWith) -> None:
        self._with_items(stmt.items)
        self._exec_block(stmt.body)

    def _with_items(self, items: Sequence[ast.withitem]) -> None:
        for item in items:
            value = self._eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, value)

    def _exec_Try(self, stmt: ast.Try) -> None:
        before = dict(self.env)
        self._exec_block(stmt.body)
        merged = self.env
        for handler in stmt.handlers:
            self.env = dict(before)
            self._exec_block(handler.body)
            merged = _join_envs(merged, self.env)
        self.env = merged
        self._exec_block(stmt.orelse)
        self._exec_block(stmt.finalbody)

    def _exec_FunctionDef(self, stmt: ast.FunctionDef) -> None:
        # Nested defs are not summarised; bind as an unknown callable.
        self.env[stmt.name] = _NONE_VALUE

    def _exec_AsyncFunctionDef(self, stmt: ast.AsyncFunctionDef) -> None:
        self.env[stmt.name] = _NONE_VALUE

    def _exec_ClassDef(self, stmt: ast.ClassDef) -> None:
        self.env[stmt.name] = _NONE_VALUE

    # -- binding -------------------------------------------------------

    def _bind(self, target: ast.expr, value: TaintValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, value)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value)
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None and dotted.startswith("self."):
                self.env[dotted] = value
        # Subscript stores: the container's element taint is untracked.

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr) -> TaintValue:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Generic: join the taints of every child expression.
        out = _NONE_VALUE
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out = out.join(self._eval(child))
        return out

    def _eval_Constant(self, node: ast.Constant) -> TaintValue:
        return _NONE_VALUE

    def _eval_Name(self, node: ast.Name) -> TaintValue:
        if node.id in self.env:
            return self.env[node.id]
        return self._module_level_value(node.id)

    def _module_level_value(self, name: str) -> TaintValue:
        """A name resolved at module scope: alias, function, import."""
        alias = self.symtab.resolve_alias(self.module, name)
        if alias is not None:
            if matches_suffix(alias, WALL_CLOCK_SUFFIXES):
                return TaintValue(
                    summary=FunctionSummary(returns=Taint.WALL_CLOCK)
                )
            head = alias.split(".")[0]
            if head == "random" or ".random." in f".{alias}.":
                return TaintValue(
                    summary=FunctionSummary(returns=Taint.UNSEEDED_RNG)
                )
        fn = self.symtab.resolve_function(
            self.module, name, self.current_class
        )
        if fn is not None:
            return TaintValue(
                summary=self.summaries.get(fn.key, _EMPTY_SUMMARY)
            )
        return _NONE_VALUE

    def _eval_Attribute(self, node: ast.Attribute) -> TaintValue:
        dotted = dotted_name(node)
        if dotted is not None:
            if dotted in self.env:  # tracked ``self.x`` store
                return self.env[dotted]
            if matches_suffix(dotted, WALL_CLOCK_SUFFIXES):
                # Referencing a wall clock is the sanctioned binding
                # idiom; only *calling* it produces taint.
                return TaintValue(
                    summary=FunctionSummary(returns=Taint.WALL_CLOCK)
                )
            fn = self.symtab.resolve_function(
                self.module, dotted, self.current_class
            )
            if fn is not None:
                return TaintValue(
                    summary=self.summaries.get(fn.key, _EMPTY_SUMMARY)
                )
        taint = Taint.NONE
        if is_timey_identifier(node.attr):
            taint |= Taint.SIM_TIME
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and annotation_is_unordered(
                self.symtab.class_attr_annotation(
                    self.current_class, node.attr
                )
            )
        ):
            taint |= Taint.UNORDERED
        # Evaluate the receiver for side effects only; attribute access
        # does not inherit the receiver's container taint.
        self._eval(node.value)
        return TaintValue(taint=taint)

    def _eval_BinOp(self, node: ast.BinOp) -> TaintValue:
        left = self._eval(node.left)
        right = self._eval(node.right)
        return TaintValue(taint=left.taint | right.taint)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> TaintValue:
        return self._eval(node.operand)

    def _eval_BoolOp(self, node: ast.BoolOp) -> TaintValue:
        out = _NONE_VALUE
        for value in node.values:
            out = out.join(self._eval(value))
        return out

    def _eval_IfExp(self, node: ast.IfExp) -> TaintValue:
        self._eval(node.test)
        return self._eval(node.body).join(self._eval(node.orelse))

    def _eval_Subscript(self, node: ast.Subscript) -> TaintValue:
        value = self._eval(node.value)
        self._eval(node.slice)
        # Element access: drop iteration-order taint, keep the rest.
        return TaintValue(taint=value.taint & ~Taint.UNORDERED)

    def _eval_Compare(self, node: ast.Compare) -> TaintValue:
        operands = [node.left, *node.comparators]
        values = [self._eval(op) for op in operands]
        for op, (ln, lv), (rn, rv) in zip(
            node.ops, zip(operands, values), zip(operands[1:], values[1:])
        ):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(
                isinstance(side, ast.Constant)
                and (side.value is None or isinstance(side.value, (str, bool)))
                for side in (ln, rn)
            ):
                continue
            if Taint.SIM_TIME not in (lv.taint | rv.taint):
                continue
            if _is_timey_node(ln) or _is_timey_node(rn):
                continue  # POD003's (syntactic) territory
            self._emit(
                ALL_RULES["POD011"],
                node,
                "==/!= on a value carrying SimTime taint (aliased "
                "simulated-time float the POD003 name heuristic cannot "
                "see); exact identity of derived times is evaluation-"
                "order dependent -- compare with a tolerance or "
                "restructure",
            )
        return _NONE_VALUE

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> TaintValue:
        out = _NONE_VALUE
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                out = out.join(self._eval(value.value))
        return TaintValue(taint=out.taint)

    def _eval_Dict(self, node: ast.Dict) -> TaintValue:
        # A dict literal iterates in source order: deterministic.
        for key in node.keys:
            if key is not None:
                self._eval(key)
        for value in node.values:
            self._eval(value)
        return _NONE_VALUE

    def _eval_Set(self, node: ast.Set) -> TaintValue:
        for elt in node.elts:
            self._eval(elt)
        return TaintValue(taint=Taint.UNORDERED)

    def _eval_List(self, node: ast.List) -> TaintValue:
        out = _NONE_VALUE
        for elt in node.elts:
            out = out.join(self._eval(elt))
        return TaintValue(taint=out.taint & ~Taint.UNORDERED)

    def _eval_Tuple(self, node: ast.Tuple) -> TaintValue:
        out = _NONE_VALUE
        for elt in node.elts:
            out = out.join(self._eval(elt))
        return TaintValue(taint=out.taint & ~Taint.UNORDERED)

    def _eval_Starred(self, node: ast.Starred) -> TaintValue:
        return self._eval(node.value)

    def _eval_Lambda(self, node: ast.Lambda) -> TaintValue:
        return _NONE_VALUE

    def _eval_Await(self, node: ast.Await) -> TaintValue:
        return self._eval(node.value)

    def _eval_Yield(self, node: ast.Yield) -> TaintValue:
        if node.value is not None:
            self._ret = self._ret.join(self._eval(node.value))
        return _NONE_VALUE

    def _eval_YieldFrom(self, node: ast.YieldFrom) -> TaintValue:
        self._ret = self._ret.join(self._eval(node.value))
        return _NONE_VALUE

    # -- comprehensions ------------------------------------------------

    def _eval_comp(
        self, generators: Sequence[ast.comprehension], *elements: ast.expr
    ) -> Tuple[TaintValue, bool]:
        """(joined element taint, any generator iterates unordered)."""
        unordered = False
        saved = dict(self.env)
        for gen in generators:
            itv = self._eval(gen.iter)
            unordered = unordered or Taint.UNORDERED in itv.taint
            self._bind(gen.target, _NONE_VALUE)
            for cond in gen.ifs:
                self._eval(cond)
        out = _NONE_VALUE
        for element in elements:
            out = out.join(self._eval(element))
        self.env = saved
        return out, unordered

    def _eval_ListComp(self, node: ast.ListComp) -> TaintValue:
        out, unordered = self._eval_comp(node.generators, node.elt)
        taint = out.taint | (Taint.UNORDERED if unordered else Taint.NONE)
        return TaintValue(taint=taint)

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> TaintValue:
        out, unordered = self._eval_comp(node.generators, node.elt)
        taint = out.taint | (Taint.UNORDERED if unordered else Taint.NONE)
        return TaintValue(taint=taint)

    def _eval_SetComp(self, node: ast.SetComp) -> TaintValue:
        out, _ = self._eval_comp(node.generators, node.elt)
        return TaintValue(taint=out.taint | Taint.UNORDERED)

    def _eval_DictComp(self, node: ast.DictComp) -> TaintValue:
        out, unordered = self._eval_comp(node.generators, node.key, node.value)
        taint = out.taint | (Taint.UNORDERED if unordered else Taint.NONE)
        return TaintValue(taint=taint)

    # -- calls ---------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> TaintValue:
        return self._eval_call(node, consume=True)

    def _eval_call(self, node: ast.Call, consume: bool) -> TaintValue:
        dotted = dotted_name(node.func)

        # POD012: frozen-config mutation escape hatch used outside
        # __post_init__.
        if dotted == "object.__setattr__":
            if self.func_name != "__post_init__":
                frozen_note = ""
                if (
                    node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "self"
                    and self.current_class is not None
                    and self.current_class.frozen_dataclass
                ):
                    frozen_note = (
                        f" (mutates frozen dataclass "
                        f"{self.current_class.name})"
                    )
                self._emit(
                    ALL_RULES["POD012"],
                    node,
                    "object.__setattr__ outside __post_init__ mutates a "
                    "frozen dataclass after construction"
                    + frozen_note
                    + "; frozen configs must stay immutable",
                )

        arg_values = [self._eval(a) for a in node.args]
        kw_values = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:  # **kwargs expansions
            if kw.arg is None:
                self._eval(kw.value)
        joined_args = _NONE_VALUE
        for v in [*arg_values, *kw_values.values()]:
            joined_args = joined_args.join(v)

        # Builtins with known ordering/taint behaviour.
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "sorted":
                return TaintValue(taint=joined_args.taint & ~Taint.UNORDERED)
            if name in _UNORDERED_CTORS:
                return TaintValue(taint=joined_args.taint | Taint.UNORDERED)
            if name == "dict":
                return TaintValue(taint=joined_args.taint)
            if name in _ORDER_PRESERVING:
                return TaintValue(taint=joined_args.taint)
            if name in _ORDER_INSENSITIVE:
                return TaintValue(taint=joined_args.taint & ~Taint.UNORDERED)

        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _MAPPING_VIEWS:
                # Views iterate in the mapping's order: a dict literal
                # is source-ordered (clean); an annotation-unordered
                # mapping (parameter, attribute) stays unordered.
                recv = self._eval(node.func.value)
                return TaintValue(taint=recv.taint)
            recv = self._eval(node.func.value)
            rng_taint = recv.taint & (Taint.UNSEEDED_RNG | Taint.SEEDED_RNG)
            if rng_taint:
                # A draw from an RNG-tainted receiver (``rng.random()``,
                # ``rng.integers(...)``) yields RNG-derived values.
                return TaintValue(taint=rng_taint)
            if attr == "join" and arg_values:
                if Taint.UNORDERED in arg_values[0].taint:
                    self._emit(
                        ALL_RULES["POD009"],
                        node,
                        "str.join over a dict/set-ordered sequence; the "
                        "joined text depends on iteration order -- wrap "
                        "the argument in sorted(...)",
                        fixes=_wrap_sorted_fixes(node.args[0]),
                    )
                return TaintValue(
                    taint=joined_args.taint & ~Taint.UNORDERED
                )

        # Direct wall-clock / RNG calls: the *syntactic* tier (POD001/
        # POD002) owns these sites; flow only records the taint.
        if dotted is not None and matches_suffix(dotted, WALL_CLOCK_SUFFIXES):
            return TaintValue(taint=Taint.WALL_CLOCK)
        rng = _rng_classify(node, dotted)
        if rng == "unseeded":
            return TaintValue(taint=Taint.UNSEEDED_RNG)
        if rng == "seeded":
            return TaintValue(taint=Taint.SEEDED_RNG)

        callee = self._eval(node.func)
        if callee.params:
            # Calling a value a parameter flows into is the injected-
            # callable idiom ((clock or _WALL_CLOCK)()): sanctioned.
            return _NONE_VALUE
        summary = callee.summary
        if summary is None:
            return _NONE_VALUE

        taint = summary.returns
        params: FrozenSet[int] = frozenset()
        offset = 1 if summary.is_method and isinstance(
            node.func, ast.Attribute
        ) else 0
        for index in summary.param_flow:
            pos = index - offset
            if 0 <= pos < len(arg_values):
                taint |= arg_values[pos].taint
                params |= arg_values[pos].params
            elif (
                summary.param_names
                and index < len(summary.param_names)
                and summary.param_names[index] in kw_values
            ):
                kv = kw_values[summary.param_names[index]]
                taint |= kv.taint
                params |= kv.params

        if consume:
            if Taint.WALL_CLOCK in summary.returns:
                self._emit(
                    ALL_RULES["POD010"],
                    node,
                    f"call to {dotted or 'a helper'}() returns a "
                    "wall-clock-derived value (laundered through the "
                    "callee); inject a Clock instead of reading the "
                    "host clock",
                )
            if Taint.UNSEEDED_RNG in summary.returns:
                self._emit(
                    ALL_RULES["POD008"],
                    node,
                    f"call to {dotted or 'a helper'}() returns a value "
                    "derived from unseeded/global RNG; seed the "
                    "generator from configuration and thread it "
                    "explicitly",
                )
        return TaintValue(taint=taint, params=params)


def _target_as_expr(target: ast.expr) -> ast.expr:
    """Re-read an assignment target as a load expression (for AugAssign)."""
    return target


def _join_envs(
    a: Dict[str, TaintValue], b: Dict[str, TaintValue]
) -> Dict[str, TaintValue]:
    out = dict(a)
    for name, value in b.items():
        prev = out.get(name)
        out[name] = value if prev is None else prev.join(value)
    return out


# ----------------------------------------------------------------------
# summary fixpoint + findings driver
# ----------------------------------------------------------------------

#: Taints worth remembering across calls.
_SUMMARY_MASK = (
    Taint.SIM_TIME
    | Taint.WALL_CLOCK
    | Taint.UNSEEDED_RNG
    | Taint.SEEDED_RNG
    | Taint.UNORDERED
)


def _summarize(
    fn: FunctionInfo,
    symtab: SymbolTable,
    summaries: Dict[str, FunctionSummary],
) -> FunctionSummary:
    cls = (
        fn.module.classes.get(fn.class_name)
        if fn.class_name is not None
        else None
    )
    interp = _Interp(
        fn.module,
        symtab,
        summaries,
        deterministic=False,
        current_class=cls,
        func=fn,
        emit=False,
    )
    ret = interp.run(fn.node.body)  # type: ignore[attr-defined]
    return FunctionSummary(
        returns=ret.taint & _SUMMARY_MASK,
        param_flow=ret.params,
        param_names=tuple(fn.param_names()),
        is_method=fn.class_name is not None,
    )


def compute_summaries(symtab: SymbolTable) -> Dict[str, FunctionSummary]:
    """Fixpoint the call-summary map over the whole analysis set."""
    summaries: Dict[str, FunctionSummary] = {}
    functions: List[FunctionInfo] = [
        fn
        for module in symtab.modules.values()
        for fn in module.functions.values()
    ]
    for fn in functions:
        summaries[fn.key] = _EMPTY_SUMMARY
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fn in functions:
            new = _summarize(fn, symtab, summaries)
            if new != summaries[fn.key]:
                summaries[fn.key] = new
                changed = True
        if not changed:
            break
    return summaries


def _deterministic(path: str) -> bool:
    # Local import: lint imports flow lazily, so this cannot cycle at
    # module-import time.
    from repro.analysis.lint import is_deterministic_path

    return is_deterministic_path(path)


def analyze_files(files: Sequence[Tuple[str, str]]) -> FlowReport:
    """Run the dataflow tier over ``(path, source)`` pairs.

    The whole set is analysed as one program: summaries computed over
    every file, then one findings pass per module.
    """
    symtab, parse_errors = build_symbol_table(files)
    summaries = compute_summaries(symtab)
    findings: List[FlowFinding] = []
    for path in sorted(symtab.modules):
        module = symtab.modules[path]
        deterministic = _deterministic(path)

        def run(
            body: Sequence[ast.stmt],
            func: Optional[FunctionInfo],
            cls: Optional[ClassInfo],
        ) -> None:
            interp = _Interp(
                module,
                symtab,
                summaries,
                deterministic=deterministic,
                current_class=cls,
                func=func,
                emit=True,
            )
            interp.run(body)
            findings.extend(interp.findings)

        module_stmts = [
            s
            for s in module.tree.body
            if not isinstance(
                s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        run(module_stmts, None, None)
        for fn in module.functions.values():
            cls = (
                module.classes.get(fn.class_name)
                if fn.class_name is not None
                else None
            )
            run(fn.node.body, fn, cls)  # type: ignore[attr-defined]
    return FlowReport(
        findings=findings, parse_errors=parse_errors, summaries=summaries
    )
