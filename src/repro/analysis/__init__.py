"""repro.analysis -- static analysis + runtime invariant checking.

POD's correctness claims rest on contracts that ordinary tests do not
exercise continuously:

* the simulator must be **deterministic** -- no wall-clock time, no
  global RNG state, no unguarded observability side effects in any
  ``sim``/``core``/``cache``/``storage`` path (PR 1's golden traces
  only catch a violation after the fact; the linter catches it at
  review time);
* the dedup metadata must stay **internally consistent** -- Map-table
  entries point at live refcounted blocks, the Index table's reverse
  PBA map is a bijection, iCache's actual+ghost partitions respect the
  DRAM budget (PAPER.md Section III).

Two cooperating tools enforce those contracts:

* :mod:`repro.analysis.lint` -- a custom AST lint pass
  (``repro lint`` / ``python -m repro.analysis.lint``) with
  project-specific rules ``POD001``..``POD006``, a
  ``# pod: ignore[POD00x]`` escape hatch and machine-readable JSON
  output; and
* :mod:`repro.analysis.sanitizer` -- :class:`PodSanitizer`, a
  debug-mode runtime validator hooked into the replay engine by
  ``--check-invariants`` that re-derives every invariant from the live
  scheme state and raises with a precise diagnostic when one breaks.

Both are documented rule-by-rule in ``docs/analysis.md``.
"""

from __future__ import annotations

from repro.analysis.lint import Finding, LintReport, lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, DETERMINISTIC_PACKAGES, Rule
from repro.analysis.sanitizer import (
    InvariantViolationError,
    PodSanitizer,
    Violation,
    validate_dedupe_selection,
)

__all__ = [
    "ALL_RULES",
    "DETERMINISTIC_PACKAGES",
    "Finding",
    "InvariantViolationError",
    "LintReport",
    "PodSanitizer",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "validate_dedupe_selection",
]
