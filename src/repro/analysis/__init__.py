"""repro.analysis -- static analysis + runtime invariant checking.

POD's correctness claims rest on contracts that ordinary tests do not
exercise continuously:

* the simulator must be **deterministic** -- no wall-clock time, no
  global RNG state, no unguarded observability side effects in any
  ``sim``/``core``/``cache``/``storage`` path (PR 1's golden traces
  only catch a violation after the fact; the linter catches it at
  review time);
* the dedup metadata must stay **internally consistent** -- Map-table
  entries point at live refcounted blocks, the Index table's reverse
  PBA map is a bijection, iCache's actual+ghost partitions respect the
  DRAM budget (PAPER.md Section III).

Two cooperating tools enforce those contracts:

* :mod:`repro.analysis.lint` -- a custom AST lint pass
  (``repro lint`` / ``python -m repro.analysis.lint``) with
  project-specific syntactic rules ``POD001``..``POD007``, a
  ``# pod: ignore[POD00x]`` escape hatch, a suppression baseline, and
  machine-readable JSON/SARIF output;
* :mod:`repro.analysis.flow` -- the ``--flow`` dataflow tier: a
  flow-sensitive abstract interpreter with interprocedural call
  summaries (:mod:`repro.analysis.summaries`) tainting values as
  SimTime/WallClock/UnseededRng/Unordered and producing rules
  ``POD008``..``POD012`` (autofixable via :mod:`repro.analysis.fix`);
  and
* :mod:`repro.analysis.sanitizer` -- :class:`PodSanitizer`, a
  debug-mode runtime validator hooked into the replay engine by
  ``--check-invariants`` that re-derives every invariant from the live
  scheme state and raises with a precise diagnostic when one breaks.

All are documented rule-by-rule in ``docs/analysis.md``.
"""

from __future__ import annotations

from repro.analysis.flow import (
    FlowFinding,
    FlowReport,
    FunctionSummary,
    Taint,
    analyze_files,
)
from repro.analysis.lint import (
    Finding,
    LintReport,
    lint_paths,
    lint_source,
    normalize_path,
)
from repro.analysis.rules import (
    ALL_RULES,
    DETERMINISTIC_PACKAGES,
    FLOW_RULES,
    Rule,
    RuleTier,
)
from repro.analysis.sanitizer import (
    InvariantViolationError,
    PodSanitizer,
    Violation,
    validate_dedupe_selection,
)

__all__ = [
    "ALL_RULES",
    "DETERMINISTIC_PACKAGES",
    "FLOW_RULES",
    "Finding",
    "FlowFinding",
    "FlowReport",
    "FunctionSummary",
    "InvariantViolationError",
    "LintReport",
    "PodSanitizer",
    "Rule",
    "RuleTier",
    "Taint",
    "Violation",
    "analyze_files",
    "lint_paths",
    "lint_source",
    "normalize_path",
    "validate_dedupe_selection",
]
