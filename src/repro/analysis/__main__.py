"""``python -m repro.analysis`` -> the determinism linter."""

from __future__ import annotations

import sys

from repro.analysis.lint import main

sys.exit(main())
