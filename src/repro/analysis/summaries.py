"""Symbol table + call graph for the dataflow lint tier.

This is the *syntactic* half of ``repro.analysis.flow``: it parses every
module under analysis once and records just enough structure for the
abstract interpreter to resolve calls across module boundaries --

* top-level functions and class methods (by qualified name),
* import aliases (``import numpy as np``, ``from repro.sim.engine
  import simulate``), resolved to the modules in the same analysis set,
* module-level *callable aliases* (``_WALL_CLOCK = time.time``) whose
  call produces a known taint,
* frozen-dataclass registry (for POD012), and
* class attribute annotations (``Dict``/``Set`` fields feed the
  ``Unordered`` taint; see :mod:`repro.analysis.flow`).

The semantic summaries themselves (which taints a function's return
value carries, and which parameters flow into it) are computed on top
of this table by the fixpoint driver in :mod:`repro.analysis.flow`;
``FunctionSummary.as_dict`` documents the JSON summary format used by
``repro lint --flow --dump-summaries``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "annotation_is_int",
    "annotation_is_unordered",
    "build_symbol_table",
    "dotted_name",
    "module_name_for_path",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Annotation heads whose instances iterate in no committed order.
#: ``OrderedDict`` is deliberately absent (its order is the contract);
#: plain ``dict`` iteration is insertion-ordered in CPython but the
#: insertion *history* is replay-path dependent, so report-stable
#: output must still sort (docs/analysis.md, POD009).
_UNORDERED_ANN_HEADS = {
    "dict", "Dict", "DefaultDict", "defaultdict", "Mapping",
    "MutableMapping", "Counter", "set", "Set", "MutableSet",
    "AbstractSet", "frozenset", "FrozenSet",
}

_INT_ANN_HEADS = {"int"}


def _annotation_head(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the head identifier.
        text = node.value.split("[", 1)[0].strip()
        return text.split(".")[-1] or None
    name = dotted_name(node)
    if name is None:
        return None
    return name.split(".")[-1]


def annotation_is_unordered(node: Optional[ast.AST]) -> bool:
    """Does an annotation denote a dict/set-like (unordered) container?"""
    if node is None:
        return False
    head = _annotation_head(node)
    if head in _UNORDERED_ANN_HEADS:
        return True
    # Optional[Dict[...]] / Union[..., Set[...]]
    if head in ("Optional", "Union") and isinstance(node, ast.Subscript):
        inner = node.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return any(annotation_is_unordered(e) for e in elts)
    return False


def annotation_is_int(node: Optional[ast.AST]) -> bool:
    return node is not None and _annotation_head(node) in _INT_ANN_HEADS


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: ``func`` or ``Class.method``, module-relative
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    module: "ModuleInfo"
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def key(self) -> str:
        """Globally unique summary key."""
        return f"{self.module.name}::{self.qualname}"

    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs] if args.posonlyargs else []
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        return names

    def param_annotations(self) -> Dict[str, Optional[ast.AST]]:
        args = self.node.args  # type: ignore[attr-defined]
        out: Dict[str, Optional[ast.AST]] = {}
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            out[a.arg] = a.annotation
        return out


@dataclass
class ClassInfo:
    """One class definition: methods, bases, annotated attributes."""

    name: str
    module: "ModuleInfo"
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: Tuple[str, ...] = ()
    frozen_dataclass: bool = False
    #: attribute name -> annotation AST (class body + __init__ AnnAssigns)
    attr_annotations: Dict[str, ast.AST] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the resolver knows about one parsed module."""

    path: str
    name: str  #: dotted module name, e.g. ``repro.sim.engine``
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> dotted target (``np`` -> ``numpy``,
    #: ``simulate`` -> ``repro.sim.engine.simulate``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = <dotted>`` callable aliases
    #: (``_WALL_CLOCK`` -> ``time.time``)
    aliases: Dict[str, str] = field(default_factory=dict)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a repo file path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``tests/sim/test_engine.py`` -> ``tests.sim.test_engine``;
    package ``__init__.py`` maps to the package name itself.
    """
    p = Path(path)
    parts = list(p.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        # Anchor at the last well-known tree root, else use the stem.
        for anchor in ("tests", "benchmarks", "scripts", "examples"):
            if anchor in parts:
                parts = parts[parts.index(anchor):]
                break
        else:
            parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_dataclass_decorator(node: ast.AST) -> Tuple[bool, bool]:
    """(is dataclass decorator, frozen=True present)."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "dataclass":
            frozen = any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            return True, frozen
        return False, False
    name = dotted_name(node)
    return (name is not None and name.split(".")[-1] == "dataclass"), False


class SymbolTable:
    """All parsed modules plus cross-module call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  #: by file path
        self.by_name: Dict[str, ModuleInfo] = {}  #: by dotted name

    def add(self, info: ModuleInfo) -> None:
        self.modules[info.path] = info
        self.by_name[info.name] = info

    # -- resolution ----------------------------------------------------

    def resolve_function(
        self,
        module: ModuleInfo,
        dotted: str,
        current_class: Optional[ClassInfo] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a call target's dotted name to a known function.

        Handles bare names (same module or ``from m import f``),
        ``self.method``/``cls.method`` (enclosing class, then bases in
        the analysis set), and ``alias.attr`` chains through imported
        modules.  Returns ``None`` for anything outside the analysis
        set (stdlib, numpy, ...), which the interpreter treats as an
        unknown call with no taint.
        """
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]

        if head in ("self", "cls") and current_class is not None and rest:
            return self._resolve_method(current_class, rest[0], depth=0) \
                if len(rest) == 1 else None

        if not rest:
            # Bare name: same-module function, or from-import.
            fn = module.functions.get(head)
            if fn is not None:
                return fn
            target = module.imports.get(head)
            if target is not None:
                return self._resolve_dotted(target)
            return None

        # ``alias.attr...``: follow the import alias, then the chain.
        target = module.imports.get(head)
        if target is not None:
            return self._resolve_dotted(".".join([target, *rest]))
        # ``Class.method`` in the same module (unbound-style call).
        cls = module.classes.get(head)
        if cls is not None and len(rest) == 1:
            return self._resolve_method(cls, rest[0], depth=0)
        return None

    def _resolve_method(
        self, cls: ClassInfo, name: str, depth: int
    ) -> Optional[FunctionInfo]:
        if depth > 4:
            return None
        fn = cls.methods.get(name)
        if fn is not None:
            return fn
        for base in cls.base_names:
            base_cls = cls.module.classes.get(base)
            if base_cls is None:
                target = cls.module.imports.get(base)
                if target is not None:
                    mod, _, leaf = target.rpartition(".")
                    owner = self.by_name.get(mod)
                    base_cls = owner.classes.get(leaf) if owner else None
            if base_cls is not None:
                found = self._resolve_method(base_cls, name, depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """``repro.sim.engine.simulate`` -> its FunctionInfo, if parsed."""
        mod, _, leaf = dotted.rpartition(".")
        while mod:
            info = self.by_name.get(mod)
            if info is not None:
                fn = info.functions.get(leaf)
                if fn is not None:
                    return fn
                # One more level: Class.method
                return None
            nxt, _, inner = mod.rpartition(".")
            info = self.by_name.get(nxt)
            if info is not None and inner in info.classes:
                return self._resolve_method(info.classes[inner], leaf, 0)
            mod, leaf = nxt, inner
        return None

    def resolve_alias(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Module-level callable alias target (``_WALL_CLOCK`` -> ``time.time``)."""
        return module.aliases.get(name)

    def class_attr_annotation(
        self, cls: Optional[ClassInfo], attr: str
    ) -> Optional[ast.AST]:
        if cls is None:
            return None
        return cls.attr_annotations.get(attr)


def _collect_class(info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    frozen = False
    for deco in node.decorator_list:
        is_dc, dc_frozen = _is_dataclass_decorator(deco)
        if is_dc:
            frozen = frozen or dc_frozen
    bases = tuple(
        n for n in (dotted_name(b) for b in node.bases) if n is not None
    )
    cls = ClassInfo(
        name=node.name,
        module=info,
        base_names=tuple(b.split(".")[-1] for b in bases),
        frozen_dataclass=frozen,
    )
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(
                qualname=f"{node.name}.{child.name}",
                node=child,
                module=info,
                class_name=node.name,
            )
            cls.methods[child.name] = fn
            info.functions[fn.qualname] = fn
            if child.name == "__init__":
                for stmt in ast.walk(child):
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Attribute)
                        and isinstance(stmt.target.value, ast.Name)
                        and stmt.target.value.id == "self"
                    ):
                        cls.attr_annotations[stmt.target.attr] = stmt.annotation
        elif isinstance(child, ast.AnnAssign) and isinstance(
            child.target, ast.Name
        ):
            cls.attr_annotations[child.target.id] = child.annotation
    return cls


def parse_module(path: str, source: str) -> ModuleInfo:
    """Parse one module into its symbol-table entry."""
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(
        path=path, name=module_name_for_path(path), tree=tree
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(qualname=node.name, node=node, module=info)
            info.functions[node.name] = fn
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _collect_class(info, node)
    # Imports and module-level callable aliases (any nesting level for
    # imports -- function-local ``import`` is common in the CLI).
    pkg_parts = info.name.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports.setdefault(local, target)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: anchor inside this package.
                anchor = pkg_parts[: len(pkg_parts) - node.level]
                base = ".".join([*anchor, base] if base else anchor)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports.setdefault(local, f"{base}.{alias.name}")
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            target_name = dotted_name(node.value)
            if target_name is not None and "." in target_name:
                info.aliases[node.targets[0].id] = target_name
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.value is not None:
                target_name = dotted_name(node.value)
                if target_name is not None and "." in target_name:
                    info.aliases[node.target.id] = target_name
    return info


def build_symbol_table(
    files: Sequence[Tuple[str, str]]
) -> Tuple[SymbolTable, List[str]]:
    """Parse ``(path, source)`` pairs into one table.

    Returns the table plus parse-error strings (mirroring
    ``lint_paths``' error reporting).
    """
    table = SymbolTable()
    errors: List[str] = []
    for path, source in files:
        try:
            table.add(parse_module(path, source))
        except SyntaxError as exc:
            errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
    return table, errors
