"""The ``repro lint --fix`` autofixer.

Findings from the mechanical rules carry insert-only text edits
(``Finding.fixes``: ``(line, col, text)`` triples, 1-based lines,
0-based columns):

* **POD009** -- wrap the unordered iterable in ``sorted(...)`` (two
  inserts around the expression);
* **POD002** (unseeded ``np.random.default_rng()``) -- splice in a seed
  expression, preferring an in-scope ``seed``/``config.seed`` over the
  literal ``0`` fallback.

Edits never delete text, so applying them cannot destroy code: the
worst a bad fix can do is fail to compile, which the post-fix re-lint
(and CI) catches immediately.  Fixing is idempotent -- a fixed site no
longer produces its finding, so a second ``--fix`` run is a no-op
(asserted by ``tests/analysis/test_fix.py``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.lint import Finding

__all__ = ["FixResult", "apply_edits", "fix_findings"]

Edit = Tuple[int, int, str]


def apply_edits(source: str, edits: Sequence[Edit]) -> str:
    """Apply insert-only edits to ``source``.

    Inserts are applied bottom-up (sorted descending by position) so
    earlier positions stay valid; duplicate edits collapse.
    """
    lines = source.splitlines(keepends=True)
    for line, col, text in sorted(set(edits), reverse=True):
        index = line - 1
        if not 0 <= index < len(lines):
            continue
        row = lines[index]
        if col > len(row):
            continue
        lines[index] = row[:col] + text + row[col:]
    return "".join(lines)


class FixResult:
    """What one ``--fix`` pass changed."""

    def __init__(self) -> None:
        self.files_changed: List[str] = []
        self.findings_fixed: int = 0

    def __bool__(self) -> bool:
        return bool(self.files_changed)


def fix_findings(findings: Iterable[Finding]) -> FixResult:
    """Apply every finding's edits to the files on disk."""
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fixes:
            by_path.setdefault(finding.path, []).append(finding)
    result = FixResult()
    for path in sorted(by_path):
        file = Path(path)
        try:
            source = file.read_text(encoding="utf-8")
        except OSError:
            continue
        edits: List[Edit] = []
        for finding in by_path[path]:
            edits.extend(finding.fixes)
        fixed = apply_edits(source, edits)
        if fixed != source:
            file.write_text(fixed, encoding="utf-8")
            result.files_changed.append(path)
            result.findings_fixed += len(by_path[path])
    return result
