"""SARIF 2.1.0 output for the POD linter.

``repro lint --format sarif`` renders a :class:`LintReport` as a
Static Analysis Results Interchange Format document that GitHub code
scanning ingests directly (the CI ``lint-flow`` job uploads it, so
findings land as inline PR annotations).

The document is fully deterministic: rules in catalogue order,
results in (path, line, col, code) order, no timestamps.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.lint import LintReport, normalize_path
from repro.analysis.rules import ALL_RULES, Rule, RuleScope

__all__ = ["SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/pod-repro/pod-repro/blob/main/docs/analysis.md"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "helpUri": _INFO_URI,
        "properties": {
            "scope": rule.scope.value,
            "tier": rule.tier.value,
        },
        "defaultConfiguration": {
            "level": "error"
            if rule.scope is RuleScope.DETERMINISTIC
            else "warning"
        },
    }


def render_sarif(report: LintReport, tool_version: str = "1.0.0") -> Dict[str, Any]:
    """A SARIF 2.1.0 document (a plain JSON-serialisable dict)."""
    results: List[Dict[str, Any]] = []
    for finding in report.findings:
        rule = ALL_RULES.get(finding.code)
        level = (
            "error"
            if rule is not None and rule.scope is RuleScope.DETERMINISTIC
            else "warning"
        )
        results.append(
            {
                "ruleId": finding.code,
                "level": level,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": normalize_path(finding.path),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    invocation: Dict[str, Any] = {
        "executionSuccessful": not report.parse_errors,
    }
    if report.parse_errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": error}}
            for error in report.parse_errors
        ]
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pod-lint",
                        "informationUri": _INFO_URI,
                        "version": tool_version,
                        "rules": [
                            _rule_descriptor(r) for r in ALL_RULES.values()
                        ],
                    }
                },
                "invocations": [invocation],
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
