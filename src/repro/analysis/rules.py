"""The POD lint rule registry.

Every rule has a stable code (``POD001``...), a one-line summary and a
scope.  ``DETERMINISTIC`` rules only apply inside the packages whose
behaviour feeds the simulated results (a wall clock in the CLI's
progress output is fine; one in the replay engine is a reproducibility
bug).  ``EVERYWHERE`` rules are plain correctness rules.

Rules are deliberately project-specific: a generic linter cannot know
that ``obs.emit`` must be level-guarded or that ``now == deadline`` on
simulated-time floats is the exact bug class that broke HPDedup-style
inline/offline comparisons.  See ``docs/analysis.md`` for the rule
catalogue with examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

#: Package path fragments (POSIX style, relative to the repo) whose
#: modules must be deterministic: anything on the simulated-results
#: path.  ``repro/obs`` is included -- observation must never perturb
#: results, and report documents must be byte-stable under an injected
#: clock (see ``repro.obs.report``).
DETERMINISTIC_PACKAGES: Tuple[str, ...] = (
    "repro/sim",
    "repro/core",
    "repro/cache",
    "repro/storage",
    "repro/dedup",
    "repro/baselines",
    "repro/obs",
    "repro/traces",
    "repro/metrics",
    "repro/cluster",
)


class RuleScope(enum.Enum):
    """Where a rule applies."""

    #: Only inside :data:`DETERMINISTIC_PACKAGES`.
    DETERMINISTIC = "deterministic"
    #: Every linted file.
    EVERYWHERE = "everywhere"


class RuleTier(enum.Enum):
    """Which analysis pass produces a rule's findings."""

    #: Single-module AST pattern matching (always on).
    SYNTAX = "syntax"
    #: Whole-package dataflow/taint analysis (``repro lint --flow``).
    FLOW = "flow"
    #: Findings about the lint run itself (unused suppressions, ...).
    META = "meta"


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, summary, scope, producing tier."""

    code: str
    name: str
    summary: str
    scope: RuleScope
    tier: RuleTier = RuleTier.SYNTAX

    def as_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "name": self.name,
            "summary": self.summary,
            "scope": self.scope.value,
            "tier": self.tier.value,
        }


POD001 = Rule(
    code="POD001",
    name="wall-clock-in-sim-path",
    summary=(
        "wall-clock call (time.time/monotonic/perf_counter, datetime.now, "
        "...) in a deterministic package; inject a clock instead"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD002 = Rule(
    code="POD002",
    name="global-rng-in-sim-path",
    summary=(
        "global RNG state (stdlib `random`, numpy legacy np.random.*, or "
        "unseeded default_rng()) in a deterministic package; thread a "
        "seeded np.random.Generator instead"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD003 = Rule(
    code="POD003",
    name="float-time-equality",
    summary=(
        "float ==/!= on a simulated-time expression; compare with "
        "tolerance or restructure (exact float identity on derived times "
        "is scheduling-order dependent)"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD004 = Rule(
    code="POD004",
    name="mutable-default-argument",
    summary=(
        "mutable default argument (list/dict/set literal or constructor); "
        "use None + in-body default or dataclasses.field(default_factory)"
    ),
    scope=RuleScope.EVERYWHERE,
)

POD005 = Rule(
    code="POD005",
    name="unguarded-trace-emit",
    summary=(
        "TraceRecorder .emit(...) call without an enclosing level guard "
        "(`if <recorder>.level >= TraceLevel.X:` / `.wants(...)`); the "
        "disabled path must cost one integer compare and zero allocation"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD006 = Rule(
    code="POD006",
    name="ambient-entropy-in-sim-path",
    summary=(
        "ambient process entropy (uuid.uuid1/uuid4, os.urandom, os.getpid, "
        "os.environ, secrets.*) in a deterministic package"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD007 = Rule(
    code="POD007",
    name="cross-object-private-access",
    summary=(
        "access to another object's `._private` attribute (receiver is "
        "not self/cls/super()); use the owning class's sanctioned "
        "accessor surface instead -- encapsulation is what keeps the "
        "sanitizer/observer layers honest"
    ),
    scope=RuleScope.EVERYWHERE,
)

POD008 = Rule(
    code="POD008",
    name="laundered-unseeded-rng",
    summary=(
        "value derived from unseeded/global RNG reaches replay state "
        "through a helper call (interprocedural taint); seed the RNG "
        "from configuration and thread the Generator explicitly"
    ),
    scope=RuleScope.DETERMINISTIC,
    tier=RuleTier.FLOW,
)

POD009 = Rule(
    code="POD009",
    name="unordered-iteration-into-output",
    summary=(
        "dict/set iteration order flows into an ordered output sink "
        "(report rows, histograms, JSONL, joins) without sorted(); "
        "wrap the iterable in sorted(...) -- autofixable"
    ),
    scope=RuleScope.DETERMINISTIC,
    tier=RuleTier.FLOW,
)

POD010 = Rule(
    code="POD010",
    name="laundered-wall-clock",
    summary=(
        "wall-clock value laundered through a helper/alias call in a "
        "deterministic package (the POD001 gap: time.time() called "
        "elsewhere, its result consumed here); inject a Clock instead"
    ),
    scope=RuleScope.DETERMINISTIC,
    tier=RuleTier.FLOW,
)

POD011 = Rule(
    code="POD011",
    name="tainted-sim-time-equality",
    summary=(
        "==/!= (or unordered-loop accumulation) on a value carrying "
        "SimTime taint under names the POD003 heuristic cannot see "
        "(aliased time variables); compare with tolerance or restructure"
    ),
    scope=RuleScope.DETERMINISTIC,
    tier=RuleTier.FLOW,
)

POD012 = Rule(
    code="POD012",
    name="frozen-dataclass-mutation",
    summary=(
        "object.__setattr__ outside __post_init__ mutates a frozen "
        "(config) dataclass after construction; frozen configs are "
        "hashable replay keys and must never change"
    ),
    scope=RuleScope.EVERYWHERE,
    tier=RuleTier.FLOW,
)

POD090 = Rule(
    code="POD090",
    name="unused-suppression",
    summary=(
        "`# pod: ignore` pragma suppresses nothing (no enabled rule "
        "fires on the line) or names an unknown rule code; remove or "
        "narrow the pragma"
    ),
    scope=RuleScope.EVERYWHERE,
    tier=RuleTier.META,
)

#: Every rule, by code, in catalogue order.
ALL_RULES: Dict[str, Rule] = {
    r.code: r
    for r in (POD001, POD002, POD003, POD004, POD005, POD006, POD007,
              POD008, POD009, POD010, POD011, POD012, POD090)
}

#: Rules produced by the dataflow tier (``repro lint --flow``).
FLOW_RULES: Dict[str, Rule] = {
    c: r for c, r in ALL_RULES.items() if r.tier is RuleTier.FLOW
}


# ----------------------------------------------------------------------
# shared domain tables -- the vocabulary both the syntactic tier
# (lint.py) and the dataflow tier (flow.py) match against
# ----------------------------------------------------------------------

#: Wall-clock call suffixes banned in deterministic packages (POD001),
#: and the WallClock taint sources of the dataflow tier (POD010).
WALL_CLOCK_SUFFIXES: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: numpy RNG constructors that are fine when explicitly seeded.
NP_RNG_OK: Set[str] = {"Generator", "SeedSequence", "BitGenerator", "PCG64",
                       "Philox", "SFC64", "MT19937", "RandomState"}

#: Ambient-entropy call/attribute suffixes (POD006).
ENTROPY_SUFFIXES: Tuple[str, ...] = (
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "os.getpid",
    "os.getenv",
)

#: Identifier segments that mark an expression as simulated time
#: (POD003 directly; SimTime taint *sources* for POD011).  Matched
#: against ``_``-separated segments of the terminal identifier, so
#: ``arrival_time`` and ``t`` match but ``total`` and ``threshold``
#: do not.
TIMEY_SEGMENTS: Set[str] = {"t", "now", "time", "arrival", "completion",
                            "deadline", "timestamp", "makespan"}
TIMEY_EXACT: Set[str] = {"busy_until", "next_time", "last_arrival",
                         "completed_at", "issue_time", "ssd_done"}


def matches_suffix(dotted: str, suffixes: Sequence[str]) -> Optional[str]:
    """The first suffix ``dotted`` matches (whole-segment), else None."""
    for suffix in suffixes:
        if dotted == suffix or dotted.endswith("." + suffix):
            return suffix
    return None


def is_timey_identifier(ident: Optional[str]) -> bool:
    """Does a terminal identifier name a simulated-time quantity?"""
    if ident is None:
        return False
    if ident in TIMEY_EXACT:
        return True
    return any(seg in TIMEY_SEGMENTS for seg in ident.lower().split("_"))
