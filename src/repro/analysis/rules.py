"""The POD lint rule registry.

Every rule has a stable code (``POD001``...), a one-line summary and a
scope.  ``DETERMINISTIC`` rules only apply inside the packages whose
behaviour feeds the simulated results (a wall clock in the CLI's
progress output is fine; one in the replay engine is a reproducibility
bug).  ``EVERYWHERE`` rules are plain correctness rules.

Rules are deliberately project-specific: a generic linter cannot know
that ``obs.emit`` must be level-guarded or that ``now == deadline`` on
simulated-time floats is the exact bug class that broke HPDedup-style
inline/offline comparisons.  See ``docs/analysis.md`` for the rule
catalogue with examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

#: Package path fragments (POSIX style, relative to the repo) whose
#: modules must be deterministic: anything on the simulated-results
#: path.  ``repro/obs`` is included -- observation must never perturb
#: results, and report documents must be byte-stable under an injected
#: clock (see ``repro.obs.report``).
DETERMINISTIC_PACKAGES: Tuple[str, ...] = (
    "repro/sim",
    "repro/core",
    "repro/cache",
    "repro/storage",
    "repro/dedup",
    "repro/baselines",
    "repro/obs",
    "repro/traces",
    "repro/metrics",
    "repro/cluster",
)


class RuleScope(enum.Enum):
    """Where a rule applies."""

    #: Only inside :data:`DETERMINISTIC_PACKAGES`.
    DETERMINISTIC = "deterministic"
    #: Every linted file.
    EVERYWHERE = "everywhere"


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, summary, scope."""

    code: str
    name: str
    summary: str
    scope: RuleScope

    def as_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "name": self.name,
            "summary": self.summary,
            "scope": self.scope.value,
        }


POD001 = Rule(
    code="POD001",
    name="wall-clock-in-sim-path",
    summary=(
        "wall-clock call (time.time/monotonic/perf_counter, datetime.now, "
        "...) in a deterministic package; inject a clock instead"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD002 = Rule(
    code="POD002",
    name="global-rng-in-sim-path",
    summary=(
        "global RNG state (stdlib `random`, numpy legacy np.random.*, or "
        "unseeded default_rng()) in a deterministic package; thread a "
        "seeded np.random.Generator instead"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD003 = Rule(
    code="POD003",
    name="float-time-equality",
    summary=(
        "float ==/!= on a simulated-time expression; compare with "
        "tolerance or restructure (exact float identity on derived times "
        "is scheduling-order dependent)"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD004 = Rule(
    code="POD004",
    name="mutable-default-argument",
    summary=(
        "mutable default argument (list/dict/set literal or constructor); "
        "use None + in-body default or dataclasses.field(default_factory)"
    ),
    scope=RuleScope.EVERYWHERE,
)

POD005 = Rule(
    code="POD005",
    name="unguarded-trace-emit",
    summary=(
        "TraceRecorder .emit(...) call without an enclosing level guard "
        "(`if <recorder>.level >= TraceLevel.X:` / `.wants(...)`); the "
        "disabled path must cost one integer compare and zero allocation"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD006 = Rule(
    code="POD006",
    name="ambient-entropy-in-sim-path",
    summary=(
        "ambient process entropy (uuid.uuid1/uuid4, os.urandom, os.getpid, "
        "os.environ, secrets.*) in a deterministic package"
    ),
    scope=RuleScope.DETERMINISTIC,
)

POD007 = Rule(
    code="POD007",
    name="cross-object-private-access",
    summary=(
        "access to another object's `._private` attribute (receiver is "
        "not self/cls/super()); use the owning class's sanctioned "
        "accessor surface instead -- encapsulation is what keeps the "
        "sanitizer/observer layers honest"
    ),
    scope=RuleScope.EVERYWHERE,
)

#: Every rule, by code, in catalogue order.
ALL_RULES: Dict[str, Rule] = {
    r.code: r for r in (POD001, POD002, POD003, POD004, POD005, POD006, POD007)
}
