"""Fixed index/read partition of one DRAM budget.

This is the cache organisation of Full-Dedupe, iDedup and plain
Select-Dedupe in the paper's experiments: "Full-Dedupe, iDedup and
Select-Dedupe all use the fixed cache partition that allocates equal
spaces to the index cache and read cache" (Section IV-B).  The
Figure 3 sweep varies ``index_fraction`` from 0.2 to 0.8.

POD replaces this with :class:`repro.core.icache.ICache`, which keeps
the same two caches but re-balances them at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.constants import BLOCK_SIZE, INDEX_ENTRY_SIZE
from repro.cache.lru import LRUCache
from repro.errors import CacheError


@dataclass(frozen=True)
class PartitionSizes:
    """Byte sizes of the two partitions."""

    index_bytes: int
    read_bytes: int

    def __post_init__(self) -> None:
        if self.index_bytes < 0 or self.read_bytes < 0:
            raise CacheError("partition sizes must be non-negative")

    @property
    def total_bytes(self) -> int:
        return self.index_bytes + self.read_bytes


def split_budget(total_bytes: int, index_fraction: float) -> PartitionSizes:
    """Split a DRAM budget; ``index_fraction`` in [0, 1]."""
    if total_bytes < 0:
        raise CacheError("negative DRAM budget")
    if not (0.0 <= index_fraction <= 1.0):
        raise CacheError(f"index fraction {index_fraction} outside [0, 1]")
    index = int(total_bytes * index_fraction)
    return PartitionSizes(index_bytes=index, read_bytes=total_bytes - index)


class PartitionedCache:
    """One DRAM budget statically split into index + read caches.

    * The **index cache** maps ``fingerprint -> PBA`` at
      :data:`INDEX_ENTRY_SIZE` bytes per entry.
    * The **read cache** holds 4 KB data blocks keyed by PBA.

    Exposes the same surface iCache does, so schemes are agnostic to
    which one they were given.
    """

    def __init__(self, total_bytes: int, index_fraction: float = 0.5) -> None:
        sizes = split_budget(total_bytes, index_fraction)
        self.total_bytes = total_bytes
        #: Index cache values stay ``Any`` on purpose: the fixed
        #: partition stores raw PBA ints, while an attached
        #: :class:`~repro.dedup.index_table.IndexTable` stores
        #: ``IndexEntry`` records in the same LRU.
        self.index: LRUCache[int, Any] = LRUCache(
            sizes.index_bytes, default_entry_size=INDEX_ENTRY_SIZE
        )
        self.read: LRUCache[int, bool] = LRUCache(
            sizes.read_bytes, default_entry_size=BLOCK_SIZE
        )
        #: Interface parity with :class:`repro.core.icache.ICache`
        #: (fixed partitions never repartition, so this stays empty).
        self.epoch_timeline: List[dict] = []

    def attach_observer(self, recorder: Any, clock: Any = None) -> None:
        """Accept an observer for interface parity with iCache.

        The fixed partition emits no micro-events of its own (its
        hit/miss counters are surfaced through :meth:`stats`), but
        accepting the attachment keeps the scheme-side wiring uniform.
        """
        self.obs = recorder

    # -- index side ----------------------------------------------------

    def index_lookup(self, fingerprint: int) -> Optional[Any]:
        """PBA of a cached fingerprint, or None."""
        return self.index.get(fingerprint)

    def index_insert(self, fingerprint: int, pba: int) -> None:
        self.index.put(fingerprint, pba)

    def index_remove(self, fingerprint: int) -> bool:
        return self.index.remove(fingerprint)

    # -- read side -----------------------------------------------------

    def read_lookup(self, pba: int) -> bool:
        """True if the block at ``pba`` is cached."""
        return self.read.get(pba) is not None

    def read_insert(self, pba: int) -> None:
        self.read.put(pba, True)

    def read_remove(self, pba: int) -> bool:
        return self.read.remove(pba)

    # -- bookkeeping ---------------------------------------------------

    def on_index_miss(self, fingerprint: int) -> None:
        """Fixed partitions keep no ghost history; nothing to record."""

    def note_index_evictions(self, evicted: Iterable[Tuple[int, Any]]) -> None:
        """Fixed partitions keep no ghost history; victims are dropped."""

    def on_epoch(self, now: float) -> float:
        """Fixed partitions never rebalance; zero swap cost."""
        return 0.0

    def stats(self) -> Dict[str, int]:
        return {
            "index_bytes": self.index.capacity_bytes,
            "read_bytes": self.read.capacity_bytes,
            "index_hits": self.index.hits,
            "index_misses": self.index.misses,
            "read_hits": self.read.hits,
            "read_misses": self.read.misses,
            "index_evictions": self.index.evictions,
            "read_evictions": self.read.evictions,
        }
