"""Metadata-only ghost cache.

A ghost cache remembers the *keys* of recently evicted entries without
their data (Section III-C: "ghost index and ghost read caches that
store only metadata whose actual data are stored on the back-end
storage devices").  A hit in a ghost cache means: *had this cache been
larger, the access would have hit* -- the signal iCache's cost-benefit
estimator is built on.

The paper bounds ``actual + ghost`` by the total DRAM size, so the
ghost capacity is expressed in the same bytes-of-actual-data units as
the cache it shadows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, List, Optional, TypeVar

from repro.errors import CacheError

K = TypeVar("K")


class GhostCache(Generic[K]):
    """Bounded LRU of keys with per-entry *represented* sizes.

    ``capacity_bytes`` caps the sum of represented sizes, i.e. how
    much actual cache the ghost stands in for.
    """

    def __init__(self, capacity_bytes: int, default_entry_size: int = 1) -> None:
        if capacity_bytes < 0:
            raise CacheError(f"negative ghost capacity {capacity_bytes}")
        if default_entry_size <= 0:
            raise CacheError("default entry size must be positive")
        self.capacity_bytes = capacity_bytes
        self.default_entry_size = default_entry_size
        self._keys: "OrderedDict[K, int]" = OrderedDict()
        self._used = 0
        #: Hits this epoch (the Access Monitor resets these).
        self.hits = 0
        #: Hits over the ghost cache's whole lifetime (observability;
        #: survives :meth:`reset_counters`).
        self.hits_total = 0
        #: Evictions recorded over the lifetime.
        self.evictions_recorded = 0

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._keys

    @property
    def used_bytes(self) -> int:
        return self._used

    def record_eviction(self, key: K, size: Optional[int] = None) -> List[K]:
        """Remember an evicted key; returns ghost keys aged out."""
        size = self.default_entry_size if size is None else size
        if size <= 0:
            raise CacheError(f"entry size must be positive, got {size}")
        self.evictions_recorded += 1
        if key in self._keys:
            self._used -= self._keys.pop(key)
        if size > self.capacity_bytes:
            return [key]
        self._keys[key] = size
        self._used += size
        dropped: List[K] = []
        while self._used > self.capacity_bytes and self._keys:
            k, s = self._keys.popitem(last=False)
            self._used -= s
            dropped.append(k)
        return dropped

    def hit(self, key: K) -> bool:
        """Check for *key*; on a hit, count it and remove the key
        (the caller is expected to re-admit the entry to the actual
        cache, as ARC does)."""
        if key in self._keys:
            self._used -= self._keys.pop(key)
            self.hits += 1
            self.hits_total += 1
            return True
        return False

    def remove(self, key: K) -> bool:
        """Silently drop *key* (no hit counted)."""
        if key in self._keys:
            self._used -= self._keys.pop(key)
            return True
        return False

    def resize(self, new_capacity_bytes: int) -> List[K]:
        """Change capacity, aging out LRU ghosts as needed."""
        if new_capacity_bytes < 0:
            raise CacheError(f"negative ghost capacity {new_capacity_bytes}")
        self.capacity_bytes = new_capacity_bytes
        dropped: List[K] = []
        while self._used > self.capacity_bytes and self._keys:
            k, s = self._keys.popitem(last=False)
            self._used -= s
            dropped.append(k)
        return dropped

    def keys_mru(self) -> Iterator[K]:
        """Keys from most- to least-recently evicted (swap-in order)."""
        return reversed(self._keys)

    def reset_counters(self) -> None:
        self.hits = 0
