"""ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

The paper cites ARC as the origin of the ghost-hit idea that iCache
generalises to *heterogeneous* caches (index vs read).  We implement
the full ARC algorithm over uniform-size entries: it is used by the
I/O-Deduplication extension baseline's content-addressed read cache
and serves as a reference implementation for the ghost-cache tests.

ARC maintains four LRU lists:

* ``T1`` -- recent entries seen once (with data),
* ``T2`` -- frequent entries seen at least twice (with data),
* ``B1`` / ``B2`` -- ghost histories of entries evicted from T1 / T2.

A hit in B1 grows the target size ``p`` of T1 (recency pays off);
a hit in B2 shrinks it (frequency pays off).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.errors import CacheError


class ARCache:
    """Adaptive Replacement Cache over ``capacity`` uniform entries."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise CacheError("ARC capacity must be positive")
        self.capacity = capacity
        self.p = 0  # target size of T1
        self.t1: "OrderedDict[Any, Any]" = OrderedDict()
        self.t2: "OrderedDict[Any, Any]" = OrderedDict()
        self.b1: "OrderedDict[Any, None]" = OrderedDict()
        self.b2: "OrderedDict[Any, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Ghost-list hit counters (the adaptation signal, observable).
        self.b1_hits = 0
        self.b2_hits = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.t1) + len(self.t2)

    def __contains__(self, key: Any) -> bool:
        return key in self.t1 or key in self.t2

    def get(self, key: Any) -> Optional[Any]:
        """Cache lookup; promotes on hit, adapts ``p`` implicitly via
        :meth:`put` on ghost hits (ARC adapts on *insertion* after a
        miss; plain gets only move between T1/T2)."""
        if key in self.t1:
            value = self.t1.pop(key)
            self.t2[key] = value
            self.hits += 1
            return value
        if key in self.t2:
            self.t2.move_to_end(key)
            self.hits += 1
            return self.t2[key]
        self.misses += 1
        return None

    def put(self, key: Any, value: Any = None) -> None:
        """Insert *key* after a miss (the ARC ``REQUEST`` procedure)."""
        if key in self.t1:
            self.t1.pop(key)
            self.t2[key] = value
            return
        if key in self.t2:
            self.t2[key] = value
            self.t2.move_to_end(key)
            return
        if key in self.b1:
            # Recency ghost hit: grow T1's target.
            self.b1_hits += 1
            delta = 1 if len(self.b1) >= len(self.b2) else max(1, len(self.b2) // max(1, len(self.b1)))
            self.p = min(self.capacity, self.p + delta)
            self._replace(in_b2=False)
            del self.b1[key]
            self.t2[key] = value
            return
        if key in self.b2:
            # Frequency ghost hit: shrink T1's target.
            self.b2_hits += 1
            delta = 1 if len(self.b2) >= len(self.b1) else max(1, len(self.b1) // max(1, len(self.b2)))
            self.p = max(0, self.p - delta)
            self._replace(in_b2=True)
            del self.b2[key]
            self.t2[key] = value
            return
        # Brand-new key.
        l1 = len(self.t1) + len(self.b1)
        if l1 == self.capacity:
            if len(self.t1) < self.capacity:
                self.b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                self.t1.popitem(last=False)
        else:
            total = l1 + len(self.t2) + len(self.b2)
            if total >= self.capacity:
                if total == 2 * self.capacity:
                    self.b2.popitem(last=False)
                self._replace(in_b2=False)
        self.t1[key] = value

    def _replace(self, in_b2: bool) -> None:
        """Evict one entry from T1 or T2 into its ghost list."""
        if self.t1 and (len(self.t1) > self.p or (in_b2 and len(self.t1) == self.p)):
            key, _ = self.t1.popitem(last=False)
            self.b1[key] = None
        elif self.t2:
            key, _ = self.t2.popitem(last=False)
            self.b2[key] = None
        elif self.t1:  # pragma: no cover - defensive: T2 empty, T1 <= p
            key, _ = self.t1.popitem(last=False)
            self.b1[key] = None

    # ------------------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def sizes(self) -> Dict[str, int]:
        """List occupancies (for invariant tests)."""
        return {"t1": len(self.t1), "t2": len(self.t2), "b1": len(self.b1), "b2": len(self.b2), "p": self.p}

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the observability registry."""
        out = dict(self.sizes())
        out.update(
            hits=self.hits,
            misses=self.misses,
            b1_hits=self.b1_hits,
            b2_hits=self.b2_hits,
        )
        return out
