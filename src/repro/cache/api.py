"""Structural interface shared by the DRAM cache organisations.

Both :class:`repro.cache.partition.PartitionedCache` (fixed split)
and :class:`repro.core.icache.ICache` (POD's adaptive partition)
implement this surface; schemes hold a :class:`DramCache` and stay
agnostic to which organisation they were given.  The protocol exists
for static checking only -- there is no runtime registration, and the
two implementations share no base class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.cache.lru import LRUCache


class DramCache(Protocol):
    """What a scheme may assume about its DRAM cache.

    Index-cache *values* are deliberately loose (``Any``): bare caches
    map ``fingerprint -> PBA`` ints while an attached
    :class:`~repro.dedup.index_table.IndexTable` stores ``IndexEntry``
    records in the same LRU.
    """

    #: The two actual caches (the sanitizer and tests reach into these).
    index: LRUCache[int, Any]
    read: LRUCache[int, bool]
    #: Per-epoch decision records (empty for fixed partitions).
    epoch_timeline: List[Any]

    def attach_observer(
        self, recorder: Any, clock: Optional[Callable[[], float]] = None
    ) -> None:
        """Attach a trace recorder (observation only)."""
        ...

    # -- index side ----------------------------------------------------

    def index_lookup(self, fingerprint: int) -> Optional[Any]:
        ...

    def index_insert(self, fingerprint: int, pba: Any) -> None:
        ...

    def index_remove(self, fingerprint: int) -> bool:
        ...

    def on_index_miss(self, fingerprint: int) -> None:
        ...

    def note_index_evictions(self, evicted: Iterable[Tuple[int, Any]]) -> None:
        ...

    # -- read side -----------------------------------------------------

    def read_lookup(self, pba: int) -> bool:
        ...

    def read_insert(self, pba: int) -> None:
        ...

    def read_remove(self, pba: int) -> bool:
        ...

    # -- management ----------------------------------------------------

    def on_epoch(self, now: float) -> float:
        """Run one management epoch; returns bytes swapped."""
        ...

    def stats(self) -> Dict[str, Any]:
        ...
