"""Cache substrate: LRU, ghost caches, ARC, partitioned DRAM.

* :mod:`repro.cache.lru` -- byte-capacity LRU with eviction reporting.
* :mod:`repro.cache.ghost` -- metadata-only ghost cache (ARC-style
  recency history of evicted entries), the mechanism iCache uses to
  estimate the cost-benefit of growing each cache.
* :mod:`repro.cache.arc` -- the ARC replacement policy (Megiddo &
  Modha, FAST'03), cited by the paper as the inspiration for ghost
  hits; used as a related-work substrate and in tests.
* :mod:`repro.cache.partition` -- a fixed index/read split of one DRAM
  budget (what Full-Dedupe, iDedup and plain Select-Dedupe use).
"""

from __future__ import annotations

from repro.cache.lru import LRUCache
from repro.cache.ghost import GhostCache
from repro.cache.arc import ARCache
from repro.cache.partition import PartitionedCache, PartitionSizes

__all__ = ["LRUCache", "GhostCache", "ARCache", "PartitionedCache", "PartitionSizes"]
