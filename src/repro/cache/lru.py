"""Byte-capacity LRU cache.

Entries carry an explicit size so one implementation serves both the
read cache (4 KB data blocks) and the index cache (32 B fingerprint
entries).  Evictions are returned to the caller, which lets owners
feed ghost caches or write victims back to disk.

The cache is generic over its key and value types (``LRUCache[K, V]``);
un-parameterised uses keep the historical ``Any`` behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.errors import CacheError

K = TypeVar("K")
V = TypeVar("V")

#: (key, value, size) triple describing an evicted entry.
Evicted = Tuple[K, V, int]


class LRUCache(Generic[K, V]):
    """Least-recently-used cache bounded by total entry bytes."""

    def __init__(self, capacity_bytes: int, default_entry_size: int = 1) -> None:
        if capacity_bytes < 0:
            raise CacheError(f"negative capacity {capacity_bytes}")
        if default_entry_size <= 0:
            raise CacheError("default entry size must be positive")
        self.capacity_bytes = capacity_bytes
        self.default_entry_size = default_entry_size
        self._entries: "OrderedDict[K, Tuple[V, int]]" = OrderedDict()
        self._used = 0
        # hit/miss accounting (the Access Monitor reads these).
        self.hits = 0
        self.misses = 0
        #: Entries evicted to make room (capacity pressure signal
        #: surfaced by the observability registry; lifetime counter).
        self.evictions = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        """Iterate keys from most- to least-recently used."""
        return reversed(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    # ------------------------------------------------------------------

    def get(self, key: K) -> Optional[V]:
        """Look up *key*, promoting it to MRU.  Counts hit/miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def peek(self, key: K) -> Optional[V]:
        """Look up without promoting or counting."""
        entry = self._entries.get(key)
        return None if entry is None else entry[0]

    def put(self, key: K, value: V = None, size: Optional[int] = None) -> List[Evicted[K, V]]:  # type: ignore[assignment]
        """Insert/update *key* as MRU; return entries evicted to fit.

        An entry larger than the whole cache is rejected (returned as
        if immediately evicted) rather than wiping the cache.
        """
        size = self.default_entry_size if size is None else size
        if size <= 0:
            raise CacheError(f"entry size must be positive, got {size}")
        if key in self._entries:
            _, old_size = self._entries.pop(key)
            self._used -= old_size
        if size > self.capacity_bytes:
            return [(key, value, size)]
        self._entries[key] = (value, size)
        self._used += size
        return self._evict_to_fit()

    def remove(self, key: K) -> bool:
        """Drop *key* if present; returns whether it was there."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._used -= entry[1]
        return True

    def resize(self, new_capacity_bytes: int) -> List[Evicted[K, V]]:
        """Change capacity; returns LRU victims shed to fit."""
        if new_capacity_bytes < 0:
            raise CacheError(f"negative capacity {new_capacity_bytes}")
        self.capacity_bytes = new_capacity_bytes
        return self._evict_to_fit()

    def pop_lru(self) -> Optional[Evicted[K, V]]:
        """Evict and return the LRU entry, or ``None`` if empty."""
        if not self._entries:
            return None
        key, (value, size) = self._entries.popitem(last=False)
        self._used -= size
        return (key, value, size)

    def clear(self) -> List[Evicted[K, V]]:
        """Empty the cache, returning everything as victims."""
        victims = [(k, v, s) for k, (v, s) in self._entries.items()]
        self._entries.clear()
        self._used = 0
        return victims

    def keys_lru_order(self) -> List[K]:
        """Keys from least- to most-recently used (for tests)."""
        return list(self._entries)

    # ------------------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def _evict_to_fit(self) -> List[Evicted[K, V]]:
        victims: List[Evicted[K, V]] = []
        while self._used > self.capacity_bytes and self._entries:
            victims.append(self.pop_lru())  # type: ignore[arg-type]
        self.evictions += len(victims)
        return victims
