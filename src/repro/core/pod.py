"""POD: Performance-Oriented I/O Deduplication.

POD composes the paper's two mechanisms (Section III-A):

* :class:`~repro.core.select_dedupe.SelectDedupe` on the write path --
  request-based selective deduplication that eliminates fully
  redundant writes (including the small, performance-critical ones)
  and sequential redundant runs, while bypassing scattered partial
  redundancy to avoid read amplification; and
* :class:`~repro.core.icache.ICache` in the storage cache -- dynamic
  repartitioning of DRAM between the fingerprint index cache and the
  data read cache, adapting to read/write burstiness.

The only behavioural differences from plain Select-Dedupe are the
cache organisation and the periodic epoch hook; everything else is
inherited.  During write-intensive periods the index cache grows,
detecting more duplicates, which is why POD removes slightly more
write requests than Select-Dedupe with the fixed split (Fig. 11).
"""

from __future__ import annotations

from repro.baselines.base import SchemeConfig
from repro.core.icache import ICache, ICacheConfig
from repro.core.select_dedupe import SelectDedupe


class POD(SelectDedupe):
    """Select-Dedupe + iCache: the full POD system."""

    name = "POD"
    features = {
        "capacity_saving": True,
        "performance_enhancement": True,
        "small_writes_elimination": True,
        "large_writes_elimination": True,
        "cache_partitioning": "dynamic/adaptive",
    }

    def __init__(self, config: SchemeConfig) -> None:
        super().__init__(config)
        self.epoch_interval = config.icache_epoch

    def _make_cache(self) -> ICache:
        return ICache(
            ICacheConfig(
                total_bytes=self.config.memory_bytes,
                initial_index_fraction=self.config.index_fraction,
                step_fraction=self.config.icache_step,
                min_fraction=self.config.icache_min_fraction,
                read_miss_cost=self.config.icache_read_miss_cost,
                write_saved_cost=self.config.icache_write_saved_cost,
            )
        )

    @property
    def icache(self) -> ICache:
        """The adaptive cache (typed accessor for examples/tests)."""
        return self.cache
