"""The three-way categorisation of write requests (Figure 5).

Select-Dedupe classifies every write request with redundant data into:

* **Category 1** -- fully redundant, and the duplicate copies are
  stored *sequentially* on disk.  Deduplicate the entire request: no
  data hits the disk, only the Map table changes.
* **Category 2** -- partially redundant, with fewer redundant chunks
  than the threshold (3 in the paper's current design).  Do **not**
  deduplicate: the request must touch the disk anyway, and carving
  holes in it would fragment subsequent reads (read amplification).
* **Category 3** -- partially redundant with at least ``threshold``
  redundant chunks stored as sequential runs on disk.  Deduplicate
  those runs and write the remainder.

A request with no redundant chunks at all is *unique* (category 0 in
this implementation) and is written as-is.

"Sequential on disk" is decided over the candidate duplicate PBAs:
a maximal run of consecutive request chunks whose duplicate targets
are consecutive physical blocks.  Runs shorter than ``threshold`` are
not worth the fragmentation except in the fully-redundant case, where
a single run spanning the whole request always qualifies (this is what
lets POD eliminate the small -- 4 KB / 8 KB -- fully redundant writes
that iDedup deliberately ignores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.constants import SELECT_DEDUPE_THRESHOLD
from repro.errors import DedupError


class Category(enum.Enum):
    """Write-request categories (Figure 5)."""

    #: No redundant chunks.
    UNIQUE = 0
    #: Fully redundant, duplicates sequential on disk.
    FULLY_REDUNDANT = 1
    #: Partially redundant below threshold (or scattered): bypass.
    SCATTERED_PARTIAL = 2
    #: Partially redundant, at/above threshold, sequential runs.
    SEQUENTIAL_PARTIAL = 3


@dataclass
class CategoryDecision:
    """Outcome of categorising one write request.

    Attributes
    ----------
    category:
        The assigned :class:`Category`.
    dedupe_chunks:
        Indices (into the request's chunk list) that Select-Dedupe
        will deduplicate.  Empty for UNIQUE and SCATTERED_PARTIAL.
    redundant_chunks:
        Indices of all chunks with a known duplicate, regardless of
        the decision (workload-analysis statistics).
    runs:
        The sequential duplicate runs found, as ``(start_index,
        length)`` pairs (diagnostics and tests).
    """

    category: Category
    dedupe_chunks: List[int] = field(default_factory=list)
    redundant_chunks: List[int] = field(default_factory=list)
    runs: List[Tuple[int, int]] = field(default_factory=list)

    def to_fields(self, nchunks: int) -> dict:
        """Flat payload for ``request.classify`` trace events
        (part of the stable event schema -- see docs/observability.md).

        ``nchunks`` is the request length in chunks (the decision
        itself only stores indices, not the request size).
        """
        return {
            "category": self.category.value,
            "category_name": self.category.name,
            "nchunks": nchunks,
            "redundant_chunks": len(self.redundant_chunks),
            "deduped_chunks": len(self.dedupe_chunks),
            "runs": [[s, l] for s, l in self.runs],
        }


def sequential_runs(duplicate_pbas: Sequence[Optional[int]]) -> List[Tuple[int, int]]:
    """Maximal runs of chunks whose duplicate targets are consecutive.

    ``duplicate_pbas[i]`` is the PBA of chunk *i*'s duplicate, or
    ``None`` when the chunk is unique.  A run is a maximal range of
    indices ``i..i+k`` where every chunk is redundant and
    ``pba[i+j] == pba[i] + j``.

    >>> sequential_runs([10, 11, 12, None, 7, 9])
    [(0, 3), (4, 1), (5, 1)]
    """
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for i, pba in enumerate(duplicate_pbas):
        if pba is None:
            if start is not None:
                runs.append((start, i - start))
                start = None
            continue
        if start is None:
            start = i
        elif duplicate_pbas[i - 1] is None or pba != duplicate_pbas[i - 1] + 1:
            runs.append((start, i - start))
            start = i
    if start is not None:
        runs.append((start, len(duplicate_pbas) - start))
    return runs


def categorize_write(
    duplicate_pbas: Sequence[Optional[int]],
    threshold: int = SELECT_DEDUPE_THRESHOLD,
) -> CategoryDecision:
    """Categorise one write request per Figure 5.

    Parameters
    ----------
    duplicate_pbas:
        Per-chunk duplicate target (from the Index table), ``None``
        for unique chunks.
    threshold:
        Minimum redundant chunks for category 3 (paper default 3).
    """
    if threshold < 1:
        raise DedupError(f"threshold must be >= 1, got {threshold}")
    n = len(duplicate_pbas)
    if n == 0:
        raise DedupError("cannot categorise an empty request")

    redundant = [i for i, p in enumerate(duplicate_pbas) if p is not None]
    runs = sequential_runs(duplicate_pbas)

    if not redundant:
        return CategoryDecision(Category.UNIQUE, [], [], runs)

    # Fully redundant and one sequential run covering the request.
    if len(redundant) == n and len(runs) == 1 and runs[0] == (0, n):
        return CategoryDecision(
            Category.FULLY_REDUNDANT, list(range(n)), redundant, runs
        )

    # Partially redundant (or fully redundant but scattered): only
    # sequential runs of at least `threshold` chunks are worth the
    # fragmentation they introduce.
    qualifying = [(s, l) for s, l in runs if l >= threshold]
    qualifying_chunks = sum(l for _, l in qualifying)
    if qualifying_chunks >= threshold:
        dedupe = [i for s, l in qualifying for i in range(s, s + l)]
        return CategoryDecision(
            Category.SEQUENTIAL_PARTIAL, dedupe, redundant, runs
        )

    return CategoryDecision(Category.SCATTERED_PARTIAL, [], redundant, runs)
