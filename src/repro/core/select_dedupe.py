"""Select-Dedupe: the request-based selective deduplication scheme.

The write-path half of POD (Section III-B).  Two cooperating modules:

* the **Data Deduplicator** splits incoming write data into 4 KB
  chunks, fingerprints them (32 us/chunk charged by the hash engine),
  and resolves each fingerprint against the hot in-memory Index table
  -- a miss simply means "treat as unique"; POD never pays an on-disk
  index lookup;
* the **Request Redirector** applies the Figure-5 categorisation and
  commits the decision: categories 1 and 3 are deduplicated (Map-table
  update only for the redundant runs), category 2 is written to disk
  untouched so subsequent reads stay sequential.

Unlike iDedup, category 1 has no minimum size: a single fully
redundant 4 KB write is eliminated -- that is the performance-
sensitive small-write elimination the paper's title is about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import DedupScheme, SchemeConfig
from repro.core.categorize import Category, categorize_write
from repro.obs.events import EventType, TraceLevel
from repro.sim.request import IORequest
from repro.storage.volume import VolumeOp


class SelectDedupe(DedupScheme):
    """Selective request-based deduplication (POD's write path)."""

    name = "Select-Dedupe"
    features = {
        "capacity_saving": True,
        "performance_enhancement": True,
        "small_writes_elimination": True,
        "large_writes_elimination": True,
        "cache_partitioning": "static",
    }

    def __init__(self, config: SchemeConfig) -> None:
        super().__init__(config)
        #: Requests per Figure-5 category (workload diagnostics).
        self.category_counts: Dict[Category, int] = {c: 0 for c in Category}

    def _lookup_fingerprint(self, fingerprint: int) -> Tuple[Optional[int], List[VolumeOp]]:
        assert self.index_table is not None
        entry = self.index_table.lookup(fingerprint)
        if entry is not None:
            return entry.pba, []
        # Hot-index miss: treated as unique data.  Tell the cache so
        # iCache's ghost index can measure the opportunity cost.
        self.cache.on_index_miss(fingerprint)
        return None, []

    def _choose_dedupe(
        self, request: IORequest, duplicate_pbas: Sequence[Optional[int]]
    ) -> Set[int]:
        decision = categorize_write(duplicate_pbas, self.config.select_threshold)
        self.category_counts[decision.category] += 1
        if self.obs.level >= TraceLevel.CHUNK:
            self.obs.emit(
                TraceLevel.CHUNK,
                self._obs_now,
                EventType.REQUEST_CLASSIFY,
                req_id=request.req_id,
                **decision.to_fields(request.nblocks),
            )
        return set(decision.dedupe_chunks)

    def stats(self) -> dict:
        out = super().stats()
        for category, count in self.category_counts.items():
            out[f"category_{category.value}_{category.name.lower()}"] = count
        return out
