"""Re-export of the Index table (implementation lives in
:mod:`repro.dedup.index_table` so that the scheme base class can
import it without triggering this package's ``__init__``)."""

from __future__ import annotations

from repro.dedup.index_table import IndexEntry, IndexTable

__all__ = ["IndexEntry", "IndexTable"]
