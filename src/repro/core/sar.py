"""SAR: SSD-Assisted Restore optimisation on top of Select-Dedupe.

The paper's reference [18] (Mao et al., NAS'12) is the authors' own
answer to the read-amplification problem it cites in Section I: park
the *fragmented* deduplicated blocks on an SSD so that reads of
deduplicated data stop paying HDD seeks.  This extension composes that
idea with Select-Dedupe:

* **admission** -- whenever the Request Redirector maps an LBA onto a
  duplicate block *away from its home* (the only case that fragments
  later reads), the referenced block is copied to the SSD staging area
  in the background (the data is in DRAM at that moment, so admission
  costs one SSD write and no HDD traffic);
* **reads** -- translated blocks resident on the SSD are served from
  it (flat latency, no seeks); the remaining blocks coalesce into HDD
  extents as usual;
* **invalidation** -- an SSD copy is dropped when its physical block
  is overwritten or reclaimed; eviction is LRU over the configured
  SSD capacity (clean copies, nothing to write back).

Select-Dedupe already avoids *most* fragmentation by bypassing
scattered partial redundancy; SAR mops up the remainder that
category-1/3 dedup still introduces (visible in
``benchmarks/bench_restore_amplification.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.base import PlannedIO, SchemeConfig
from repro.cache.lru import LRUCache
from repro.constants import BLOCK_SIZE
from repro.core.select_dedupe import SelectDedupe
from repro.errors import ConfigError
from repro.sim.request import IORequest, OpType
from repro.storage.volume import extents_to_ops


class SARDedupe(SelectDedupe):
    """Select-Dedupe + SSD staging of fragmented deduplicated blocks."""

    name = "SAR"
    features = {
        "capacity_saving": True,
        "performance_enhancement": True,
        "small_writes_elimination": True,
        "large_writes_elimination": True,
        "cache_partitioning": "static",
    }

    def __init__(self, config: SchemeConfig) -> None:
        super().__init__(config)
        if config.ssd_bytes <= 0:
            raise ConfigError("SAR needs ssd_bytes > 0 in the scheme config")
        #: SSD residency: PBA -> True, LRU over the SSD capacity.
        self._ssd = LRUCache(config.ssd_bytes, default_entry_size=BLOCK_SIZE)
        self._pending_ssd_writes = 0
        self.ssd_admitted_blocks = 0
        self.ssd_served_blocks = 0

    # ------------------------------------------------------------------
    # admission on the write path
    # ------------------------------------------------------------------

    def _map_dedupe(self, lba: int, target: int) -> None:
        super()._map_dedupe(lba, target)
        if target == self.regions.home_of(lba) or target in self._ssd:
            return
        # A remapped reference: later reads of this LBA will seek to a
        # foreign location unless the block is staged on the SSD.
        self._ssd.put(target, True)
        self._pending_ssd_writes += 1
        self.ssd_admitted_blocks += 1

    def _process_write(self, request: IORequest, now: float) -> PlannedIO:
        self._pending_ssd_writes = 0
        planned = super()._process_write(request, now)
        planned.ssd_write_blocks = self._pending_ssd_writes
        return planned

    # ------------------------------------------------------------------
    # reads: SSD-resident blocks skip the HDDs
    # ------------------------------------------------------------------

    def _process_read(self, request: IORequest, now: float) -> PlannedIO:
        self.reads_total += 1
        self.read_blocks_total += request.nblocks
        pbas = self.map_table.translate_many(request.blocks())
        hdd_missing: List[int] = []
        cache_hits = 0
        ssd_hits = 0
        for pba in pbas:
            if self.cache.read_lookup(pba):
                cache_hits += 1
            elif self._ssd.get(pba) is not None:
                ssd_hits += 1
            else:
                hdd_missing.append(pba)
        self.read_cache_hit_blocks += cache_hits
        self.ssd_served_blocks += ssd_hits
        ops = extents_to_ops(OpType.READ, hdd_missing)
        self.read_extents_issued += len(ops)
        for pba in set(hdd_missing):
            self.cache.read_insert(pba)
        return PlannedIO(
            delay=0.0,
            volume_ops=ops,
            cache_hit_blocks=cache_hits,
            ssd_read_blocks=ssd_hits,
        )

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def _on_physical_write(self, pba: int) -> None:
        self._ssd.remove(pba)

    def _volatile_reset(self) -> None:
        # The SSD itself is non-volatile, but its residency map is
        # DRAM metadata in this design; rebuilding it lazily is safe
        # (copies are clean), so SAR drops it on power failure.
        self._ssd.clear()
        super()._volatile_reset()

    def stats(self) -> dict:
        out = super().stats()
        out["ssd_resident_blocks"] = len(self._ssd)
        out["ssd_admitted_blocks"] = self.ssd_admitted_blocks
        out["ssd_served_blocks"] = self.ssd_served_blocks
        return out
