"""The paper's contribution: Select-Dedupe, iCache, and POD.

* :mod:`repro.core.map_table` -- the Map table: LBA -> PBA indirection
  with m-to-1 reference counting and NVRAM accounting (Section III-B).
* :mod:`repro.core.index_table` -- the Index table: in-memory LRU of
  hot fingerprints with per-entry ``Count`` popularity (Section III-B).
* :mod:`repro.core.categorize` -- the three-way write-request
  categorisation of Figure 5.
* :mod:`repro.core.select_dedupe` -- the request-based selective
  deduplication scheme (Data Deduplicator + Request Redirector).
* :mod:`repro.core.icache` -- the adaptive index/read cache partition
  (Access Monitor + Swap Module, Section III-C).
* :mod:`repro.core.pod` -- POD = Select-Dedupe + iCache.
"""

from __future__ import annotations

from repro.core.map_table import MapTable
from repro.core.index_table import IndexTable, IndexEntry
from repro.core.categorize import Category, CategoryDecision, categorize_write
from repro.core.select_dedupe import SelectDedupe
from repro.core.icache import ICache, ICacheConfig
from repro.core.pod import POD
from repro.core.sar import SARDedupe

__all__ = [
    "SARDedupe",
    "MapTable",
    "IndexTable",
    "IndexEntry",
    "Category",
    "CategoryDecision",
    "categorize_write",
    "SelectDedupe",
    "ICache",
    "ICacheConfig",
    "POD",
]
