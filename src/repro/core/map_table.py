"""Re-export of the Map table (implementation lives in
:mod:`repro.dedup.map_table` so that the scheme base class can import
it without triggering this package's ``__init__``)."""

from __future__ import annotations

from repro.dedup.map_table import MapTable

__all__ = ["MapTable"]
