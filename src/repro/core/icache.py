"""iCache: adaptive partitioning of DRAM between index and read caches.

Section III-C.  A fixed index/read split serves bursty primary
workloads badly: write bursts want a big index cache (more duplicates
detected, more writes eliminated), read bursts want a big read cache
(higher hit ratio).  iCache re-balances the split at run time:

* Each actual cache is shadowed by a **ghost cache** holding only the
  metadata of recently evicted entries; ``actual + ghost`` is bounded
  by the total DRAM size, per the paper.
* The **Access Monitor** counts, per epoch, the hits each ghost cache
  receives.  A ghost hit is an access that *would* have hit had that
  cache been larger, so ``ghost_hits x miss_penalty`` estimates the
  benefit of growing the cache:

  - a ghost *read* hit would have saved one disk read
    (``read_miss_cost`` seconds);
  - a ghost *index* hit would have detected one more duplicate write
    chunk, saving its disk write (``write_saved_cost`` seconds).

* The **Swap Module** moves one ``step`` of capacity from the
  lower-benefit cache to the higher-benefit one and swaps the
  displaced data to a reserved area on the back-end storage; the
  replay harness charges that movement as background disk traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.ghost import GhostCache
from repro.cache.lru import LRUCache
from repro.constants import BLOCK_SIZE, INDEX_ENTRY_SIZE
from repro.errors import CacheError
from repro.obs.events import EventType, TraceLevel
from repro.obs.trace import NULL_RECORDER, TraceRecorder


@dataclass(frozen=True)
class EpochRecord:
    """One row of the iCache epoch timeline (Section III-C, observable).

    Captures the Access Monitor's inputs (ghost hits), the cost-benefit
    values it derived, and the Swap Module's decision -- everything
    needed to replay *why* the partition moved the way it did.
    """

    #: Epoch ordinal (0-based).
    epoch: int
    #: Simulated time of the decision.
    t: float
    #: Partition sizes *after* the decision, bytes.
    index_bytes: int
    read_bytes: int
    #: Ghost hits accumulated over the epoch (the Monitor's counters).
    ghost_index_hits: int
    ghost_read_hits: int
    #: Estimated seconds saved by growing each cache.
    index_benefit: float
    read_benefit: float
    #: ``grow_index`` / ``grow_read`` / ``hold``.
    direction: str
    #: Bytes moved through the reserved swap area (0 when holding).
    swapped_bytes: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "t": self.t,
            "index_bytes": self.index_bytes,
            "read_bytes": self.read_bytes,
            "ghost_index_hits": self.ghost_index_hits,
            "ghost_read_hits": self.ghost_read_hits,
            "index_benefit": self.index_benefit,
            "read_benefit": self.read_benefit,
            "direction": self.direction,
            "swapped_bytes": self.swapped_bytes,
        }


@dataclass
class ICacheConfig:
    """Tunables of the adaptive partition."""

    #: Total DRAM budget, bytes.
    total_bytes: int
    #: Starting index-cache share.
    initial_index_fraction: float = 0.5
    #: Fraction of the budget moved per repartition.
    step_fraction: float = 0.05
    #: Minimum share either cache keeps (avoids starving one side).
    min_fraction: float = 0.10
    #: Estimated seconds saved per avoided read miss (one average
    #: random HDD read: seek + rotation + transfer, ~12 ms).
    read_miss_cost: float = 12e-3
    #: Estimated seconds saved per additional duplicate detected (one
    #: average RAID-5 small write incl. parity RMW, ~15 ms).
    write_saved_cost: float = 15e-3

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise CacheError("negative DRAM budget")
        if not (0.0 <= self.initial_index_fraction <= 1.0):
            raise CacheError("initial index fraction outside [0, 1]")
        if not (0.0 < self.step_fraction <= 0.5):
            raise CacheError("step fraction outside (0, 0.5]")
        if not (0.0 <= self.min_fraction <= 0.5):
            raise CacheError("min fraction outside [0, 0.5]")


class ICache:
    """Adaptive index/read cache with ghost-driven cost-benefit.

    Exposes the same interface as
    :class:`repro.cache.partition.PartitionedCache`, so schemes do not
    care which organisation they were given.
    """

    def __init__(self, config: ICacheConfig) -> None:
        self.config = config
        index_bytes = int(config.total_bytes * config.initial_index_fraction)
        read_bytes = config.total_bytes - index_bytes
        #: Index values stay ``Any`` on purpose: the bare iCache
        #: stores raw PBA ints while an attached IndexTable stores
        #: ``IndexEntry`` records in the same LRU.
        self.index: LRUCache[int, Any] = LRUCache(
            index_bytes, default_entry_size=INDEX_ENTRY_SIZE
        )
        self.read: LRUCache[int, bool] = LRUCache(
            read_bytes, default_entry_size=BLOCK_SIZE
        )
        # actual + ghost bounded by total DRAM (Section III-C).
        self.ghost_index: GhostCache[int] = GhostCache(
            config.total_bytes - index_bytes, default_entry_size=INDEX_ENTRY_SIZE
        )
        self.ghost_read: GhostCache[int] = GhostCache(
            config.total_bytes - read_bytes, default_entry_size=BLOCK_SIZE
        )
        #: (time, index_bytes, read_bytes) after each epoch.
        self.partition_history: List[Tuple[float, int, int]] = []
        #: Full per-epoch decision records (run reports serialise
        #: these as the iCache timeline).
        self.epoch_timeline: List[EpochRecord] = []
        self.repartitions = 0
        self.total_swapped_bytes = 0.0
        #: Attached observability recorder + clock (set by the scheme).
        self.obs: TraceRecorder = NULL_RECORDER
        self._obs_clock: Optional[Callable[[], float]] = None
        #: Swapped-out index entries parked in the reserved area,
        #: keyed by fingerprint (pruned with the ghost index).
        self._index_store: Dict[int, Any] = {}
        #: Set by the owning scheme so swap-in can restore entries
        #: through the IndexTable (keeping its PBA reverse map sound).
        self._index_table: Optional[Any] = None

    def attach_index_table(self, index_table: Any) -> None:
        """Let swap-in restore evicted entries via the Index table."""
        self._index_table = index_table

    def parked_index_entries(self) -> "MappingProxyType[int, Any]":
        """Read-only live view of swap-parked index entries.

        The sanctioned inspection surface for validators: the POD
        sanitizer sums the parked entries' ``Count`` values into its
        conservative Count bookkeeping check (``INV-INDEX-COUNT``).
        """
        return MappingProxyType(self._index_store)

    def attach_observer(
        self, recorder: TraceRecorder, clock: Optional[Callable[[], float]] = None
    ) -> None:
        """Attach a trace recorder (observation only -- never affects
        the partitioning decisions).  ``clock`` supplies simulated time
        for ghost-hit events emitted outside an epoch callback."""
        self.obs = recorder
        self._obs_clock = clock

    # ------------------------------------------------------------------
    # read-cache interface
    # ------------------------------------------------------------------

    def read_lookup(self, key: int) -> bool:
        """Actual-cache lookup; a miss probes the ghost read cache
        (the Access Monitor's signal)."""
        if self.read.get(key) is not None:
            return True
        if self.ghost_read.hit(key) and self.obs.level >= TraceLevel.CHUNK:
            self.obs.emit(
                TraceLevel.CHUNK,
                self._obs_clock() if self._obs_clock is not None else 0.0,
                EventType.CACHE_GHOST_HIT,
                cache="read",
                key=key,
            )
        return False

    def read_insert(self, key: int) -> None:
        for victim_key, _value, size in self.read.put(key, True):
            self.ghost_read.record_eviction(victim_key, size)

    def read_remove(self, key: int) -> bool:
        self.ghost_read.remove(key)
        return self.read.remove(key)

    # ------------------------------------------------------------------
    # index-cache interface (the IndexTable sits on ``self.index``)
    # ------------------------------------------------------------------

    def index_lookup(self, fingerprint: int) -> Optional[Any]:
        return self.index.get(fingerprint)

    def index_insert(self, fingerprint: int, pba: Any) -> None:
        self.index.put(fingerprint, pba)

    def index_remove(self, fingerprint: int) -> bool:
        return self.index.remove(fingerprint)

    def on_index_miss(self, fingerprint: int) -> None:
        """Called by the scheme when the hot index missed: probe the
        ghost index (a hit = one duplicate we failed to detect)."""
        if self.ghost_index.hit(fingerprint) and self.obs.level >= TraceLevel.CHUNK:
            self.obs.emit(
                TraceLevel.CHUNK,
                self._obs_clock() if self._obs_clock is not None else 0.0,
                EventType.CACHE_GHOST_HIT,
                cache="index",
                key=fingerprint,
            )

    def note_index_evictions(self, evicted: Iterable[Tuple[int, Any]]) -> None:
        """Feed IndexTable victims into the ghost index and park their
        data in the reserved swap area for a later swap-in."""
        for fingerprint, entry in evicted:
            self._index_store[fingerprint] = entry
            for dropped in self.ghost_index.record_eviction(fingerprint, INDEX_ENTRY_SIZE):
                self._index_store.pop(dropped, None)

    # ------------------------------------------------------------------
    # the Access Monitor + Swap Module
    # ------------------------------------------------------------------

    def cost_benefit(self) -> Tuple[float, float]:
        """(index_benefit, read_benefit) accumulated this epoch."""
        index_benefit = self.ghost_index.hits * self.config.write_saved_cost
        read_benefit = self.ghost_read.hits * self.config.read_miss_cost
        return index_benefit, read_benefit

    def on_epoch(self, now: float) -> float:
        """Repartition based on this epoch's ghost hits.

        Returns the number of bytes swapped between DRAM and the
        reserved back-end area (0.0 when the split is unchanged); the
        caller turns that into background disk traffic.
        """
        index_benefit, read_benefit = self.cost_benefit()
        ghost_index_hits = self.ghost_index.hits
        ghost_read_hits = self.ghost_read.hits
        swapped = 0.0
        direction = "hold"
        if index_benefit != read_benefit:
            total = self.config.total_bytes
            step = int(total * self.config.step_fraction)
            floor = int(total * self.config.min_fraction)
            if index_benefit > read_benefit:
                new_index = min(total - floor, self.index.capacity_bytes + step)
            else:
                new_index = max(floor, self.index.capacity_bytes - step)
            swapped = float(abs(new_index - self.index.capacity_bytes))
            if swapped:
                direction = (
                    "grow_index" if new_index > self.index.capacity_bytes else "grow_read"
                )
                self._resize(new_index)
                self.repartitions += 1
                self.total_swapped_bytes += swapped
        self.ghost_index.reset_counters()
        self.ghost_read.reset_counters()
        self.partition_history.append(
            (now, self.index.capacity_bytes, self.read.capacity_bytes)
        )
        record = EpochRecord(
            epoch=len(self.epoch_timeline),
            t=now,
            index_bytes=self.index.capacity_bytes,
            read_bytes=self.read.capacity_bytes,
            ghost_index_hits=ghost_index_hits,
            ghost_read_hits=ghost_read_hits,
            index_benefit=index_benefit,
            read_benefit=read_benefit,
            direction=direction,
            swapped_bytes=swapped,
        )
        self.epoch_timeline.append(record)
        if self.obs.level >= TraceLevel.SUMMARY:
            fields = record.as_dict()
            fields.pop("t")  # carried by the event envelope
            self.obs.emit(TraceLevel.SUMMARY, now, EventType.ICACHE_EPOCH, **fields)
        return swapped

    def _resize(self, new_index_bytes: int) -> None:
        total = self.config.total_bytes
        new_read_bytes = total - new_index_bytes
        # Shrink first so victims land in the ghosts, then grow and
        # swap the most recently displaced data of the grown cache
        # back in from the reserved area (Section III-C: "swaps in the
        # actual data of the ghost cache with the larger cost-benefit
        # value into the memory").
        if new_index_bytes < self.index.capacity_bytes:
            if self._index_table is not None:
                evicted = self._index_table.resize(new_index_bytes)
            else:
                evicted = [
                    (fp, entry) for fp, entry, _size in self.index.resize(new_index_bytes)
                ]
            for fp, entry in evicted:
                self._index_store[fp] = entry
                for dropped in self.ghost_index.record_eviction(fp, INDEX_ENTRY_SIZE):
                    self._index_store.pop(dropped, None)
            self.read.resize(new_read_bytes)
            self._swap_in_read()
        else:
            for key, _value, size in self.read.resize(new_read_bytes):
                self.ghost_read.record_eviction(key, size)
            self.index.resize(new_index_bytes)
            self._swap_in_index()
        # Ghost capacities track the complement of their actual cache.
        self.ghost_index.resize(total - new_index_bytes)
        self.ghost_read.resize(total - new_read_bytes)

    def _swap_in_index(self) -> None:
        """Refill grown index space from the ghost index.

        Candidates are ordered by their ``Count`` popularity first and
        eviction recency second -- the Index table keeps Count exactly
        so the hot entries can be told apart (Section III-B).
        """
        candidates = sorted(
            (
                (fp, self._index_store[fp])
                for fp in self.ghost_index.keys_mru()
                if fp in self._index_store
            ),
            key=lambda item: item[1].count,
            reverse=True,
        )
        restored = []
        for fp, entry in candidates:
            if self.index.free_bytes < INDEX_ENTRY_SIZE:
                break
            ok = (
                self._index_table.restore(fp, entry)
                if self._index_table is not None
                else bool(self.index.put(fp, entry) or True)
            )
            if ok:
                restored.append(fp)
        for fp in restored:
            self.ghost_index.remove(fp)
            self._index_store.pop(fp, None)

    def _swap_in_read(self) -> None:
        """Refill grown read space with the most recent ghost blocks."""
        restored = []
        for key in self.ghost_read.keys_mru():
            if self.read.free_bytes < BLOCK_SIZE:
                break
            self.read.put(key, True)
            restored.append(key)
        for key in restored:
            self.ghost_read.remove(key)

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "index_bytes": self.index.capacity_bytes,
            "read_bytes": self.read.capacity_bytes,
            "index_hits": self.index.hits,
            "index_misses": self.index.misses,
            "read_hits": self.read.hits,
            "read_misses": self.read.misses,
            "index_evictions": self.index.evictions,
            "read_evictions": self.read.evictions,
            "ghost_index_hits_epoch": self.ghost_index.hits,
            "ghost_read_hits_epoch": self.ghost_read.hits,
            "ghost_index_hits_total": self.ghost_index.hits_total,
            "ghost_read_hits_total": self.ghost_read.hits_total,
            "repartitions": self.repartitions,
            "total_swapped_bytes": self.total_swapped_bytes,
            "epochs": len(self.epoch_timeline),
        }
