"""Report rendering: normalisation and plain-text tables.

All of the paper's performance figures are *normalized to the Native
system* (Figs. 8-11 captions); :func:`normalize_to` reproduces that
convention, and :func:`render_table` prints the rows the benches emit
so the output of ``pytest benchmarks/`` reads like the paper's
figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigError


def normalize_to(
    values: Mapping[str, float], baseline_key: str, percent: bool = True
) -> Dict[str, float]:
    """Normalise every value to the baseline entry.

    With ``percent=True`` the baseline maps to 100.0 (the paper's
    "Normalized ... (%)" axes); otherwise to 1.0.  A zero baseline is
    a configuration error -- it means the reference run measured
    nothing.
    """
    if baseline_key not in values:
        raise ConfigError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    base = values[baseline_key]
    if base == 0:
        raise ConfigError(f"baseline {baseline_key!r} measured zero")
    scale = 100.0 if percent else 1.0
    return {k: v / base * scale for k, v in values.items()}


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative improvement of *improved* over *baseline*, in percent.

    Positive means better (smaller response time).  This matches the
    paper's phrasing, e.g. "reduces the write response times of the
    Native system by 47.2%".
    """
    if baseline == 0:
        raise ConfigError("cannot compute improvement over a zero baseline")
    return (baseline - improved) / baseline * 100.0


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render a fixed-width text table (benches print these)."""
    cells: List[List[str]] = [[_fmt(c) for c in columns]]
    for row in rows:
        if len(row) != len(columns):
            raise ConfigError(
                f"row has {len(row)} cells but table has {len(columns)} columns"
            )
        cells.append([_fmt(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(columns))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
