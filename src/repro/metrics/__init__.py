"""Measurement and reporting.

* :mod:`repro.metrics.collector` -- per-request response-time
  accounting, streamed into :mod:`repro.obs.registry` histograms
  (the paper's "user response times").
* :mod:`repro.metrics.report` -- normalisation helpers and plain-text
  table rendering for the per-figure benches.
"""

from __future__ import annotations

from repro.metrics.collector import MetricsCollector, ResponseSummary
from repro.metrics.report import normalize_to, render_table
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = [
    "MetricsCollector",
    "ResponseSummary",
    "normalize_to",
    "render_table",
    "Histogram",
    "MetricsRegistry",
]
