"""Measurement and reporting.

* :mod:`repro.metrics.collector` -- per-request response-time samples
  and derived summaries (the paper's "user response times").
* :mod:`repro.metrics.report` -- normalisation helpers and plain-text
  table rendering for the per-figure benches.
"""

from repro.metrics.collector import MetricsCollector, ResponseSummary
from repro.metrics.report import normalize_to, render_table

__all__ = ["MetricsCollector", "ResponseSummary", "normalize_to", "render_table"]
