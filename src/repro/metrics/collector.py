"""Response-time collection.

The paper "replayed the three traces at the block level and evaluated
the user response times" (Section IV-A), reporting the average
response time of all requests, and of reads and writes separately
(Figs. 8, 9).  The collector records one sample per completed request
and summarises with NumPy at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.request import IORequest, OpType


@dataclass(frozen=True)
class ResponseSummary:
    """Summary statistics over one class of requests."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    total_blocks: int

    @staticmethod
    def empty() -> "ResponseSummary":
        return ResponseSummary(0, 0.0, 0.0, 0.0, 0.0, 0)

    @staticmethod
    def of(samples: np.ndarray, total_blocks: int) -> "ResponseSummary":
        if samples.size == 0:
            return ResponseSummary.empty()
        return ResponseSummary(
            count=int(samples.size),
            mean=float(samples.mean()),
            median=float(np.median(samples)),
            p95=float(np.percentile(samples, 95)),
            p99=float(np.percentile(samples, 99)),
            total_blocks=total_blocks,
        )


class MetricsCollector:
    """Accumulates per-request completion records during a replay."""

    def __init__(self) -> None:
        self._read_rt: List[float] = []
        self._write_rt: List[float] = []
        self._read_blocks = 0
        self._write_blocks = 0
        self.read_cache_hit_blocks = 0
        self.writes_eliminated = 0
        self.first_arrival: Optional[float] = None
        self.last_completion: float = 0.0

    # ------------------------------------------------------------------

    def record(
        self,
        request: IORequest,
        arrival: float,
        completion: float,
        eliminated: bool = False,
        cache_hit_blocks: int = 0,
    ) -> None:
        """Record one completed request."""
        if completion < arrival:
            raise SimulationError(
                f"request {request.req_id} completed at {completion} "
                f"before its arrival at {arrival}"
            )
        response = completion - arrival
        if request.op is OpType.READ:
            self._read_rt.append(response)
            self._read_blocks += request.nblocks
        else:
            self._write_rt.append(response)
            self._write_blocks += request.nblocks
        if eliminated:
            self.writes_eliminated += 1
        self.read_cache_hit_blocks += cache_hit_blocks
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        if completion > self.last_completion:
            self.last_completion = completion

    # ------------------------------------------------------------------

    @property
    def requests(self) -> int:
        return len(self._read_rt) + len(self._write_rt)

    def read_summary(self) -> ResponseSummary:
        return ResponseSummary.of(np.asarray(self._read_rt), self._read_blocks)

    def write_summary(self) -> ResponseSummary:
        return ResponseSummary.of(np.asarray(self._write_rt), self._write_blocks)

    def overall_summary(self) -> ResponseSummary:
        samples = np.asarray(self._read_rt + self._write_rt)
        return ResponseSummary.of(samples, self._read_blocks + self._write_blocks)

    def as_dict(self) -> Dict[str, float]:
        """Flat summary used by benches and EXPERIMENTS.md."""
        overall = self.overall_summary()
        read = self.read_summary()
        write = self.write_summary()
        return {
            "requests": overall.count,
            "mean_response": overall.mean,
            "median_response": overall.median,
            "p95_response": overall.p95,
            "read_requests": read.count,
            "read_mean_response": read.mean,
            "write_requests": write.count,
            "write_mean_response": write.mean,
            "writes_eliminated": self.writes_eliminated,
            "read_cache_hit_blocks": self.read_cache_hit_blocks,
            "makespan": (
                self.last_completion - self.first_arrival
                if self.first_arrival is not None
                else 0.0
            ),
        }
