"""Response-time collection.

The paper "replayed the three traces at the block level and evaluated
the user response times" (Section IV-A), reporting the average
response time of all requests, and of reads and writes separately
(Figs. 8, 9).

The collector is built on :mod:`repro.obs.registry`: per-request
samples stream into fixed-bucket latency histograms (p50/p95/p99/p999
without storing every sample) and named counters, so memory stays
O(buckets) on production-size replays and two collectors' registries
can be merged for sharded runs.  :class:`ResponseSummary` keeps its
historical API; callers that need exact per-request samples use
:class:`repro.metrics.analysis.DetailedCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.registry import Histogram, MetricsRegistry
from repro.sim.request import IORequest, OpType


@dataclass(frozen=True)
class ResponseSummary:
    """Summary statistics over one class of requests."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    total_blocks: int
    #: Tail percentile (added with the observability layer; defaults
    #: keep older positional constructions working).
    p999: float = 0.0

    @staticmethod
    def empty() -> "ResponseSummary":
        return ResponseSummary(0, 0.0, 0.0, 0.0, 0.0, 0)

    @staticmethod
    def of(samples: np.ndarray, total_blocks: int) -> "ResponseSummary":
        """Exact summary from raw samples (analysis helpers use this)."""
        if samples.size == 0:
            return ResponseSummary.empty()
        return ResponseSummary(
            count=int(samples.size),
            mean=float(samples.mean()),
            median=float(np.median(samples)),
            p95=float(np.percentile(samples, 95)),
            p99=float(np.percentile(samples, 99)),
            total_blocks=total_blocks,
            p999=float(np.percentile(samples, 99.9)),
        )

    @staticmethod
    def of_histogram(hist: Histogram, total_blocks: int) -> "ResponseSummary":
        """Streaming summary from a fixed-bucket histogram."""
        if hist.count == 0:
            return ResponseSummary.empty()
        return ResponseSummary(
            count=hist.count,
            mean=hist.mean,
            median=hist.p50,
            p95=hist.p95,
            p99=hist.p99,
            total_blocks=total_blocks,
            p999=hist.p999,
        )


class MetricsCollector:
    """Accumulates per-request completion records during a replay.

    All state lives in a :class:`~repro.obs.registry.MetricsRegistry`
    (exposed as :attr:`registry`), which the run report serialises
    directly.
    """

    #: Histogram series names (one per request class).
    HIST_READ = "response.read"
    HIST_WRITE = "response.write"

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._read_hist = self.registry.histogram(self.HIST_READ)
        self._write_hist = self.registry.histogram(self.HIST_WRITE)
        self._read_blocks = self.registry.counter("read.blocks")
        self._write_blocks = self.registry.counter("write.blocks")
        self._cache_hit_blocks = self.registry.counter("read.cache_hit_blocks")
        self._elim_requests = self.registry.counter("write.eliminated_requests")
        self._elim_blocks = self.registry.counter("write.eliminated_blocks")
        self.first_arrival: Optional[float] = None
        self.last_completion: float = 0.0

    # ------------------------------------------------------------------

    def record(
        self,
        request: IORequest,
        arrival: float,
        completion: float,
        eliminated: bool = False,
        cache_hit_blocks: int = 0,
        deduped_blocks: int = 0,
    ) -> None:
        """Record one completed request.

        ``eliminated`` marks a write request that was *fully*
        deduplicated (no data op reached the disks); ``deduped_blocks``
        counts the individual 4 KB blocks whose write was eliminated,
        which also accrues from partially deduplicated requests -- the
        two are distinct metrics (requests vs blocks) and are reported
        separately.
        """
        if completion < arrival:
            raise SimulationError(
                f"request {request.req_id} completed at {completion} "
                f"before its arrival at {arrival}"
            )
        response = completion - arrival
        if request.op is OpType.READ:
            self._read_hist.observe(response)
            self._read_blocks.inc(request.nblocks)
        else:
            self._write_hist.observe(response)
            self._write_blocks.inc(request.nblocks)
        if eliminated:
            self._elim_requests.inc()
        if deduped_blocks:
            self._elim_blocks.inc(deduped_blocks)
        if cache_hit_blocks:
            self._cache_hit_blocks.inc(cache_hit_blocks)
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        if completion > self.last_completion:
            self.last_completion = completion

    # ------------------------------------------------------------------

    @property
    def requests(self) -> int:
        return self._read_hist.count + self._write_hist.count

    @property
    def writes_eliminated_requests(self) -> int:
        """Write *requests* fully removed (the Fig. 11 numerator)."""
        return self._elim_requests.value

    @property
    def writes_eliminated_blocks(self) -> int:
        """Individual write *blocks* eliminated by deduplication."""
        return self._elim_blocks.value

    @property
    def writes_eliminated(self) -> int:
        """Back-compat alias for :attr:`writes_eliminated_requests`."""
        return self._elim_requests.value

    @property
    def read_cache_hit_blocks(self) -> int:
        return self._cache_hit_blocks.value

    def read_summary(self) -> ResponseSummary:
        return ResponseSummary.of_histogram(self._read_hist, self._read_blocks.value)

    def write_summary(self) -> ResponseSummary:
        return ResponseSummary.of_histogram(self._write_hist, self._write_blocks.value)

    def overall_summary(self) -> ResponseSummary:
        merged = self._read_hist.merge(self._write_hist)
        return ResponseSummary.of_histogram(
            merged, self._read_blocks.value + self._write_blocks.value
        )

    def histograms(self) -> Dict[str, Histogram]:
        """Named histograms, including the derived overall series."""
        return {
            "overall": self._read_hist.merge(self._write_hist),
            "read": self._read_hist,
            "write": self._write_hist,
        }

    def as_dict(self) -> Dict[str, float]:
        """Flat summary used by benches, reports and EXPERIMENTS.md."""
        overall = self.overall_summary()
        read = self.read_summary()
        write = self.write_summary()
        return {
            "requests": overall.count,
            "mean_response": overall.mean,
            "median_response": overall.median,
            "p95_response": overall.p95,
            "p99_response": overall.p99,
            "p999_response": overall.p999,
            "read_requests": read.count,
            "read_mean_response": read.mean,
            "write_requests": write.count,
            "write_mean_response": write.mean,
            "writes_eliminated": self.writes_eliminated_requests,
            "writes_eliminated_requests": self.writes_eliminated_requests,
            "writes_eliminated_blocks": self.writes_eliminated_blocks,
            "read_cache_hit_blocks": self.read_cache_hit_blocks,
            "makespan": (
                self.last_completion - self.first_arrival
                if self.first_arrival is not None
                else 0.0
            ),
        }
