"""Response-time collection.

The paper "replayed the three traces at the block level and evaluated
the user response times" (Section IV-A), reporting the average
response time of all requests, and of reads and writes separately
(Figs. 8, 9).

The collector is built on :mod:`repro.obs.registry`: per-request
samples stream into fixed-bucket latency histograms (p50/p95/p99/p999
without storing every sample) and named counters, so memory stays
O(buckets) on production-size replays and two collectors' registries
can be merged for sharded runs.  :class:`ResponseSummary` keeps its
historical API; callers that need exact per-request samples use
:class:`repro.metrics.analysis.DetailedCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.registry import Histogram, MetricsRegistry
from repro.sim.request import IORequest, OpType


@dataclass(frozen=True)
class ResponseSummary:
    """Summary statistics over one class of requests."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    total_blocks: int
    #: Tail percentile (added with the observability layer; defaults
    #: keep older positional constructions working).
    p999: float = 0.0

    @staticmethod
    def empty() -> "ResponseSummary":
        return ResponseSummary(0, 0.0, 0.0, 0.0, 0.0, 0)

    @staticmethod
    def of(samples: np.ndarray, total_blocks: int) -> "ResponseSummary":
        """Exact summary from raw samples (analysis helpers use this)."""
        if samples.size == 0:
            return ResponseSummary.empty()
        return ResponseSummary(
            count=int(samples.size),
            mean=float(samples.mean()),
            median=float(np.median(samples)),
            p95=float(np.percentile(samples, 95)),
            p99=float(np.percentile(samples, 99)),
            total_blocks=total_blocks,
            p999=float(np.percentile(samples, 99.9)),
        )

    @staticmethod
    def of_histogram(hist: Histogram, total_blocks: int) -> "ResponseSummary":
        """Streaming summary from a fixed-bucket histogram."""
        if hist.count == 0:
            return ResponseSummary.empty()
        return ResponseSummary(
            count=hist.count,
            mean=hist.mean,
            median=hist.p50,
            p95=hist.p95,
            p99=hist.p99,
            total_blocks=total_blocks,
            p999=hist.p999,
        )


class _VolumeSeries:
    """Per-volume metric series (created lazily by the collector).

    Multi-volume replays merge every tenant stream onto one shared
    dedup domain, so the headline numbers alone cannot answer "which
    tenant is slow?" or "whose writes were eliminated?".  One
    ``_VolumeSeries`` accumulates the same response-time histograms
    and elimination counters as the collector itself, scoped to one
    :attr:`~repro.sim.request.IORequest.volume_id`, plus the
    cross-volume vs intra-volume split of deduplicated blocks.
    """

    __slots__ = (
        "read_hist",
        "write_hist",
        "read_blocks",
        "write_blocks",
        "cache_hit_blocks",
        "eliminated_requests",
        "deduped_blocks",
        "cross_volume_deduped_blocks",
    )

    def __init__(self, registry: MetricsRegistry, volume_id: int) -> None:
        prefix = f"volume.{volume_id}"
        self.read_hist = registry.histogram(f"{prefix}.response.read")
        self.write_hist = registry.histogram(f"{prefix}.response.write")
        self.read_blocks = registry.counter(f"{prefix}.read.blocks")
        self.write_blocks = registry.counter(f"{prefix}.write.blocks")
        self.cache_hit_blocks = registry.counter(f"{prefix}.read.cache_hit_blocks")
        self.eliminated_requests = registry.counter(
            f"{prefix}.write.eliminated_requests"
        )
        self.deduped_blocks = registry.counter(f"{prefix}.write.eliminated_blocks")
        self.cross_volume_deduped_blocks = registry.counter(
            f"{prefix}.write.cross_volume_deduped_blocks"
        )


class _NodeSeries:
    """Per-node metric series (created lazily by the collector).

    Cluster replays run N complete POD nodes against one clock; the
    headline numbers alone cannot answer "which node is hot?" or "how
    much response time did the network add?".  One ``_NodeSeries``
    accumulates the same response-time histograms and elimination
    counters as the collector itself, scoped to one cluster node, plus
    the network-cost series (per-request added delay, remote
    fingerprint lookups, remotely-detected duplicate blocks).
    """

    __slots__ = (
        "read_hist",
        "write_hist",
        "net_delay_hist",
        "read_blocks",
        "write_blocks",
        "cache_hit_blocks",
        "eliminated_requests",
        "deduped_blocks",
        "remote_lookups",
        "remote_duplicate_blocks",
    )

    def __init__(self, registry: MetricsRegistry, node_id: int) -> None:
        prefix = f"node.{node_id}"
        self.read_hist = registry.histogram(f"{prefix}.response.read")
        self.write_hist = registry.histogram(f"{prefix}.response.write")
        self.net_delay_hist = registry.histogram(f"{prefix}.net.delay")
        self.read_blocks = registry.counter(f"{prefix}.read.blocks")
        self.write_blocks = registry.counter(f"{prefix}.write.blocks")
        self.cache_hit_blocks = registry.counter(f"{prefix}.read.cache_hit_blocks")
        self.eliminated_requests = registry.counter(
            f"{prefix}.write.eliminated_requests"
        )
        self.deduped_blocks = registry.counter(f"{prefix}.write.eliminated_blocks")
        self.remote_lookups = registry.counter(f"{prefix}.net.remote_lookups")
        self.remote_duplicate_blocks = registry.counter(
            f"{prefix}.net.remote_duplicate_blocks"
        )


class MetricsCollector:
    """Accumulates per-request completion records during a replay.

    All state lives in a :class:`~repro.obs.registry.MetricsRegistry`
    (exposed as :attr:`registry`), which the run report serialises
    directly.

    Per-volume breakdowns are opt-in via :meth:`track_volumes` (the
    multi-volume replay driver enables them); single-volume replays
    skip the per-record bookkeeping entirely so the classic path's
    cost and results are untouched.
    """

    #: Histogram series names (one per request class).
    HIST_READ = "response.read"
    HIST_WRITE = "response.write"

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._read_hist = self.registry.histogram(self.HIST_READ)
        self._write_hist = self.registry.histogram(self.HIST_WRITE)
        self._read_blocks = self.registry.counter("read.blocks")
        self._write_blocks = self.registry.counter("write.blocks")
        self._cache_hit_blocks = self.registry.counter("read.cache_hit_blocks")
        self._elim_requests = self.registry.counter("write.eliminated_requests")
        self._elim_blocks = self.registry.counter("write.eliminated_blocks")
        self.first_arrival: Optional[float] = None
        self.last_completion: float = 0.0
        #: volume_id -> per-volume series (None until track_volumes()).
        self._volumes: Optional[Dict[int, _VolumeSeries]] = None
        #: node_id -> per-node series (None until track_nodes()).
        self._nodes: Optional[Dict[int, _NodeSeries]] = None
        #: Attached windowed sampler (None unless --timeline).  Fed
        #: from record()/record_node() so the timeline's window sums
        #: reconcile with the whole-run aggregates *by construction*.
        self._timeline = None

    def attach_timeline(self, sampler) -> None:
        """Mirror every recorded completion into ``sampler``
        (a :class:`repro.obs.timeline.TimelineSampler`)."""
        self._timeline = sampler

    # ------------------------------------------------------------------
    # per-volume tracking
    # ------------------------------------------------------------------

    def track_volumes(self) -> None:
        """Enable per-volume breakdowns (multi-volume replays)."""
        if self._volumes is None:
            self._volumes = {}

    @property
    def tracks_volumes(self) -> bool:
        return self._volumes is not None

    def _volume_series(self, volume_id: int) -> _VolumeSeries:
        assert self._volumes is not None
        series = self._volumes.get(volume_id)
        if series is None:
            series = _VolumeSeries(self.registry, volume_id)
            self._volumes[volume_id] = series
        return series

    # ------------------------------------------------------------------

    def record(
        self,
        request: IORequest,
        arrival: float,
        completion: float,
        eliminated: bool = False,
        cache_hit_blocks: int = 0,
        deduped_blocks: int = 0,
        cross_volume_blocks: int = 0,
    ) -> None:
        """Record one completed request.

        ``eliminated`` marks a write request that was *fully*
        deduplicated (no data op reached the disks); ``deduped_blocks``
        counts the individual 4 KB blocks whose write was eliminated,
        which also accrues from partially deduplicated requests -- the
        two are distinct metrics (requests vs blocks) and are reported
        separately.  ``cross_volume_blocks`` is the subset of
        ``deduped_blocks`` whose duplicate content was first written by
        a *different* volume (always 0 on single-volume replays).
        """
        if completion < arrival:
            raise SimulationError(
                f"request {request.req_id} completed at {completion} "
                f"before its arrival at {arrival}"
            )
        response = completion - arrival
        if request.op is OpType.READ:
            self._read_hist.observe(response)
            self._read_blocks.inc(request.nblocks)
        else:
            self._write_hist.observe(response)
            self._write_blocks.inc(request.nblocks)
        if eliminated:
            self._elim_requests.inc()
        if deduped_blocks:
            self._elim_blocks.inc(deduped_blocks)
        if cache_hit_blocks:
            self._cache_hit_blocks.inc(cache_hit_blocks)
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        if completion > self.last_completion:
            self.last_completion = completion
        if self._volumes is not None:
            series = self._volume_series(request.volume_id)
            if request.op is OpType.READ:
                series.read_hist.observe(response)
                series.read_blocks.inc(request.nblocks)
            else:
                series.write_hist.observe(response)
                series.write_blocks.inc(request.nblocks)
            if eliminated:
                series.eliminated_requests.inc()
            if deduped_blocks:
                series.deduped_blocks.inc(deduped_blocks)
            if cross_volume_blocks:
                series.cross_volume_deduped_blocks.inc(cross_volume_blocks)
            if cache_hit_blocks:
                series.cache_hit_blocks.inc(cache_hit_blocks)
        if self._timeline is not None:
            self._timeline.note_request(
                completion,
                is_read=request.op is OpType.READ,
                nblocks=request.nblocks,
                response=response,
                volume_id=(request.volume_id if self._volumes is not None else -1),
                eliminated=eliminated,
                deduped_blocks=deduped_blocks,
                cache_hit_blocks=cache_hit_blocks,
                cross_volume_blocks=cross_volume_blocks,
            )

    # ------------------------------------------------------------------
    # per-node tracking (cluster replays)
    # ------------------------------------------------------------------

    def track_nodes(self) -> None:
        """Enable per-node breakdowns (multi-node cluster replays)."""
        if self._nodes is None:
            self._nodes = {}

    @property
    def tracks_nodes(self) -> bool:
        return self._nodes is not None

    def _node_series(self, node_id: int) -> _NodeSeries:
        assert self._nodes is not None
        series = self._nodes.get(node_id)
        if series is None:
            series = _NodeSeries(self.registry, node_id)
            self._nodes[node_id] = series
        return series

    def record_node(
        self,
        request: IORequest,
        node_id: int,
        arrival: float,
        completion: float,
        eliminated: bool = False,
        cache_hit_blocks: int = 0,
        deduped_blocks: int = 0,
        net_delay: float = 0.0,
        remote_lookups: int = 0,
        remote_duplicate_blocks: int = 0,
    ) -> None:
        """Record one completed request against its owner node.

        Called by the cluster replay *in addition to* :meth:`record`
        (the global series stay the single source of cluster totals;
        per-node series are the breakdown).  ``net_delay`` is the
        response-time contribution of remote fingerprint lookups.
        """
        if self._nodes is None:
            raise SimulationError("record_node without track_nodes()")
        if completion < arrival:
            raise SimulationError(
                f"request {request.req_id} completed at {completion} "
                f"before its arrival at {arrival}"
            )
        series = self._node_series(node_id)
        response = completion - arrival
        if request.op is OpType.READ:
            series.read_hist.observe(response)
            series.read_blocks.inc(request.nblocks)
        else:
            series.write_hist.observe(response)
            series.write_blocks.inc(request.nblocks)
        if eliminated:
            series.eliminated_requests.inc()
        if deduped_blocks:
            series.deduped_blocks.inc(deduped_blocks)
        if cache_hit_blocks:
            series.cache_hit_blocks.inc(cache_hit_blocks)
        if net_delay > 0.0:
            series.net_delay_hist.observe(net_delay)
        if remote_lookups:
            series.remote_lookups.inc(remote_lookups)
        if remote_duplicate_blocks:
            series.remote_duplicate_blocks.inc(remote_duplicate_blocks)
        if self._timeline is not None:
            self._timeline.note_node_request(
                completion,
                node_id=node_id,
                is_read=request.op is OpType.READ,
                nblocks=request.nblocks,
                response=response,
                eliminated=eliminated,
                deduped_blocks=deduped_blocks,
                cache_hit_blocks=cache_hit_blocks,
                net_delay=net_delay,
                remote_lookups=remote_lookups,
            )

    def node_ids(self) -> list:
        """Node ids with recorded traffic (empty unless tracking)."""
        if self._nodes is None:
            return []
        return sorted(self._nodes)

    def _require_node(self, node_id: int) -> _NodeSeries:
        if self._nodes is None or node_id not in self._nodes:
            raise SimulationError(f"no per-node metrics for node {node_id}")
        return self._nodes[node_id]

    def node_as_dict(self, node_id: int) -> Dict[str, float]:
        """Flat per-node summary (one row of the run report)."""
        series = self._require_node(node_id)
        read = ResponseSummary.of_histogram(
            series.read_hist, series.read_blocks.value
        )
        write = ResponseSummary.of_histogram(
            series.write_hist, series.write_blocks.value
        )
        merged = series.read_hist.merge(series.write_hist)
        overall = ResponseSummary.of_histogram(
            merged, series.read_blocks.value + series.write_blocks.value
        )
        return {
            "node_id": node_id,
            "requests": overall.count,
            "mean_response": overall.mean,
            "p95_response": overall.p95,
            "p99_response": overall.p99,
            "read_requests": read.count,
            "read_mean_response": read.mean,
            "read_blocks": series.read_blocks.value,
            "write_requests": write.count,
            "write_mean_response": write.mean,
            "write_blocks": series.write_blocks.value,
            "writes_eliminated_requests": series.eliminated_requests.value,
            "writes_eliminated_blocks": series.deduped_blocks.value,
            "read_cache_hit_blocks": series.cache_hit_blocks.value,
            "net_delay_requests": series.net_delay_hist.count,
            "net_delay_mean": series.net_delay_hist.mean,
            "net_delay_p99": series.net_delay_hist.p99,
            "remote_lookups": series.remote_lookups.value,
            "remote_duplicate_blocks": series.remote_duplicate_blocks.value,
        }

    def nodes_as_dict(self) -> list:
        """Per-node summaries for every tracked node, id-ordered."""
        return [self.node_as_dict(nid) for nid in self.node_ids()]

    # ------------------------------------------------------------------

    @property
    def requests(self) -> int:
        return self._read_hist.count + self._write_hist.count

    @property
    def writes_eliminated_requests(self) -> int:
        """Write *requests* fully removed (the Fig. 11 numerator)."""
        return self._elim_requests.value

    @property
    def writes_eliminated_blocks(self) -> int:
        """Individual write *blocks* eliminated by deduplication."""
        return self._elim_blocks.value

    @property
    def writes_eliminated(self) -> int:
        """Back-compat alias for :attr:`writes_eliminated_requests`."""
        return self._elim_requests.value

    @property
    def read_cache_hit_blocks(self) -> int:
        return self._cache_hit_blocks.value

    def read_summary(self) -> ResponseSummary:
        return ResponseSummary.of_histogram(self._read_hist, self._read_blocks.value)

    def write_summary(self) -> ResponseSummary:
        return ResponseSummary.of_histogram(self._write_hist, self._write_blocks.value)

    def overall_summary(self) -> ResponseSummary:
        merged = self._read_hist.merge(self._write_hist)
        return ResponseSummary.of_histogram(
            merged, self._read_blocks.value + self._write_blocks.value
        )

    def histograms(self) -> Dict[str, Histogram]:
        """Named histograms, including the derived overall series."""
        return {
            "overall": self._read_hist.merge(self._write_hist),
            "read": self._read_hist,
            "write": self._write_hist,
        }

    # ------------------------------------------------------------------
    # per-volume summaries
    # ------------------------------------------------------------------

    def volume_ids(self) -> list:
        """Volume ids with recorded traffic (empty unless tracking)."""
        if self._volumes is None:
            return []
        return sorted(self._volumes)

    def volume_read_summary(self, volume_id: int) -> ResponseSummary:
        series = self._require_volume(volume_id)
        return ResponseSummary.of_histogram(series.read_hist, series.read_blocks.value)

    def volume_write_summary(self, volume_id: int) -> ResponseSummary:
        series = self._require_volume(volume_id)
        return ResponseSummary.of_histogram(series.write_hist, series.write_blocks.value)

    def volume_overall_summary(self, volume_id: int) -> ResponseSummary:
        series = self._require_volume(volume_id)
        merged = series.read_hist.merge(series.write_hist)
        return ResponseSummary.of_histogram(
            merged, series.read_blocks.value + series.write_blocks.value
        )

    def _require_volume(self, volume_id: int) -> _VolumeSeries:
        if self._volumes is None or volume_id not in self._volumes:
            raise SimulationError(f"no per-volume metrics for volume {volume_id}")
        return self._volumes[volume_id]

    def volume_as_dict(self, volume_id: int) -> Dict[str, float]:
        """Flat per-volume summary (one row of the run report)."""
        series = self._require_volume(volume_id)
        overall = self.volume_overall_summary(volume_id)
        read = self.volume_read_summary(volume_id)
        write = self.volume_write_summary(volume_id)
        deduped = series.deduped_blocks.value
        cross = series.cross_volume_deduped_blocks.value
        return {
            "volume_id": volume_id,
            "requests": overall.count,
            "mean_response": overall.mean,
            "p95_response": overall.p95,
            "read_requests": read.count,
            "read_mean_response": read.mean,
            "write_requests": write.count,
            "write_mean_response": write.mean,
            "writes_eliminated_requests": series.eliminated_requests.value,
            "writes_eliminated_blocks": deduped,
            "cross_volume_deduped_blocks": cross,
            "intra_volume_deduped_blocks": deduped - cross,
            "read_cache_hit_blocks": series.cache_hit_blocks.value,
        }

    def volumes_as_dict(self) -> list:
        """Per-volume summaries for every tracked volume, id-ordered."""
        return [self.volume_as_dict(vid) for vid in self.volume_ids()]

    def as_dict(self) -> Dict[str, float]:
        """Flat summary used by benches, reports and EXPERIMENTS.md."""
        overall = self.overall_summary()
        read = self.read_summary()
        write = self.write_summary()
        return {
            "requests": overall.count,
            "mean_response": overall.mean,
            "median_response": overall.median,
            "p95_response": overall.p95,
            "p99_response": overall.p99,
            "p999_response": overall.p999,
            "read_requests": read.count,
            "read_mean_response": read.mean,
            "write_requests": write.count,
            "write_mean_response": write.mean,
            "writes_eliminated": self.writes_eliminated_requests,
            "writes_eliminated_requests": self.writes_eliminated_requests,
            "writes_eliminated_blocks": self.writes_eliminated_blocks,
            "read_cache_hit_blocks": self.read_cache_hit_blocks,
            "makespan": (
                self.last_completion - self.first_arrival
                if self.first_arrival is not None
                else 0.0
            ),
        }
