"""Deeper result analysis: latency breakdowns and time series.

The paper's discussion reasons about *why* schemes behave as they do
(queue relief, read amplification, small-write elimination).  These
helpers extract the supporting evidence from a replay:

* :func:`latency_by_size` -- mean response time per request-size
  bucket (shows the small-write effect directly);
* :func:`latency_timeseries` -- windowed mean response over simulated
  time (shows burst-driven queueing and iCache's phase adaptation);
* :func:`slowdown_profile` -- per-request response divided by its
  no-queue service estimate, summarised (a queue-pressure measure).

They consume a :class:`DetailedCollector`, a drop-in extension of
:class:`~repro.metrics.collector.MetricsCollector` that additionally
keeps per-request records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector
from repro.sim.request import IORequest, OpType
from repro.traces.stats import SIZE_BUCKETS_KB, _bucket_kb


@dataclass(frozen=True)
class RequestSample:
    """One completed request, fully described."""

    req_id: int
    op: OpType
    nblocks: int
    arrival: float
    completion: float
    #: Issuing volume (0 on single-volume replays).
    volume_id: int = 0

    @property
    def response(self) -> float:
        return self.completion - self.arrival


class DetailedCollector(MetricsCollector):
    """A MetricsCollector that also retains per-request samples."""

    def __init__(self) -> None:
        super().__init__()
        self.samples: List[RequestSample] = []

    def record(
        self,
        request: IORequest,
        arrival: float,
        completion: float,
        eliminated: bool = False,
        cache_hit_blocks: int = 0,
        deduped_blocks: int = 0,
        cross_volume_blocks: int = 0,
    ) -> None:
        super().record(
            request,
            arrival,
            completion,
            eliminated,
            cache_hit_blocks,
            deduped_blocks,
            cross_volume_blocks,
        )
        self.samples.append(
            RequestSample(
                req_id=request.req_id,
                op=request.op,
                nblocks=request.nblocks,
                arrival=arrival,
                completion=completion,
                volume_id=request.volume_id,
            )
        )


def latency_by_size(
    collector: DetailedCollector, op: Optional[OpType] = None
) -> Dict[int, Tuple[int, float]]:
    """Mean response per Fig.-1 size bucket: ``{kb: (count, mean_s)}``.

    Buckets with no samples are omitted.
    """
    grouped: Dict[int, List[float]] = {}
    for s in collector.samples:
        if op is not None and s.op is not op:
            continue
        grouped.setdefault(_bucket_kb(s.nblocks), []).append(s.response)
    return {
        kb: (len(vals), float(np.mean(vals)))
        for kb, vals in sorted(grouped.items())
    }


def latency_timeseries(
    collector: DetailedCollector, window: float = 5.0
) -> List[Tuple[float, int, float]]:
    """Windowed response means: ``(window_start, count, mean_s)`` rows."""
    if window <= 0:
        raise SimulationError("window must be positive")
    if not collector.samples:
        return []
    rows: List[Tuple[float, int, float]] = []
    ordered = sorted(collector.samples, key=lambda s: s.arrival)
    start = ordered[0].arrival - (ordered[0].arrival % window)
    bucket: List[float] = []
    for s in ordered:
        while s.arrival >= start + window:
            if bucket:
                rows.append((start, len(bucket), float(np.mean(bucket))))
                bucket = []
            start += window
        bucket.append(s.response)
    if bucket:
        rows.append((start, len(bucket), float(np.mean(bucket))))
    return rows


@dataclass(frozen=True)
class SlowdownSummary:
    """Queue-pressure summary: response / no-queue service estimate."""

    mean: float
    median: float
    p95: float


def slowdown_profile(
    collector: DetailedCollector, service_estimate: float = 10e-3
) -> SlowdownSummary:
    """Summarise per-request slowdowns against a flat service estimate.

    ``service_estimate`` stands in for the no-queue response of an
    average request (one mechanical access).  Values near 1 mean the
    system ran unqueued; large values mean deep queues.
    """
    if service_estimate <= 0:
        raise SimulationError("service estimate must be positive")
    slowdowns = np.array(
        [max(s.response, 0.0) / service_estimate for s in collector.samples]
    )
    if slowdowns.size == 0:
        return SlowdownSummary(0.0, 0.0, 0.0)
    return SlowdownSummary(
        mean=float(slowdowns.mean()),
        median=float(np.median(slowdowns)),
        p95=float(np.percentile(slowdowns, 95)),
    )
