"""Per-tenant token-bucket admission with maintenance back-off.

Foreground QoS half of the jobs subsystem (the HPDedup motivation:
tenant streams competing for inline-dedup capacity need principled
admission rather than first-come starvation).  Each volume owns a
token bucket denominated in blocks; a request that finds its bucket
dry is *delayed*, not dropped -- buckets may borrow below zero, which
gives FIFO admission per tenant with O(1) state and no queues.

Graceful degradation is explicit: maintenance jobs yield first.
While any tenant carries admission debt (some bucket's refill horizon
lies in the future), job steps defer up to ``maintenance_yield``
seconds before issuing physical work, so background traffic drains
out of the way of paying tenants before the scheduler ever has to
arbitrate at the spindles.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.jobs.plan import AdmissionSpec


class TokenBucket:
    """Deterministic token bucket with borrowing (virtual-time form)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = 0.0

    def reserve(self, now: float, n: float) -> float:
        """Consume ``n`` tokens; return the admission time (>= now)."""
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.stamp = now
        self.tokens -= n
        if self.tokens >= 0:
            return now
        return now + (-self.tokens) / self.rate


class AdmissionController:
    """One bucket per tenant; tracks foreground pressure for jobs."""

    def __init__(self, spec: AdmissionSpec) -> None:
        self.spec = spec
        self._buckets: Dict[int, TokenBucket] = {}
        #: Latest refill horizon across tenants; while it lies in the
        #: future, some tenant is throttled and maintenance yields.
        self._pressure_until = 0.0
        self.requests_admitted = 0
        self.requests_throttled = 0
        self.throttle_delay_total = 0.0

    def admit(self, volume_id: int, now: float, blocks: int) -> float:
        """Reserve capacity for a foreground request; return the time
        it may proceed (``now`` when tokens are available)."""
        bucket = self._buckets.get(volume_id)
        if bucket is None:
            bucket = TokenBucket(self.spec.rate_blocks, self.spec.burst_blocks)
            self._buckets[volume_id] = bucket
        admit_at = bucket.reserve(now, float(blocks))
        if admit_at > now:
            self.requests_throttled += 1
            self.throttle_delay_total += admit_at - now
            if admit_at > self._pressure_until:
                self._pressure_until = admit_at
        else:
            self.requests_admitted += 1
        return admit_at

    def maintenance_delay(self, now: float) -> float:
        """How long a job step should defer to yield to foreground
        traffic (0.0 when no tenant is throttled)."""
        if self._pressure_until > now:
            wait = self._pressure_until - now
            if wait > self.spec.maintenance_yield:
                wait = self.spec.maintenance_yield
            return wait
        return 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "rate_blocks": self.spec.rate_blocks,
            "burst_blocks": self.spec.burst_blocks,
            "maintenance_yield": self.spec.maintenance_yield,
            "tenants": len(self._buckets),
            "requests_admitted": self.requests_admitted,
            "requests_throttled": self.requests_throttled,
            "throttle_delay_total": self.throttle_delay_total,
        }
