"""Control plane: job records with epoch-fenced leases.

The :class:`JobStore` is deliberately tiny and *pure* -- it never
touches the simulator, so the hypothesis property suite can drive the
lease state machine directly with arbitrary interleavings of claims,
renewals, commits, sweeps and clock advances.

State machine (see docs/robustness.md for the diagram)::

    PENDING --claim--> RUNNING --commit*--> DONE
       ^                  |
       +---sweep(expired)-+

Every claim bumps the record's **epoch** and stamps the claimant as
owner; the sweep clears the owner when a lease expires.  A renewal,
commit or completion is accepted only when both the owner *and* the
epoch match -- a worker that lost its lease (and whose job was
re-claimed at a higher epoch) is *fenced*: its late write is counted
and discarded, never applied.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.errors import JobError
from repro.jobs.jobs import LeasedJob
from repro.jobs.plan import LeasePolicy

#: Owner value meaning "no worker holds this record".
NO_OWNER = -1


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


class JobRecord:
    """One job's control-plane state.  Mutated only by the store."""

    __slots__ = (
        "job_id",
        "name",
        "job",
        "interval",
        "not_before",
        "state",
        "epoch",
        "owner",
        "lease_expiry",
        "stale",
        "last_claim_stale",
        "steps_committed",
        "claims",
        "reclaims",
    )

    def __init__(
        self,
        job_id: int,
        name: str,
        job: LeasedJob,
        interval: float,
        not_before: float,
    ) -> None:
        self.job_id = job_id
        self.name = name
        self.job = job
        #: Pacing: seconds between committed steps.
        self.interval = interval
        #: Earliest simulated time the job may be claimed.
        self.not_before = not_before
        self.state = JobState.PENDING
        self.epoch = 0
        self.owner = NO_OWNER
        self.lease_expiry = 0.0
        #: Set by the sweep when an expired lease returned the job to
        #: PENDING; the next claim counts as a stale re-claim.
        self.stale = False
        #: Whether the most recent claim re-claimed an expired lease.
        self.last_claim_stale = False
        self.steps_committed = 0
        self.claims = 0
        self.reclaims = 0

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.job_id,
            "name": self.name,
            "kind": self.job.kind,
            "state": self.state.value,
            "epoch": self.epoch,
            "claims": self.claims,
            "stale_reclaims": self.reclaims,
            "steps_committed": self.steps_committed,
            "progress": self.job.progress(),
        }
        out["detail"] = self.job.summary()
        return out


class JobStore:
    """Holds job records; arbitrates leases with epoch fencing."""

    _COUNTERS = (
        "jobs_submitted",
        "claims",
        "stale_leases_detected",
        "stale_lease_reclaims",
        "renewals",
        "fenced_renewals",
        "steps_committed",
        "fenced_commits",
        "fenced_completions",
        "step_retries",
        "maintenance_yields",
        "jobs_completed",
    )

    def __init__(self, lease: LeasePolicy) -> None:
        self.lease = lease
        self._records: List[JobRecord] = []
        self.counters: Dict[str, int] = {name: 0 for name in self._COUNTERS}

    # ------------------------------------------------------------------
    # control-plane operations
    # ------------------------------------------------------------------

    def submit(
        self,
        name: str,
        job: LeasedJob,
        interval: float,
        not_before: float = 0.0,
    ) -> JobRecord:
        if interval <= 0:
            raise JobError(f"job pacing interval must be positive, got {interval}")
        rec = JobRecord(len(self._records), name, job, interval, not_before)
        self._records.append(rec)
        self.counters["jobs_submitted"] += 1
        return rec

    def claim(self, worker_id: int, now: float) -> Optional[JobRecord]:
        """Hand the first claimable job to ``worker_id``, bumping its
        epoch (which fences any superseded holder)."""
        for rec in self._records:
            if rec.state is not JobState.PENDING:
                continue
            if now < rec.not_before:
                continue
            rec.last_claim_stale = rec.stale
            rec.stale = False
            rec.epoch += 1
            rec.owner = worker_id
            rec.state = JobState.RUNNING
            rec.lease_expiry = now + self.lease.duration
            rec.claims += 1
            self.counters["claims"] += 1
            if rec.last_claim_stale:
                rec.reclaims += 1
                self.counters["stale_lease_reclaims"] += 1
            return rec
        return None

    def _holds(self, rec: JobRecord, worker_id: int, epoch: int) -> bool:
        return (
            rec.state is JobState.RUNNING
            and rec.owner == worker_id
            and rec.epoch == epoch
        )

    def renew(self, rec: JobRecord, worker_id: int, epoch: int, now: float) -> bool:
        if not self._holds(rec, worker_id, epoch):
            self.counters["fenced_renewals"] += 1
            return False
        rec.lease_expiry = now + self.lease.duration
        self.counters["renewals"] += 1
        return True

    def commit(self, rec: JobRecord, worker_id: int, epoch: int, now: float) -> bool:
        """Accept one step commit (and renew) iff the fence holds."""
        if not self._holds(rec, worker_id, epoch):
            self.counters["fenced_commits"] += 1
            return False
        rec.steps_committed += 1
        rec.lease_expiry = now + self.lease.duration
        self.counters["steps_committed"] += 1
        return True

    def complete(self, rec: JobRecord, worker_id: int, epoch: int) -> bool:
        if not self._holds(rec, worker_id, epoch):
            self.counters["fenced_completions"] += 1
            return False
        rec.state = JobState.DONE
        rec.owner = NO_OWNER
        self.counters["jobs_completed"] += 1
        return True

    def sweep(self, now: float) -> List[JobRecord]:
        """Return leases that expired; each flips back to claimable
        (PENDING, stale) with its owner cleared so the old holder is
        fenced even before the next claim bumps the epoch."""
        expired: List[JobRecord] = []
        for rec in self._records:
            if rec.state is JobState.RUNNING and now > rec.lease_expiry:
                rec.state = JobState.PENDING
                rec.owner = NO_OWNER
                rec.stale = True
                self.counters["stale_leases_detected"] += 1
                expired.append(rec)
        return expired

    # ------------------------------------------------------------------

    def all_done(self) -> bool:
        return all(rec.state is JobState.DONE for rec in self._records)

    @property
    def records(self) -> List[JobRecord]:
        return list(self._records)

    def summary(self) -> List[Dict[str, Any]]:
        return [rec.summary() for rec in self._records]
