"""Data-plane job types: bounded steps with commit-time state changes.

The control-plane/data-plane contract that makes stale-lease recovery
safe is *plan/commit separation*: a job step first **plans and issues**
its physical work (disk reads, wire transfers) from the last
*committed* cursor, and only **applies** the state change when the
worker's commit passes the epoch fence at the
:class:`~repro.jobs.store.JobStore`.  A worker stalled mid-step by a
fail-slow window has already paid the physical cost, but its state
change is discarded when the fence rejects the late commit -- the
replacement worker re-plans the same step from the same committed
cursor, so no step is lost and none is double-applied.  The
:class:`~repro.faults.oracle.ContentOracle` step ledger checks exactly
this: committed cursor intervals must chain ``0 -> total`` with no
overlap and no gap.

Three job kinds exist today:

* :class:`RebuildJob` -- wraps the RAID-5
  :class:`~repro.storage.rebuild.RebuildController` (cursor = disk
  row scanned);
* :class:`MigrationJob` -- wraps the cluster
  :class:`~repro.cluster.rebalance.ShardMigrator` (cursor = queued
  mover index);
* :class:`ScrubJob` -- the background scrubber, paced sequential
  reads over the volume that discover latent sector errors before
  foreground reads do (cursor = region index).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Tuple

from repro.errors import JobError
from repro.sim.request import DiskOp

if TYPE_CHECKING:  # avoid import cycles; closures duck-type at runtime
    from repro.cluster.rebalance import ShardMigrator
    from repro.storage.rebuild import RebuildController

#: Issues planned disk ops as background load; returns the completion time.
IssueFn = Callable[[List[DiskOp]], float]
#: Reads ``nblocks`` volume blocks starting at ``pba``; returns completion.
ReadFn = Callable[[int, int], float]
#: Charges per-link wire costs ``(src, dst) -> entries``; returns completion.
SendFn = Callable[[Dict[Tuple[int, int], int]], float]


class Step:
    """One planned-and-issued job step awaiting its fenced commit."""

    __slots__ = ("completion", "span", "commit")

    def __init__(
        self,
        completion: float,
        span: Tuple[int, int],
        commit: Callable[[], None],
    ) -> None:
        #: Simulated time the physical work finishes.
        self.completion = completion
        #: ``(start_cursor, end_cursor)`` covered, for the oracle ledger.
        self.span = span
        #: Applies the state change; called only under a valid fence.
        self.commit = commit


class LeasedJob:
    """Base contract every leased job satisfies.

    ``run_step`` must not mutate job state -- all mutation happens in
    the returned step's ``commit`` callback, which the runtime invokes
    only after the store accepts the (worker, epoch) fence.
    """

    kind = "job"

    def done(self) -> bool:
        raise NotImplementedError

    def progress(self) -> float:
        raise NotImplementedError

    def total(self) -> int:
        """Final cursor value when the job completes (ledger target)."""
        raise NotImplementedError

    def run_step(self, now: float) -> Step:
        raise NotImplementedError

    def summary(self) -> Dict[str, Any]:
        raise NotImplementedError


class RebuildJob(LeasedJob):
    """RAID-5 member reconstruction as a leased job."""

    kind = "rebuild"

    def __init__(
        self, ctrl: "RebuildController", rows_per_batch: int, issue: IssueFn
    ) -> None:
        if rows_per_batch < 1:
            raise JobError(f"rows_per_batch must be >= 1, got {rows_per_batch}")
        self.ctrl = ctrl
        self.rows_per_batch = rows_per_batch
        self._issue = issue

    def done(self) -> bool:
        return self.ctrl.done

    def progress(self) -> float:
        return self.ctrl.progress

    def total(self) -> int:
        return self.ctrl.disk_rows

    def run_step(self, now: float) -> Step:
        start = self.ctrl.cursor
        ops, nxt = self.ctrl.plan_rows(start, self.rows_per_batch)
        completion = self._issue(ops) if ops else now
        ctrl = self.ctrl
        return Step(completion, (start, nxt), lambda: ctrl.commit_rows(start, nxt))

    def summary(self) -> Dict[str, Any]:
        return {
            "disk_rows": self.ctrl.disk_rows,
            "rows_scanned": self.ctrl.rows_scanned,
            "rows_rebuilt": self.ctrl.rows_rebuilt,
            "rows_skipped": self.ctrl.rows_skipped,
        }


class MigrationJob(LeasedJob):
    """Paced shard migration as a leased job."""

    kind = "migrate"

    def __init__(
        self, migrator: "ShardMigrator", entries_per_batch: int, send: SendFn
    ) -> None:
        if entries_per_batch < 1:
            raise JobError(
                f"entries_per_batch must be >= 1, got {entries_per_batch}"
            )
        self.migrator = migrator
        self.entries_per_batch = entries_per_batch
        self._send = send

    def done(self) -> bool:
        return self.migrator.done

    def progress(self) -> float:
        return self.migrator.progress

    def total(self) -> int:
        return self.migrator.entries_total

    def run_step(self, now: float) -> Step:
        start = self.migrator.cursor
        links, end = self.migrator.plan_batch(start, self.entries_per_batch)
        completion = self._send(links) if links else now
        mig = self.migrator
        return Step(completion, (start, end), lambda: mig.commit_batch(start, end))

    def summary(self) -> Dict[str, Any]:
        return dict(self.migrator.summary())


class ScrubJob(LeasedJob):
    """Background scrubber: one volume region read per step."""

    kind = "scrub"

    def __init__(
        self,
        total_blocks: int,
        region_blocks: int,
        read: ReadFn,
        regions_cap: int = 0,
    ) -> None:
        if total_blocks < 1:
            raise JobError(f"nothing to scrub: {total_blocks} blocks")
        if region_blocks < 1:
            raise JobError(f"region_blocks must be >= 1, got {region_blocks}")
        self.total_blocks = total_blocks
        self.region_blocks = region_blocks
        full_pass = -(-total_blocks // region_blocks)
        self.total_regions = min(full_pass, regions_cap) if regions_cap > 0 else full_pass
        self._read = read
        #: Committed cursor: regions fully scrubbed.
        self.regions_scrubbed = 0
        self.blocks_scrubbed = 0

    def done(self) -> bool:
        return self.regions_scrubbed >= self.total_regions

    def progress(self) -> float:
        return self.regions_scrubbed / self.total_regions

    def total(self) -> int:
        return self.total_regions

    def run_step(self, now: float) -> Step:
        start = self.regions_scrubbed
        pba = start * self.region_blocks
        nblocks = min(self.region_blocks, self.total_blocks - pba)
        completion = self._read(pba, nblocks)

        def commit() -> None:
            self.regions_scrubbed = start + 1
            self.blocks_scrubbed += nblocks

        return Step(completion, (start, start + 1), commit)

    def summary(self) -> Dict[str, Any]:
        return {
            "regions_total": self.total_regions,
            "regions_scrubbed": self.regions_scrubbed,
            "blocks_scrubbed": self.blocks_scrubbed,
        }
