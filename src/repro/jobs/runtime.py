"""Simulated workers, heartbeats and the recovery sweep.

The :class:`JobRuntime` is the piece that runs *inside* the
:class:`~repro.sim.engine.Simulator`: it drives N simulated workers
against the pure :class:`~repro.jobs.store.JobStore` control plane.

Worker model
------------
An idle worker polls the store every ``poll_interval`` seconds.  On a
claim it enters a step loop: renew the lease, optionally yield to
foreground admission pressure, plan-and-issue one bounded step
(:meth:`LeasedJob.run_step`), then attempt the fenced commit when the
physical work completes.  Crucially the worker **cannot heartbeat
while stuck in a step** -- the step's completion time is computed at
issue, so a fail-slow window on the spindles pushes the commit past
the lease expiry exactly the way a stalled I/O thread starves a real
lease renewer.  The recovery sweep then returns the job to claimable,
another worker re-claims it at the next epoch, and the stuck worker's
late commit is fenced and discarded.  A fenced worker retries claiming
with bounded exponential backoff before falling back to idle polling.

Every committed step is recorded in the
:class:`~repro.faults.oracle.ContentOracle` step ledger, whose
end-of-run verification proves no step was lost or double-applied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.faults.oracle import ContentOracle
from repro.jobs.admission import AdmissionController
from repro.jobs.jobs import LeasedJob, Step
from repro.jobs.plan import JobsConfig
from repro.jobs.store import JobRecord, JobStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry
    from repro.sim.engine import Simulator


class _Worker:
    __slots__ = ("worker_id", "busy", "parked", "fence_streak")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.busy = False
        self.parked = False
        self.fence_streak = 0


class JobRuntime:
    """Drives leased jobs on a simulator; owns admission and workers."""

    def __init__(
        self,
        config: JobsConfig,
        sim: "Simulator",
        *,
        horizon: float = 0.0,
        oracle: Optional[ContentOracle] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.config = config
        self.sim = sim
        self.store = JobStore(config.lease)
        self.admission = (
            AdmissionController(config.admission)
            if config.admission is not None
            else None
        )
        #: Step-ledger oracle.  Shared with the fault injector's
        #: content oracle when one exists so a single ``assert_clean``
        #: covers both content and step accounting.
        self.oracle = oracle if oracle is not None else ContentOracle()
        self.timeline: Optional[Any] = None
        self.spans: Optional[Any] = None
        self._registry = registry
        #: Workers and the sweep stop rescheduling once every job is
        #: done and the clock passed this (keeps the event heap finite).
        self._horizon = horizon
        self._workers = [_Worker(i) for i in range(config.workers)]
        self._on_done: Dict[int, Callable[[float], None]] = {}
        self._sweep_active = False
        self._started = False
        self._finalized = False

    # ------------------------------------------------------------------
    # submission and lifecycle
    # ------------------------------------------------------------------

    def submit(
        self,
        name: str,
        job: LeasedJob,
        interval: float,
        *,
        not_before: float = 0.0,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> JobRecord:
        rec = self.store.submit(name, job, interval, not_before=not_before)
        self.oracle.note_job_total(name, job.total())
        if on_done is not None:
            self._on_done[rec.job_id] = on_done
        if not_before > self._horizon:
            self._horizon = not_before
        if self._started:
            # Late submission (e.g. a member failure firing mid-run):
            # wake parked workers and restart the sweep if it stopped.
            now = self.sim.now
            wake = max(now, not_before)
            for w in self._workers:
                if w.parked and not w.busy:
                    w.parked = False
                    self.sim.schedule_callback(wake, self._poll, w)
            if not self._sweep_active:
                self._sweep_active = True
                self.sim.schedule_callback(
                    now + self.config.lease.sweep_interval, self._sweep
                )
        return rec

    def start(self) -> None:
        """Schedule the first worker polls and the recovery sweep."""
        if self._started:
            return
        self._started = True
        now = self.sim.now
        for w in self._workers:
            self.sim.schedule_callback(now, self._poll, w)
        self._sweep_active = True
        self.sim.schedule_callback(now + self.config.lease.sweep_interval, self._sweep)

    def finalize(self) -> None:
        """Mirror counters into the registry and verify the ledger."""
        if self._finalized:
            return
        self._finalized = True
        if self._registry is not None:
            for name, value in self.store.counters.items():
                self._registry.inc(f"jobs.{name}", value)
        self.oracle.assert_job_steps_clean()

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------

    def _keep_running(self, now: float) -> bool:
        return not (self.store.all_done() and now > self._horizon)

    def _poll(self, w: _Worker) -> None:
        if w.busy:
            return
        now = self.sim.now
        rec = self.store.claim(w.worker_id, now)
        if rec is None:
            if self._keep_running(now):
                self.sim.schedule_callback(
                    now + self.config.lease.poll_interval, self._poll, w
                )
            else:
                w.parked = True
            return
        w.busy = True
        if self.spans is not None:
            self.spans.emit(
                now, now,
                "job.reclaim" if rec.last_claim_stale else "job.claim",
                job=rec.job_id, worker=w.worker_id, epoch=rec.epoch,
            )
        self._step_entry(w, rec, rec.epoch)

    def _step_entry(self, w: _Worker, rec: JobRecord, epoch: int) -> None:
        now = self.sim.now
        if rec.job.done():
            self._finish(w, rec, epoch)
            return
        # Renew on progress: prove the lease is still ours before
        # touching the data plane.
        if not self.store.renew(rec, w.worker_id, epoch, now):
            self._fenced(w)
            return
        if self.admission is not None:
            delay = self.admission.maintenance_delay(now)
            if delay > 0.0:
                # Graceful degradation: maintenance yields to throttled
                # foreground tenants before issuing physical work.
                self.store.counters["maintenance_yields"] += 1
                if self.timeline is not None:
                    self.timeline.note_activity(now, "jobs_yield")
                self.sim.schedule_callback(
                    now + delay, self._step_issue, w, rec, epoch
                )
                return
        self._step_issue(w, rec, epoch)

    def _step_issue(self, w: _Worker, rec: JobRecord, epoch: int) -> None:
        now = self.sim.now
        step = rec.job.run_step(now)
        completion = step.completion if step.completion > now else now
        self.sim.schedule_callback(
            completion, self._step_commit, w, rec, epoch, step, now
        )

    def _step_commit(
        self, w: _Worker, rec: JobRecord, epoch: int, step: Step, t0: float
    ) -> None:
        now = self.sim.now
        if not self.store.commit(rec, w.worker_id, epoch, now):
            # Superseded mid-step: the physical work is sunk cost, the
            # state change is discarded (never double-applied).
            if self.spans is not None:
                self.spans.emit(
                    t0, now, "job.fenced",
                    job=rec.job_id, worker=w.worker_id, epoch=epoch,
                )
            self._fenced(w)
            return
        step.commit()
        self.oracle.note_job_step(rec.name, step.span[0], step.span[1])
        w.fence_streak = 0
        if self.spans is not None:
            self.spans.emit(
                t0, now, "job.step",
                job=rec.job_id, worker=w.worker_id, epoch=epoch,
                cursor=step.span[1],
            )
        if self.timeline is not None:
            self.timeline.note_activity(now, "jobs", rec.job.progress())
        if rec.job.done():
            self._finish(w, rec, epoch)
            return
        self.sim.schedule_callback(now + rec.interval, self._step_entry, w, rec, epoch)

    def _finish(self, w: _Worker, rec: JobRecord, epoch: int) -> None:
        now = self.sim.now
        if self.store.complete(rec, w.worker_id, epoch):
            self.oracle.note_job_done(rec.name)
            if self.spans is not None:
                self.spans.emit(
                    now, now, "job.complete",
                    job=rec.job_id, worker=w.worker_id, epoch=epoch,
                )
            cb = self._on_done.pop(rec.job_id, None)
            if cb is not None:
                cb(now)
        w.busy = False
        self.sim.schedule_callback(now, self._poll, w)

    def _fenced(self, w: _Worker) -> None:
        """Bounded exponential backoff after losing a fence race."""
        now = self.sim.now
        lease = self.config.lease
        w.busy = False
        w.fence_streak += 1
        if w.fence_streak <= lease.max_retries:
            self.store.counters["step_retries"] += 1
            backoff = lease.backoff * (2 ** (w.fence_streak - 1))
        else:
            w.fence_streak = 0
            backoff = lease.poll_interval
        self.sim.schedule_callback(now + backoff, self._poll, w)

    # ------------------------------------------------------------------
    # recovery sweep
    # ------------------------------------------------------------------

    def _sweep(self) -> None:
        now = self.sim.now
        expired = self.store.sweep(now)
        for rec in expired:
            if self.spans is not None:
                self.spans.emit(
                    now, now, "job.lease_expired",
                    job=rec.job_id, epoch=rec.epoch,
                )
            if self.timeline is not None:
                self.timeline.note_activity(now, "jobs_lease_expired")
        if not self._keep_running(now):
            self._sweep_active = False
            return
        self.sim.schedule_callback(
            now + self.config.lease.sweep_interval, self._sweep
        )

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Jobs-subsystem snapshot for ``ReplayResult.jobs_stats`` and
        the run report's ``jobs`` section."""
        lease = self.config.lease
        out: Dict[str, Any] = {
            "schema_version": 1,
            "workers": self.config.workers,
            "lease": {
                "duration": lease.duration,
                "poll_interval": lease.poll_interval,
                "sweep_interval": lease.sweep_interval,
                "max_retries": lease.max_retries,
                "backoff": lease.backoff,
            },
            "counters": dict(sorted(self.store.counters.items())),
            "jobs": self.store.summary(),
            "oracle": self.oracle.job_steps_summary(),
        }
        if self.admission is not None:
            out["admission"] = self.admission.summary()
        return out
