"""Leased background jobs: control-plane/data-plane split.

* :mod:`repro.jobs.plan` -- frozen, JSON-loadable :class:`JobsConfig`
  (lease policy, scrubber spec, per-tenant admission spec).
* :mod:`repro.jobs.store` -- the pure :class:`JobStore` control plane:
  job records, epoch-fenced leases, the recovery sweep's state flips.
* :mod:`repro.jobs.jobs` -- data-plane job types with plan/commit
  step separation (:class:`RebuildJob`, :class:`MigrationJob`,
  :class:`ScrubJob`).
* :mod:`repro.jobs.admission` -- per-tenant token buckets with
  maintenance back-off.
* :mod:`repro.jobs.runtime` -- simulated workers, heartbeats and the
  recovery sweep driving it all inside the Simulator.

See docs/robustness.md ("Leased background jobs") for the lease /
epoch / recovery state machine.
"""

from __future__ import annotations

from repro.jobs.admission import AdmissionController, TokenBucket
from repro.jobs.jobs import LeasedJob, MigrationJob, RebuildJob, ScrubJob, Step
from repro.jobs.plan import AdmissionSpec, JobsConfig, LeasePolicy, ScrubberSpec
from repro.jobs.runtime import JobRuntime
from repro.jobs.store import JobRecord, JobState, JobStore

__all__ = [
    "AdmissionController",
    "AdmissionSpec",
    "JobRecord",
    "JobRuntime",
    "JobState",
    "JobStore",
    "JobsConfig",
    "LeasePolicy",
    "LeasedJob",
    "MigrationJob",
    "RebuildJob",
    "ScrubJob",
    "ScrubberSpec",
    "Step",
    "TokenBucket",
]
