"""Frozen, JSON-loadable configuration for the leased-job subsystem.

Mirrors the :class:`~repro.faults.plan.FaultPlan` conventions: every
knob lives in a frozen dataclass validated at construction, the whole
config is hashable (it rides inside :class:`ReplayConfig`, which the
experiment runner uses as a memo key), and a JSON file round-trips
through :meth:`JobsConfig.from_dict` / :meth:`JobsConfig.as_dict`.

All times are simulated seconds.  The lease policy is the heart of the
control plane: a worker that claims a job holds its lease for
``duration`` seconds unless renewed (claims, renewals and step commits
all renew).  A worker stuck in a slow I/O step -- the fail-slow fault
windows of :mod:`repro.faults` are the canonical cause -- cannot
renew, so the recovery sweep (every ``sweep_interval``) flips the job
back to claimable and the next claim bumps the epoch, fencing the
stuck worker's eventual commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class LeasePolicy:
    """Lease, heartbeat and retry knobs shared by every job.

    Attributes
    ----------
    duration:
        Seconds a lease stays valid without renewal.  Must comfortably
        exceed a *healthy* job step so only genuinely stalled workers
        expire.
    poll_interval:
        Idle-worker heartbeat: how often a worker with no job asks the
        store for claimable work.
    sweep_interval:
        Recovery-sweep cadence.  Expired leases are detected within
        one sweep interval of expiring.
    max_retries:
        Bounded retry budget after a fenced step: the superseded
        worker re-polls with exponential backoff up to this many
        consecutive times before falling back to the idle cadence.
    backoff:
        Base backoff seconds; doubled per consecutive fenced step.
    """

    duration: float = 0.5
    poll_interval: float = 0.05
    sweep_interval: float = 0.25
    max_retries: int = 4
    backoff: float = 0.02

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError(f"lease duration must be positive, got {self.duration}")
        if self.poll_interval <= 0:
            raise ConfigError(
                f"lease poll_interval must be positive, got {self.poll_interval}"
            )
        if self.sweep_interval <= 0:
            raise ConfigError(
                f"lease sweep_interval must be positive, got {self.sweep_interval}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"negative max_retries {self.max_retries}")
        if self.backoff <= 0:
            raise ConfigError(f"lease backoff must be positive, got {self.backoff}")


@dataclass(frozen=True)
class ScrubberSpec:
    """Background scrubber: paced sequential reads over the volume.

    The scrubber walks the volume address space in ``region_blocks``
    extents, one region per job step, ``interval`` seconds apart.
    Reads go through the normal RAID + fault-hook path, so a latent
    sector error in a scrubbed region is discovered (and repaired by
    parity reconstruction) *before* a foreground read trips over it.

    ``regions`` caps the pass length (None scrubs the whole volume
    once); short replays use a cap so the scrub pass ends near the
    trace horizon instead of dominating simulated time.
    """

    start: float = 0.0
    region_blocks: int = 1024
    interval: float = 0.05
    regions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"scrub start must be >= 0, got {self.start}")
        if self.region_blocks <= 0:
            raise ConfigError(
                f"scrub region_blocks must be positive, got {self.region_blocks}"
            )
        if self.interval <= 0:
            raise ConfigError(f"scrub interval must be positive, got {self.interval}")
        if self.regions is not None and self.regions <= 0:
            raise ConfigError(f"scrub regions cap must be positive, got {self.regions}")


@dataclass(frozen=True)
class AdmissionSpec:
    """Per-tenant token-bucket admission in front of foreground replay.

    Each volume gets its own bucket refilled at ``rate_blocks`` tokens
    (blocks) per second up to ``burst_blocks`` deep; a request that
    finds the bucket dry is admitted when its debt refills, in FIFO
    order per tenant.  Maintenance jobs yield first: while any tenant
    has admission debt outstanding, job steps defer up to
    ``maintenance_yield`` seconds before touching the spindles.
    """

    rate_blocks: float = 262144.0
    burst_blocks: float = 65536.0
    maintenance_yield: float = 0.25

    def __post_init__(self) -> None:
        if self.rate_blocks <= 0:
            raise ConfigError(
                f"admission rate_blocks must be positive, got {self.rate_blocks}"
            )
        if self.burst_blocks <= 0:
            raise ConfigError(
                f"admission burst_blocks must be positive, got {self.burst_blocks}"
            )
        if self.maintenance_yield < 0:
            raise ConfigError(
                f"negative maintenance_yield {self.maintenance_yield}"
            )


@dataclass(frozen=True)
class JobsConfig:
    """Top-level switch for the leased-job subsystem.

    ``None`` anywhere a :class:`JobsConfig` is accepted means *jobs
    off* -- the replay takes the exact legacy code path and stays
    bit-identical per seed.
    """

    workers: int = 2
    lease: LeasePolicy = LeasePolicy()
    scrub: Optional[ScrubberSpec] = None
    admission: Optional[AdmissionSpec] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"need at least one worker, got {self.workers}")

    # ------------------------------------------------------------------
    # JSON round-trip (FaultPlan conventions)
    # ------------------------------------------------------------------

    _KNOWN = ("workers", "lease", "scrub", "admission")

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "JobsConfig":
        unknown = sorted(set(obj) - set(cls._KNOWN))
        if unknown:
            raise ConfigError(f"unknown jobs config keys: {', '.join(unknown)}")
        try:
            lease = LeasePolicy(**obj.get("lease", {}))
            scrub = (
                ScrubberSpec(**obj["scrub"]) if obj.get("scrub") is not None else None
            )
            admission = (
                AdmissionSpec(**obj["admission"])
                if obj.get("admission") is not None
                else None
            )
            return cls(
                workers=int(obj.get("workers", 2)),
                lease=lease,
                scrub=scrub,
                admission=admission,
            )
        except TypeError as exc:
            raise ConfigError(f"malformed jobs config: {exc}") from exc

    @classmethod
    def load(cls, path: str) -> "JobsConfig":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                obj = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load jobs config {path!r}: {exc}") from None
        if not isinstance(obj, dict):
            raise ConfigError(f"jobs config {path!r} must hold a JSON object")
        return cls.from_dict(obj)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "workers": self.workers,
            "lease": {
                "duration": self.lease.duration,
                "poll_interval": self.lease.poll_interval,
                "sweep_interval": self.lease.sweep_interval,
                "max_retries": self.lease.max_retries,
                "backoff": self.lease.backoff,
            },
        }
        if self.scrub is not None:
            out["scrub"] = {
                "start": self.scrub.start,
                "region_blocks": self.scrub.region_blocks,
                "interval": self.scrub.interval,
                "regions": self.scrub.regions,
            }
        if self.admission is not None:
            out["admission"] = {
                "rate_blocks": self.admission.rate_blocks,
                "burst_blocks": self.admission.burst_blocks,
                "maintenance_yield": self.admission.maintenance_yield,
            }
        return out
