"""Single-HDD service-time model.

The paper's testbed uses WDC WD1600AAJS SATA disks (7200 RPM).  We
model the three mechanical components of a disk access:

* **seek** -- a square-root curve ``seek(d) = a + b*sqrt(d/D)`` between
  a track-to-track minimum and a full-stroke maximum, the standard
  first-order model (Ruemmler & Wilkes).  ``d`` is the block distance
  from the current head position; ``D`` the disk capacity in blocks.
* **rotation** -- the expected half-rotation at 7200 RPM.  We charge
  the deterministic expectation rather than sampling so simulations
  are exactly reproducible.
* **transfer** -- bytes moved at the sustained media rate.

Strictly sequential accesses (the op starts exactly where the head
stopped) skip both seek and rotation, which is what makes fragmented
reads expensive relative to sequential ones -- the *read
amplification* effect that motivates Select-Dedupe's category 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.constants import BLOCK_SIZE
from repro.errors import StorageError


@dataclass(frozen=True)
class DiskParams:
    """Mechanical parameters of one member disk.

    Defaults approximate the WDC WD1600AAJS (160 GB, 7200 RPM) used in
    the paper, scaled to the simulated capacity.
    """

    #: Usable capacity in 4 KB blocks.
    total_blocks: int = 4 * 1024 * 1024  # 16 GiB by default
    #: Spindle speed in revolutions per minute.
    rpm: int = 7200
    #: Track-to-track (minimum non-zero) seek time, seconds.
    seek_min: float = 0.8e-3
    #: Full-stroke seek time, seconds.
    seek_max: float = 17.0e-3
    #: Sustained media transfer rate, bytes/second.
    transfer_rate: float = 90e6
    #: Fixed per-op controller/command overhead, seconds.
    controller_overhead: float = 0.1e-3

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise StorageError("disk capacity must be positive")
        if self.rpm <= 0:
            raise StorageError("rpm must be positive")
        if not (0 <= self.seek_min <= self.seek_max):
            raise StorageError("need 0 <= seek_min <= seek_max")
        if self.transfer_rate <= 0:
            raise StorageError("transfer rate must be positive")

    @property
    def avg_rotational_latency(self) -> float:
        """Expected rotational delay: half a revolution, seconds."""
        return 60.0 / self.rpm / 2.0

    def seek_time(self, distance_blocks: int) -> float:
        """Seek time for a head movement of ``distance_blocks``.

        Zero distance costs nothing; otherwise the square-root curve
        interpolates between ``seek_min`` and ``seek_max``.
        """
        if distance_blocks < 0:
            raise StorageError(f"negative seek distance {distance_blocks}")
        if distance_blocks == 0:
            return 0.0
        frac = min(1.0, distance_blocks / self.total_blocks)
        return self.seek_min + (self.seek_max - self.seek_min) * math.sqrt(frac)

    def transfer_time(self, nblocks: int) -> float:
        """Media transfer time for ``nblocks`` 4 KB blocks."""
        if nblocks < 0:
            raise StorageError(f"negative transfer length {nblocks}")
        return nblocks * BLOCK_SIZE / self.transfer_rate


class Disk:
    """Mechanical state of one disk: head position and busy horizon.

    The engine serialises ops FCFS per disk: an op issued at time *t*
    starts at ``max(t, busy_until)``, runs for :meth:`service_time`,
    and advances the head to the end of the accessed extent.

    Attributes
    ----------
    params:
        The mechanical parameter set.
    head:
        Current head position (block address) after the last op.
    busy_until:
        Simulation time at which the disk becomes idle.
    """

    def __init__(self, params: DiskParams, disk_id: int = 0) -> None:
        self.params = params
        self.disk_id = disk_id
        self.head: int = 0
        self.busy_until: float = 0.0
        #: Counters for utilisation reporting.
        self.ops_serviced: int = 0
        self.blocks_moved: int = 0
        self.busy_time: float = 0.0
        #: Mechanical-time decomposition (observability): where the
        #: busy time actually went.  ``seek_time_total`` +
        #: ``rotation_time_total`` + ``transfer_time_total`` +
        #: per-op controller overhead == ``busy_time``.
        self.seek_time_total: float = 0.0
        self.rotation_time_total: float = 0.0
        self.transfer_time_total: float = 0.0
        #: Fail-slow windows ``(start, end, multiplier)``: while the
        #: op's *start* time falls inside a window, every mechanical
        #: component is stretched by the multiplier (a degrading disk
        #: serves I/O correctly but slowly).  Empty by default, so the
        #: healthy path costs one truthiness test.
        self.slow_windows: List[Tuple[float, float, float]] = []
        #: Ops that ran slowed, and the extra seconds charged.
        self.slow_ops: int = 0
        self.slow_extra_time: float = 0.0

    def add_slow_window(self, start: float, end: float, multiplier: float) -> None:
        """Register a fail-slow window (fault injection)."""
        if end < start:
            raise StorageError("fail-slow window ends before it starts")
        if multiplier < 1.0:
            raise StorageError("fail-slow multiplier must be >= 1")
        self.slow_windows.append((start, end, multiplier))

    def slow_multiplier(self, t: float) -> float:
        """Combined latency multiplier at time ``t`` (1.0 = healthy)."""
        m = 1.0
        for start, end, mult in self.slow_windows:
            if start <= t < end:
                m *= mult
        return m

    def _components(self, pba: int, nblocks: int) -> "tuple[float, float, float]":
        """(seek, rotation, transfer) seconds for one access."""
        if pba < 0 or pba + nblocks > self.params.total_blocks:
            raise StorageError(
                f"disk {self.disk_id}: access [{pba}, {pba + nblocks}) outside "
                f"capacity {self.params.total_blocks}"
            )
        distance = abs(pba - self.head)
        seek = rotation = 0.0
        if distance > 0:
            seek = self.params.seek_time(distance)
            rotation = self.params.avg_rotational_latency
        return seek, rotation, self.params.transfer_time(nblocks)

    def components(self, pba: int, nblocks: int) -> "tuple[float, float, float]":
        """Public ``(seek, rotation, transfer)`` breakdown of one access.

        The sanctioned surface for schedulers and accounting that need
        the mechanical split rather than the summed
        :meth:`service_time`.  Pure: does not move the head or advance
        the busy horizon.
        """
        return self._components(pba, nblocks)

    def service_time(self, pba: int, nblocks: int) -> float:
        """Mechanical time to service an access at ``pba`` of ``nblocks``.

        Does not include queueing delay; the engine adds that.
        """
        seek, rotation, transfer = self._components(pba, nblocks)
        return self.params.controller_overhead + seek + rotation + transfer

    def service(self, now: float, pba: int, nblocks: int) -> float:
        """Schedule one op FCFS and return its *completion time*.

        Mutates the disk state (head position, busy horizon, counters).
        """
        start = max(now, self.busy_until)
        seek, rotation, transfer = self._components(pba, nblocks)
        overhead = self.params.controller_overhead
        if self.slow_windows:
            mult = self.slow_multiplier(start)
            if mult > 1.0:
                base = overhead + seek + rotation + transfer
                overhead *= mult
                seek *= mult
                rotation *= mult
                transfer *= mult
                self.slow_ops += 1
                self.slow_extra_time += (overhead + seek + rotation + transfer) - base
        duration = overhead + seek + rotation + transfer
        self.head = pba + nblocks
        self.busy_until = start + duration
        self.ops_serviced += 1
        self.blocks_moved += nblocks
        self.busy_time += duration
        self.seek_time_total += seek
        self.rotation_time_total += rotation
        self.transfer_time_total += transfer
        return self.busy_until

    def reset(self) -> None:
        """Return the disk to its initial idle state."""
        self.head = 0
        self.busy_until = 0.0
        self.ops_serviced = 0
        self.blocks_moved = 0
        self.busy_time = 0.0
        self.seek_time_total = 0.0
        self.rotation_time_total = 0.0
        self.transfer_time_total = 0.0
        self.slow_windows = []
        self.slow_ops = 0
        self.slow_extra_time = 0.0
