"""A small SSD model for the SAR extension.

SAR (Mao et al., NAS'12 -- the paper's reference [18]) parks the
*fragmented* deduplicated blocks on an SSD so that restores and other
reads of deduplicated data stop paying HDD seeks.  The SSD model here
is deliberately first-order, mirroring the HDD model's level of
detail: a fixed per-op command overhead plus a per-block transfer
time, no mechanical positioning, FCFS service against a busy horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import BLOCK_SIZE
from repro.errors import StorageError


@dataclass(frozen=True)
class SsdParams:
    """First-order SSD service model (SATA-class defaults)."""

    #: Capacity in 4 KB blocks.
    total_blocks: int = 262_144  # 1 GiB
    #: Fixed per-command overhead, seconds (~a SATA round trip).
    command_overhead: float = 60e-6
    #: Sustained transfer rate, bytes/second.
    transfer_rate: float = 400e6

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise StorageError("SSD capacity must be positive")
        if self.command_overhead < 0:
            raise StorageError("negative command overhead")
        if self.transfer_rate <= 0:
            raise StorageError("transfer rate must be positive")

    def service_time(self, nblocks: int) -> float:
        """Latency of one op moving ``nblocks`` 4 KB blocks."""
        if nblocks < 1:
            raise StorageError("SSD op must move at least one block")
        return self.command_overhead + nblocks * BLOCK_SIZE / self.transfer_rate


class Ssd:
    """FCFS SSD device with an analytic busy horizon (like Disk)."""

    def __init__(self, params: SsdParams) -> None:
        self.params = params
        self.busy_until = 0.0
        self.ops_serviced = 0
        self.blocks_moved = 0
        self.busy_time = 0.0

    def service(self, now: float, nblocks: int) -> float:
        """Serve one op of ``nblocks``; returns its completion time."""
        start = max(now, self.busy_until)
        duration = self.params.service_time(nblocks)
        self.busy_until = start + duration
        self.ops_serviced += 1
        self.blocks_moved += nblocks
        self.busy_time += duration
        return self.busy_until

    def reset(self) -> None:
        self.busy_until = 0.0
        self.ops_serviced = 0
        self.blocks_moved = 0
        self.busy_time = 0.0
