"""Event-driven per-disk I/O scheduling.

The default engine path serves disks FCFS *analytically*: because
FCFS never reorders, an op's completion time is computable at issue
time from the disk's busy horizon, with no events at all.  Real disks,
however, reorder their queues; this module provides the event-driven
alternative:

* :class:`SchedulingPolicy.FCFS` -- first-come-first-served; event-
  driven but semantically identical to the analytic path (the
  integration tests assert the equivalence, which doubles as a
  validation of both implementations);
* :class:`SchedulingPolicy.CLOOK` -- the circular-LOOK elevator: serve
  the pending op with the lowest address at or above the head, wrap to
  the lowest address when none is.  Under queue build-up it trades a
  little fairness for much shorter seeks.

A :class:`DiskScheduler` wraps one :class:`~repro.storage.disk.Disk`;
it owns the pending queue and drives the mechanical model op by op
through the simulator's callback facility.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.errors import StorageError
from repro.obs.events import EventType, TraceLevel
from repro.sim.request import DiskOp
from repro.storage.disk import Disk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class SchedulingPolicy(enum.Enum):
    """Queue discipline of an event-driven disk."""

    FCFS = "fcfs"
    CLOOK = "clook"


class DiskScheduler:
    """Event-driven service of one disk's queue under a policy."""

    def __init__(self, disk: Disk, policy: SchedulingPolicy = SchedulingPolicy.FCFS) -> None:
        self.disk = disk
        self.policy = policy
        self._pending: List[Tuple[DiskOp, Callable[[], None]]] = []
        self._busy = False
        #: Longest queue depth observed (diagnostics for the ablation).
        self.max_queue_depth = 0

    @property
    def queue_depth(self) -> int:
        return len(self._pending) + (1 if self._busy else 0)

    def submit(
        self, sim: "Simulator", op: DiskOp, on_done: Callable[[], None]
    ) -> None:
        """Enqueue one op; ``on_done()`` fires at its completion time."""
        if op.pba + op.nblocks > self.disk.params.total_blocks:
            raise StorageError(
                f"disk {self.disk.disk_id}: op beyond capacity "
                f"({op.pba}+{op.nblocks} > {self.disk.params.total_blocks})"
            )
        self._pending.append((op, on_done))
        if self.queue_depth > self.max_queue_depth:
            self.max_queue_depth = self.queue_depth
        if not self._busy:
            self._dispatch(sim)

    # ------------------------------------------------------------------

    def _pick(self) -> int:
        """Index of the next op to serve."""
        if self.policy is SchedulingPolicy.FCFS or len(self._pending) == 1:
            return 0
        head = self.disk.head
        best_ge: Optional[int] = None
        best_any = 0
        for i, (op, _cb) in enumerate(self._pending):
            if op.pba < self._pending[best_any][0].pba:
                best_any = i
            if op.pba >= head and (
                best_ge is None or op.pba < self._pending[best_ge][0].pba
            ):
                best_ge = i
        return best_ge if best_ge is not None else best_any

    def _dispatch(self, sim: "Simulator") -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        op, on_done = self._pending.pop(self._pick())
        seek, rotation, transfer = self.disk.components(op.pba, op.nblocks)
        duration = self.disk.params.controller_overhead + seek + rotation + transfer
        # Advance the mechanical state; the busy horizon is driven by
        # the event clock here, not by the analytic max().
        self.disk.head = op.pba + op.nblocks
        self.disk.ops_serviced += 1
        self.disk.blocks_moved += op.nblocks
        self.disk.busy_time += duration
        self.disk.seek_time_total += seek
        self.disk.rotation_time_total += rotation
        self.disk.transfer_time_total += transfer
        self.disk.busy_until = sim.now + duration
        obs = getattr(sim, "obs", None)
        if obs is not None and obs.level >= TraceLevel.CHUNK:
            obs.emit(
                TraceLevel.CHUNK,
                sim.now,
                EventType.DISK_OP,
                disk=self.disk.disk_id,
                op=op.op.value,
                pba=op.pba,
                nblocks=op.nblocks,
                start=sim.now,
                done=sim.now + duration,
            )
        sim.schedule_callback(sim.now + duration, self._finish, sim, on_done)

    def _finish(self, sim: "Simulator", on_done: Callable[[], None]) -> None:
        on_done()
        self._dispatch(sim)
