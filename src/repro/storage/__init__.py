"""Storage substrate: HDD mechanics, RAID layouts, block allocation.

* :mod:`repro.storage.disk` -- single-HDD service-time model (seek
  curve, rotation, transfer) matching the paper's 7200 RPM SATA disks.
* :mod:`repro.storage.raid` -- RAID-0/RAID-5 address mapping with the
  64 KB stripe unit and read-modify-write small-write handling used in
  the evaluation.
* :mod:`repro.storage.volume` -- the logical volume: extent ops,
  content store (for data-integrity oracles), extent coalescing.
* :mod:`repro.storage.allocator` -- physical block regions and the
  log-structured allocator used for copy-on-write redirection.
* :mod:`repro.storage.nvram` -- NVRAM byte accounting for the Map table.
* :mod:`repro.storage.journal` -- write-ahead Map-table journal with
  torn-tail detection (crash recovery).
"""

from __future__ import annotations

from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import RaidArray, RaidLevel
from repro.storage.rebuild import RebuildController
from repro.storage.scheduler import DiskScheduler, SchedulingPolicy
from repro.storage.ssd import Ssd, SsdParams
from repro.storage.volume import VolumeOp, ContentStore, coalesce_extents
from repro.storage.allocator import RegionMap, LogAllocator
from repro.storage.journal import JournalRecord, MapJournal
from repro.storage.nvram import NvramMeter

__all__ = [
    "Disk",
    "DiskParams",
    "RaidArray",
    "RaidLevel",
    "DiskScheduler",
    "SchedulingPolicy",
    "RebuildController",
    "Ssd",
    "SsdParams",
    "VolumeOp",
    "ContentStore",
    "coalesce_extents",
    "RegionMap",
    "LogAllocator",
    "JournalRecord",
    "MapJournal",
    "NvramMeter",
]
