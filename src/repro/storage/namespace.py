"""Volume namespaces: many logical volumes over one shared dedup domain.

POD targets *cloud* primary storage, where most of the redundancy
comes from many VMs/tenants writing near-identical OS and application
blocks (Section I).  To make that representable, the request path is
layered through a volume namespace:

* each tenant sees a private, zero-based logical volume
  (:class:`VolumeNamespace`);
* the :class:`NamespaceMapper` lays the volumes out back-to-back in
  one *global* logical address space, translating
  ``(volume_id, lba) -> global LBA``;
* everything below the mapper -- :class:`~repro.baselines.base.DedupScheme`,
  the Map table, the :class:`~repro.storage.allocator.RegionMap` and
  the allocator -- operates on the global space only, so identical
  content written by *different* volumes collapses onto one physical
  copy exactly like intra-volume duplicates do.

The mapper is pure address arithmetic: it owns no I/O state, costs
O(1) per translation (O(log V) for the reverse lookup) and is
deliberately immutable -- a replay's volume layout is fixed up front,
like a storage array's LUN map.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import StorageError
from repro.sim.request import IORequest


@dataclass(frozen=True)
class VolumeNamespace:
    """One tenant-visible logical volume inside the shared domain.

    Attributes
    ----------
    volume_id:
        Dense index of the volume (0..V-1), also used by
        :attr:`~repro.sim.request.IORequest.volume_id`.
    name:
        Human-readable identity (e.g. ``"mail/t3"``), used in
        per-volume metric breakdowns.
    logical_blocks:
        Size of the tenant-visible address space, 4 KB blocks.
    base:
        First *global* LBA of this volume in the shared domain.
    """

    volume_id: int
    name: str
    logical_blocks: int
    base: int

    def __post_init__(self) -> None:
        if self.volume_id < 0:
            raise StorageError(f"negative volume id {self.volume_id}")
        if self.logical_blocks <= 0:
            raise StorageError(f"volume {self.name!r} needs a positive logical space")
        if self.base < 0:
            raise StorageError(f"negative base address {self.base}")

    @property
    def end(self) -> int:
        """One past the last global LBA of this volume."""
        return self.base + self.logical_blocks

    def to_global(self, lba: int) -> int:
        """Translate a volume-local LBA into the shared domain."""
        if not (0 <= lba < self.logical_blocks):
            raise StorageError(
                f"LBA {lba} outside volume {self.name!r} "
                f"of {self.logical_blocks} blocks"
            )
        return self.base + lba

    def to_local(self, global_lba: int) -> int:
        """Translate a global LBA back into this volume's space."""
        if not (self.base <= global_lba < self.end):
            raise StorageError(
                f"global LBA {global_lba} outside volume {self.name!r} "
                f"[{self.base}, {self.end})"
            )
        return global_lba - self.base


class NamespaceMapper:
    """The (volume_id, lba) -> global-LBA translation table.

    Volumes are laid out contiguously in declaration order::

        [ vol 0 ][ vol 1 ] ... [ vol V-1 ]
        0        b1            b_{V-1}      total_logical_blocks

    A single-volume mapper is the identity translation (base 0), which
    is what keeps the classic one-trace replay bit-identical to the
    pre-namespace code path.
    """

    def __init__(self, volumes: Iterable[Tuple[str, int]]) -> None:
        self._volumes: List[VolumeNamespace] = []
        base = 0
        for vid, (name, logical_blocks) in enumerate(volumes):
            ns = VolumeNamespace(
                volume_id=vid, name=name, logical_blocks=logical_blocks, base=base
            )
            self._volumes.append(ns)
            base = ns.end
        if not self._volumes:
            raise StorageError("a namespace mapper needs at least one volume")
        #: Volume base addresses, for the reverse (global -> volume) lookup.
        self._bases: List[int] = [ns.base for ns in self._volumes]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._volumes)

    def __iter__(self) -> Iterator[VolumeNamespace]:
        return iter(self._volumes)

    @property
    def volumes(self) -> Sequence[VolumeNamespace]:
        return tuple(self._volumes)

    @property
    def total_logical_blocks(self) -> int:
        """Size of the shared (global) logical address space."""
        return self._volumes[-1].end

    def volume(self, volume_id: int) -> VolumeNamespace:
        if not (0 <= volume_id < len(self._volumes)):
            raise StorageError(f"unknown volume id {volume_id}")
        return self._volumes[volume_id]

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def to_global(self, volume_id: int, lba: int) -> int:
        """Translate a volume-local LBA into the shared domain."""
        return self.volume(volume_id).to_global(lba)

    def locate(self, global_lba: int) -> Tuple[int, int]:
        """Reverse-translate a global LBA into ``(volume_id, local_lba)``."""
        if not (0 <= global_lba < self.total_logical_blocks):
            raise StorageError(
                f"global LBA {global_lba} outside the shared domain of "
                f"{self.total_logical_blocks} blocks"
            )
        vid = bisect_right(self._bases, global_lba) - 1
        return vid, global_lba - self._bases[vid]

    def translate_request(self, request: IORequest, volume_id: int) -> IORequest:
        """Rebase one volume-local request into the shared domain.

        The request's extent must lie entirely inside the volume; the
        returned request carries the global LBA and the volume id.
        A request already based at a volume whose base is 0 (the
        single-volume case) still gets a fresh object so callers can
        rely on the invariant "replay requests are global".
        """
        ns = self.volume(volume_id)
        if request.lba + request.nblocks > ns.logical_blocks:
            raise StorageError(
                f"request [{request.lba}, {request.lba + request.nblocks}) "
                f"overruns volume {ns.name!r} of {ns.logical_blocks} blocks"
            )
        return IORequest(
            time=request.time,
            op=request.op,
            lba=ns.base + request.lba,
            nblocks=request.nblocks,
            fingerprints=request.fingerprints,
            req_id=request.req_id,
            volume_id=volume_id,
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def for_traces(traces: Sequence[object]) -> "NamespaceMapper":
        """One volume per trace, sized to the trace's logical space.

        ``traces`` are :class:`~repro.traces.format.Trace` objects
        (typed loosely to avoid a storage -> traces import cycle).
        """
        return NamespaceMapper(
            (getattr(t, "name"), getattr(t, "logical_blocks")) for t in traces
        )
