"""Physical space layout and the copy-on-write log allocator.

The simulated volume is divided into fixed regions:

* **home region** -- one physical block per logical block; a
  non-deduplicated write to LBA *l* lands at its home address
  ``home_base + l`` (in-place update, like the Native system).
* **log region** -- append-allocated blocks used when an in-place
  update must be *redirected*: the home block is still referenced by
  other LBAs through the Map table, so overwriting it would corrupt
  them (the consistency rule of the Request Redirector, Section III-B).
* **index region** -- where Full-Dedupe keeps the on-disk part of its
  full fingerprint index; an index-cache miss costs a random read here
  (the in-disk index-lookup bottleneck of Section II-B).
* **swap region** -- the "reserved space on the back-end storage
  device" where iCache's Swap Module parks swapped-out cache contents
  (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.errors import StorageError


@dataclass(frozen=True)
class RegionMap:
    """Boundaries of the physical regions, all in 4 KB blocks.

    Layout (ascending PBA)::

        [ home: logical_blocks ][ log ][ index ][ swap ]
    """

    logical_blocks: int
    log_blocks: int
    index_blocks: int
    swap_blocks: int

    def __post_init__(self) -> None:
        for name in ("logical_blocks", "log_blocks", "index_blocks", "swap_blocks"):
            if getattr(self, name) < 0:
                raise StorageError(f"{name} must be non-negative")
        if self.logical_blocks == 0:
            raise StorageError("volume needs a non-empty home region")

    @property
    def home_base(self) -> int:
        return 0

    @property
    def log_base(self) -> int:
        return self.logical_blocks

    @property
    def index_base(self) -> int:
        return self.log_base + self.log_blocks

    @property
    def swap_base(self) -> int:
        return self.index_base + self.index_blocks

    @property
    def total_blocks(self) -> int:
        return self.swap_base + self.swap_blocks

    def home_of(self, lba: int) -> int:
        """Home PBA of a logical block."""
        if not (0 <= lba < self.logical_blocks):
            raise StorageError(f"LBA {lba} outside logical space of {self.logical_blocks}")
        return self.home_base + lba

    def is_home(self, pba: int) -> bool:
        return self.home_base <= pba < self.log_base

    def is_log(self, pba: int) -> bool:
        return self.log_base <= pba < self.index_base

    def is_index(self, pba: int) -> bool:
        return self.index_base <= pba < self.swap_base

    def is_swap(self, pba: int) -> bool:
        return self.swap_base <= pba < self.total_blocks

    @staticmethod
    def for_logical_space(
        logical_blocks: int,
        log_fraction: float = 0.10,
        index_fraction: float = 0.02,
        swap_fraction: float = 0.02,
    ) -> "RegionMap":
        """Build a region map sized relative to the logical space."""
        if logical_blocks <= 0:
            raise StorageError("logical space must be positive")
        return RegionMap(
            logical_blocks=logical_blocks,
            log_blocks=max(1, int(logical_blocks * log_fraction)),
            index_blocks=max(1, int(logical_blocks * index_fraction)),
            swap_blocks=max(1, int(logical_blocks * swap_fraction)),
        )


class LogAllocator:
    """Append-only allocator over one region, with a free list.

    Blocks freed (when the last reference to a redirected block goes
    away) are recycled in FIFO order before the append frontier moves.
    """

    def __init__(self, base: int, nblocks: int) -> None:
        if nblocks < 0:
            raise StorageError("allocator size must be non-negative")
        self.base = base
        self.nblocks = nblocks
        self._next = base
        self._free: List[int] = []
        self._allocated: Set[int] = set()

    @property
    def end(self) -> int:
        return self.base + self.nblocks

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    @property
    def free_count(self) -> int:
        return self.nblocks - len(self._allocated)

    def allocate(self) -> int:
        """Return a free block, preferring the sequential frontier.

        Sequential-frontier allocation keeps redirected writes mostly
        contiguous, mimicking a log-structured layout.
        """
        if self._next < self.end:
            pba = self._next
            self._next += 1
        elif self._free:
            pba = self._free.pop(0)
        else:
            raise StorageError("log region exhausted")
        self._allocated.add(pba)
        return pba

    def allocate_run(self, n: int) -> List[int]:
        """Allocate ``n`` blocks, contiguous when the frontier allows."""
        return [self.allocate() for _ in range(n)]

    def free(self, pba: int) -> None:
        """Return a block to the allocator."""
        if pba not in self._allocated:
            raise StorageError(f"double free or foreign block {pba}")
        self._allocated.remove(pba)
        self._free.append(pba)

    def owns(self, pba: int) -> bool:
        return self.base <= pba < self.end

    def is_allocated(self, pba: int) -> bool:
        return pba in self._allocated
