"""Write-ahead journal for the NVRAM Map table.

The paper keeps the Map table in NVRAM precisely so it survives power
failures (Section III-B).  Real NVRAM, however, can tear: a power cut
mid-update leaves a suffix of recently written entries in an undefined
state.  :class:`MapJournal` makes that recoverable by logging every
Map-table mutation *before* it is applied (write-ahead, write-through):

* ``append_set(lba, pba)``   -- an LBA was (re)mapped to a PBA.
* ``append_clear(lba)``      -- an LBA's mapping was dropped.

Each :class:`JournalRecord` carries a sequence number and a CRC-32 over
its packed fields.  Recovery (:meth:`MapJournal.replay`) scans forward
and stops at the first record whose CRC does not verify -- the classic
*torn-tail* rule: everything before the tear is trusted, everything
after is discarded.  Replaying the surviving prefix over the last
checkpoint reproduces the logical->physical mapping; reference counts
are re-derived from the mapping itself (they are a pure function of
it), so they need not be journaled.

The journal is a simulation artefact: it models the *structure* of a
persistent log (records, CRCs, checkpoints) without byte-level I/O.
Fault injection uses :meth:`tear_tail` / :meth:`lose_tail` to model a
power cut interrupting the log itself.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.errors import FaultError

#: Record kinds.
KIND_SET = "S"
KIND_CLEAR = "C"


def _crc(seq: int, kind: str, lba: int, pba: int) -> int:
    """CRC-32 over the packed record fields."""
    payload = f"{seq}:{kind}:{lba}:{pba}".encode("ascii")
    return zlib.crc32(payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalRecord:
    """One Map-table mutation, self-checking via CRC-32."""

    seq: int
    kind: str
    lba: int
    pba: int
    crc: int

    @staticmethod
    def make(seq: int, kind: str, lba: int, pba: int) -> "JournalRecord":
        if kind not in (KIND_SET, KIND_CLEAR):
            raise FaultError(f"unknown journal record kind {kind!r}")
        return JournalRecord(seq=seq, kind=kind, lba=lba, pba=pba, crc=_crc(seq, kind, lba, pba))

    def verifies(self) -> bool:
        """True when the stored CRC matches the record contents."""
        return self.crc == _crc(self.seq, self.kind, self.lba, self.pba)


class MapJournal:
    """Write-ahead log of Map-table mutations with checkpointing.

    The journal holds a *checkpoint* (a full LBA->PBA snapshot) plus
    the tail of records appended since.  :meth:`checkpoint` folds the
    tail into the snapshot, bounding replay work.
    """

    def __init__(self) -> None:
        self._checkpoint: Dict[int, int] = {}
        self._records: List[JournalRecord] = []
        self._next_seq = 0
        #: Cumulative counters (monotone; survive checkpoints).
        self.records_appended = 0
        self.checkpoints_taken = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def checkpoint_entries(self) -> int:
        return len(self._checkpoint)

    # ------------------------------------------------------------------
    # appending (called by the Map table, write-ahead)
    # ------------------------------------------------------------------

    def append_set(self, lba: int, pba: int) -> None:
        """Log ``lba -> pba`` (new mapping or remap)."""
        self._append(KIND_SET, lba, pba)

    def append_clear(self, lba: int) -> None:
        """Log the removal of ``lba``'s mapping."""
        self._append(KIND_CLEAR, lba, -1)

    def _append(self, kind: str, lba: int, pba: int) -> None:
        self._records.append(JournalRecord.make(self._next_seq, kind, lba, pba))
        self._next_seq += 1
        self.records_appended += 1

    # ------------------------------------------------------------------
    # fault modelling
    # ------------------------------------------------------------------

    def tear_tail(self, n: int) -> int:
        """Corrupt the CRCs of the last ``n`` records (power cut mid
        log write).  Returns the number of records actually torn."""
        if n < 0:
            raise FaultError("cannot tear a negative number of records")
        torn = min(n, len(self._records))
        for i in range(len(self._records) - torn, len(self._records)):
            rec = self._records[i]
            self._records[i] = replace(rec, crc=rec.crc ^ 0xDEADBEEF)
        return torn

    def lose_tail(self, n: int) -> int:
        """Drop the last ``n`` records entirely (log writes that never
        reached the medium).  Returns the number of records lost."""
        if n < 0:
            raise FaultError("cannot lose a negative number of records")
        lost = min(n, len(self._records))
        if lost:
            del self._records[len(self._records) - lost :]
        return lost

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def replay(self) -> Tuple[Dict[int, int], int, bool]:
        """Rebuild the mapping from checkpoint + surviving records.

        Returns ``(mapping, records_replayed, torn_tail_detected)``.
        The scan stops at the first record that fails its CRC or whose
        sequence number breaks the expected chain; everything after it
        is untrusted and discarded.
        """
        mapping = dict(self._checkpoint)
        replayed = 0
        torn = False
        expected_seq: int | None = None
        for rec in self._records:
            if not rec.verifies():
                torn = True
                break
            if expected_seq is not None and rec.seq != expected_seq:
                torn = True
                break
            expected_seq = rec.seq + 1
            if rec.kind == KIND_SET:
                mapping[rec.lba] = rec.pba
            else:
                mapping.pop(rec.lba, None)
            replayed += 1
        if torn:
            # Discard the untrusted suffix so later appends restart
            # from a clean, verifiable tail.
            del self._records[replayed:]
        return mapping, replayed, torn

    def checkpoint(self, mapping: Dict[int, int]) -> None:
        """Fold ``mapping`` into the checkpoint and truncate the log."""
        self._checkpoint = dict(mapping)
        self._records.clear()
        self.checkpoints_taken += 1
