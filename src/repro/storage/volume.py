"""Logical-volume primitives.

A deduplication scheme plans I/O against the *volume* address space
(physical block addresses, PBAs, spanning the whole array) as a list
of :class:`VolumeOp` extents.  The RAID layer then maps each extent to
per-disk operations.

The :class:`ContentStore` records which fingerprint lives at each PBA.
It is the data-integrity oracle of the simulation: after any sequence
of deduplicated writes, reading back an LBA through a scheme's map
must return the fingerprint most recently written to that LBA.

:func:`coalesce_extents` merges adjacent PBAs into maximal contiguous
runs -- this is where deduplication-induced *fragmentation* becomes
visible: a logically contiguous read whose blocks were deduplicated to
scattered physical locations coalesces into many small extents, each
paying its own seek.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.sim.request import OpType


class VolumeOp:
    """One contiguous extent operation against the volume.

    Hand-written ``__slots__`` class (not a dataclass): schemes create
    one per planned extent, which puts construction on the replay hot
    path.  Treat instances as immutable, like the frozen dataclass
    this used to be.

    Attributes
    ----------
    op:
        READ or WRITE.
    pba:
        First physical block address (volume-wide, in 4 KB blocks).
    nblocks:
        Extent length in blocks.
    """

    __slots__ = ("op", "pba", "nblocks")

    op: OpType
    pba: int
    nblocks: int

    def __init__(self, op: OpType, pba: int, nblocks: int) -> None:
        if pba < 0:
            raise StorageError(f"negative PBA {pba}")
        if nblocks < 1:
            raise StorageError(f"extent length must be >= 1, got {nblocks}")
        self.op = op
        self.pba = pba
        self.nblocks = nblocks

    @property
    def end_pba(self) -> int:
        return self.pba + self.nblocks

    def __repr__(self) -> str:
        return f"VolumeOp(op={self.op!r}, pba={self.pba}, nblocks={self.nblocks})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VolumeOp):
            return NotImplemented
        return (
            self.op is other.op
            and self.pba == other.pba
            and self.nblocks == other.nblocks
        )

    def __hash__(self) -> int:
        return hash((self.op, self.pba, self.nblocks))


def coalesce_extents(pbas: Sequence[int]) -> List[Tuple[int, int]]:
    """Merge a sorted-or-not sequence of PBAs into ``(start, length)`` runs.

    Consecutive addresses merge; duplicates are kept once.  The input
    order does not matter -- a disk read of a set of blocks is planned
    as the minimal set of contiguous extents.

    >>> coalesce_extents([7, 3, 4, 5, 9])
    [(3, 3), (7, 1), (9, 1)]
    """
    if not pbas:
        return []
    ordered = sorted(set(pbas))
    runs: List[Tuple[int, int]] = []
    start = prev = ordered[0]
    for pba in ordered[1:]:
        if pba == prev + 1:
            prev = pba
            continue
        runs.append((start, prev - start + 1))
        start = prev = pba
    runs.append((start, prev - start + 1))
    return runs


def extents_to_ops(op: OpType, pbas: Sequence[int]) -> List[VolumeOp]:
    """Plan the minimal list of :class:`VolumeOp` covering ``pbas``."""
    return [VolumeOp(op, start, length) for start, length in coalesce_extents(pbas)]


class ContentStore:
    """Fingerprint-at-PBA bookkeeping for integrity checking.

    This models *what is on the platters*.  It is not consulted for
    timing -- only for correctness assertions in tests and for
    capacity accounting.
    """

    def __init__(self, total_blocks: int) -> None:
        if total_blocks <= 0:
            raise StorageError("volume capacity must be positive")
        self.total_blocks = total_blocks
        self._content: Dict[int, int] = {}

    def __len__(self) -> int:
        """Number of physically occupied blocks."""
        return len(self._content)

    def write(self, pba: int, fingerprint: int) -> None:
        """Record that ``fingerprint`` now lives at ``pba``."""
        self._check(pba)
        self._content[pba] = fingerprint

    def write_run(self, pba: int, fingerprints: Iterable[int]) -> None:
        """Write a contiguous run starting at ``pba``."""
        for i, fp in enumerate(fingerprints):
            self.write(pba + i, fp)

    def read(self, pba: int) -> Optional[int]:
        """Fingerprint stored at ``pba``, or ``None`` if never written."""
        self._check(pba)
        return self._content.get(pba)

    def discard(self, pba: int) -> None:
        """Mark ``pba`` free (e.g. after space reclamation)."""
        self._check(pba)
        self._content.pop(pba, None)

    def occupied_blocks(self) -> int:
        """Capacity-in-use, in blocks (what Fig. 10 reports)."""
        return len(self._content)

    def _check(self, pba: int) -> None:
        if not (0 <= pba < self.total_blocks):
            raise StorageError(f"PBA {pba} outside volume of {self.total_blocks} blocks")
