"""RAID address mapping and small-write handling.

The paper evaluates on a 4-disk software RAID-5 with a 64 KB stripe
unit (Section IV-B).  This module maps volume extents to per-disk
operations:

* **RAID-0** -- pure striping, no redundancy.
* **RAID-5** -- left-symmetric parity rotation.  Partial-stripe writes
  pay the classic read-modify-write penalty (read old data + old
  parity, write new data + new parity); writes covering a full stripe
  compute parity in memory and issue one write per member disk.

The small-write parity penalty is a first-order reason why removing
small redundant writes (what POD does) helps so much on RAID-5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import StorageError
from repro.sim.request import DiskOp, OpType
from repro.storage.volume import VolumeOp


class RaidLevel(enum.Enum):
    """Supported array layouts."""

    RAID0 = 0
    RAID5 = 5
    #: A single disk, no striping -- used by unit tests and for the
    #: single-spindle sanity experiments.
    SINGLE = 1


@dataclass(frozen=True)
class RaidGeometry:
    """Static geometry of an array."""

    level: RaidLevel
    ndisks: int
    stripe_unit_blocks: int = BLOCKS_PER_STRIPE_UNIT

    def __post_init__(self) -> None:
        if self.ndisks < 1:
            raise StorageError("array needs at least one disk")
        if self.level is RaidLevel.RAID5 and self.ndisks < 3:
            raise StorageError("RAID-5 needs at least 3 disks")
        if self.level is RaidLevel.SINGLE and self.ndisks != 1:
            raise StorageError("SINGLE level means exactly one disk")
        if self.stripe_unit_blocks < 1:
            raise StorageError("stripe unit must be >= 1 block")

    @property
    def data_disks(self) -> int:
        """Number of stripe units per row that hold data."""
        if self.level is RaidLevel.RAID5:
            return self.ndisks - 1
        return self.ndisks


class RaidArray:
    """Maps volume extents to member-disk operations.

    ``volume_blocks(disk_blocks)`` tells how much user-visible volume
    space an array of disks with the given per-disk capacity exposes.
    """

    def __init__(self, geometry: RaidGeometry) -> None:
        self.geometry = geometry

    # ------------------------------------------------------------------
    # address arithmetic
    # ------------------------------------------------------------------

    def volume_capacity_blocks(self, per_disk_blocks: int) -> int:
        """User-visible capacity for the given member-disk size."""
        g = self.geometry
        rows = per_disk_blocks // g.stripe_unit_blocks
        return rows * g.data_disks * g.stripe_unit_blocks

    def parity_disk_of_row(self, row: int) -> int:
        """Member disk holding the parity unit of ``row`` (left-symmetric)."""
        g = self.geometry
        if g.level is not RaidLevel.RAID5:
            raise StorageError("parity only exists on RAID-5")
        return (g.ndisks - 1) - (row % g.ndisks)

    def locate(self, pba: int) -> Tuple[int, int, int]:
        """Map a volume block to ``(disk_id, disk_pba, row)``.

        The mapping is bijective from volume blocks to non-parity
        ``(disk, block)`` slots, which the property tests verify.
        """
        g = self.geometry
        if pba < 0:
            raise StorageError(f"negative volume PBA {pba}")
        unit, offset = divmod(pba, g.stripe_unit_blocks)
        row, lane = divmod(unit, g.data_disks)
        if g.level is RaidLevel.RAID5:
            parity = self.parity_disk_of_row(row)
            # Left-symmetric: data lanes start just after the parity
            # disk and wrap around the array.
            disk = (parity + 1 + lane) % g.ndisks
        else:
            disk = lane % g.ndisks
        disk_pba = row * g.stripe_unit_blocks + offset
        return disk, disk_pba, row

    # ------------------------------------------------------------------
    # op translation
    # ------------------------------------------------------------------

    def map_read(self, op: VolumeOp) -> List[DiskOp]:
        """Translate a volume read extent into per-disk reads.

        Contiguous fragments on the same disk row merge into a single
        disk op.
        """
        if op.op is not OpType.READ:
            raise StorageError("map_read called with a write op")
        return self._split(op.pba, op.nblocks, OpType.READ)

    def map_write(self, op: VolumeOp) -> List[DiskOp]:
        """Translate a volume write extent, including parity traffic.

        For RAID-5, rows fully covered by the write become full-stripe
        writes (data writes plus one parity write, no reads).  Rows
        partially covered pay read-modify-write: for each touched
        fragment, read old data and old parity, then write new data
        and new parity.
        """
        if op.op is not OpType.WRITE:
            raise StorageError("map_write called with a read op")
        g = self.geometry
        data_ops = self._split(op.pba, op.nblocks, OpType.WRITE)
        if g.level is not RaidLevel.RAID5:
            return data_ops

        row_blocks = g.data_disks * g.stripe_unit_blocks
        ops: List[DiskOp] = []
        # Group the write by parity row.
        by_row: Dict[int, List[Tuple[int, int]]] = {}
        pba, remaining = op.pba, op.nblocks
        while remaining > 0:
            row = pba // row_blocks
            row_end = (row + 1) * row_blocks
            take = min(remaining, row_end - pba)
            by_row.setdefault(row, []).append((pba, take))
            pba += take
            remaining -= take

        for row, frags in sorted(by_row.items()):
            covered = sum(n for _, n in frags)
            parity = self.parity_disk_of_row(row)
            row_base_disk_pba = row * g.stripe_unit_blocks
            if covered == row_blocks:
                # Full-stripe write: parity computed in memory.
                for start, n in frags:
                    ops.extend(self._split(start, n, OpType.WRITE))
                ops.append(
                    DiskOp(parity, OpType.WRITE, row_base_disk_pba, g.stripe_unit_blocks)
                )
                continue
            # Read-modify-write: per fragment, read+write the data and
            # the corresponding parity byte range.
            parity_ranges: List[Tuple[int, int]] = []
            for start, n in frags:
                for dop in self._split(start, n, OpType.WRITE):
                    ops.append(DiskOp(dop.disk_id, OpType.READ, dop.pba, dop.nblocks))
                    ops.append(dop)
                    parity_ranges.append((dop.pba, dop.nblocks))
            for p_start, p_len in _merge_ranges(parity_ranges):
                ops.append(DiskOp(parity, OpType.READ, p_start, p_len))
                ops.append(DiskOp(parity, OpType.WRITE, p_start, p_len))
        return ops

    def map(self, op: VolumeOp) -> List[DiskOp]:
        """Translate any volume op."""
        if op.op is OpType.READ:
            return self.map_read(op)
        return self.map_write(op)

    # ------------------------------------------------------------------
    # degraded mode (one failed member)
    # ------------------------------------------------------------------

    def map_read_degraded(self, op: VolumeOp, failed_disk: int) -> List[DiskOp]:
        """Translate a read with one member disk failed.

        Fragments on surviving disks read normally; every fragment
        that would land on the failed disk is *reconstructed*: the
        same block range is read from every other member of its row
        (data peers + parity) and XOR-ed -- the classic RAID-5
        degraded read, which multiplies the read traffic of affected
        rows by ``ndisks - 1``.
        """
        g = self.geometry
        if g.level is not RaidLevel.RAID5:
            raise StorageError("degraded reads only exist on RAID-5")
        if not (0 <= failed_disk < g.ndisks):
            raise StorageError(f"no member disk {failed_disk}")
        ops: List[DiskOp] = []
        for fragment in self._split(op.pba, op.nblocks, OpType.READ):
            if fragment.disk_id != failed_disk:
                ops.append(fragment)
                continue
            for disk in range(g.ndisks):
                if disk != failed_disk:
                    ops.append(
                        DiskOp(disk, OpType.READ, fragment.pba, fragment.nblocks)
                    )
        return ops

    def map_degraded(self, op: VolumeOp, failed_disk: int) -> List[DiskOp]:
        """Translate any op with one failed member.

        Degraded writes: fragments for surviving disks proceed as
        read-modify-write where possible; a fragment addressed to the
        failed disk updates *parity only*, computed by
        reconstruct-write (read the surviving data blocks of the row,
        write the new parity).  Parity fragments on the failed disk
        are simply dropped.
        """
        if op.op is OpType.READ:
            return self.map_read_degraded(op, failed_disk)
        g = self.geometry
        if g.level is not RaidLevel.RAID5:
            raise StorageError("degraded writes only exist on RAID-5")
        if not (0 <= failed_disk < g.ndisks):
            raise StorageError(f"no member disk {failed_disk}")
        ops: List[DiskOp] = []
        for full_op in self.map_write(op):
            if full_op.disk_id != failed_disk:
                ops.append(full_op)
                continue
            if full_op.op is OpType.READ:
                # Old value needed for RMW but the disk is gone:
                # reconstruct it from the row's survivors.
                for disk in range(g.ndisks):
                    if disk != failed_disk:
                        ops.append(
                            DiskOp(disk, OpType.READ, full_op.pba, full_op.nblocks)
                        )
            # Writes to the failed disk are dropped: the data lives
            # implicitly in the (updated) parity until rebuild.
        return ops

    # ------------------------------------------------------------------

    def _split(self, pba: int, nblocks: int, op: OpType) -> List[DiskOp]:
        """Split a volume extent at stripe-unit boundaries and merge
        contiguous same-disk fragments."""
        g = self.geometry
        raw: List[DiskOp] = []
        remaining = nblocks
        cur = pba
        while remaining > 0:
            disk, disk_pba, _row = self.locate(cur)
            unit_end = (cur // g.stripe_unit_blocks + 1) * g.stripe_unit_blocks
            take = min(remaining, unit_end - cur)
            raw.append(DiskOp(disk, op, disk_pba, take))
            cur += take
            remaining -= take
        # Merge fragments contiguous on the same disk (happens when a
        # large extent wraps around a row back to the same disk).
        merged: List[DiskOp] = []
        for dop in raw:
            if (
                merged
                and merged[-1].disk_id == dop.disk_id
                and merged[-1].pba + merged[-1].nblocks == dop.pba
            ):
                prev = merged.pop()
                merged.append(DiskOp(prev.disk_id, op, prev.pba, prev.nblocks + dop.nblocks))
            else:
                merged.append(dop)
        return merged


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent ``(start, length)`` ranges."""
    if not ranges:
        return []
    ordered = sorted(ranges)
    out: List[Tuple[int, int]] = [ordered[0]]
    for start, length in ordered[1:]:
        last_start, last_len = out[-1]
        if start <= last_start + last_len:
            end = max(last_start + last_len, start + length)
            out[-1] = (last_start, end - last_start)
        else:
            out.append((start, length))
    return out
