"""RAID-5 rebuild: reconstructing a failed member onto a spare.

The paper's authors study reconstruction performance elsewhere (IDO,
LISA'12) and motivate POD partly through RAID-5's write economics, so
the natural extension question is: *does deduplication help rebuild?*
A rebuild reads every surviving member's stripe unit of each row and
writes the reconstructed unit to the spare -- full-bandwidth work that
competes with foreground traffic for the same spindles.

:class:`RebuildController` walks the rows in batches:

* **capacity-oblivious** (default) -- every row is rebuilt, like `md`
  without a write-intent bitmap;
* **capacity-aware** -- rows holding no live data are skipped (the
  controller is given the set of live volume blocks, which a dedup
  scheme shrinks); this is the dedup-rebuild synergy measured by
  ``benchmarks/bench_ablation_rebuild.py``.

The controller only *plans* disk ops; the replay harness paces the
batches and charges them as background load.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.sim.request import DiskOp, OpType
from repro.storage.raid import RaidArray, RaidLevel


class RebuildController:
    """Plans the row-by-row reconstruction of one failed member."""

    def __init__(
        self,
        raid: RaidArray,
        failed_disk: int,
        disk_rows: int,
        live_pbas: Optional[Iterable[int]] = None,
    ) -> None:
        g = raid.geometry
        if g.level is not RaidLevel.RAID5:
            raise StorageError("rebuild only exists on RAID-5")
        if not (0 <= failed_disk < g.ndisks):
            raise StorageError(f"no member disk {failed_disk}")
        if disk_rows < 1:
            raise StorageError("need at least one row to rebuild")
        self.raid = raid
        self.failed_disk = failed_disk
        self.disk_rows = disk_rows
        self._next_row = 0
        self.rows_rebuilt = 0
        self.rows_skipped = 0
        #: Total rows examined by :meth:`next_batch` (rebuilt + skipped);
        #: the unit in which per-batch work is bounded.
        self.rows_scanned = 0
        #: Rows containing at least one live block, or None = all rows.
        self._live_rows: Optional[Set[int]] = None
        if live_pbas is not None:
            su = g.stripe_unit_blocks
            row_blocks = g.data_disks * su
            self._live_rows = {pba // row_blocks for pba in live_pbas}

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._next_row >= self.disk_rows

    @property
    def progress(self) -> float:
        """Fraction of rows processed (rebuilt or skipped)."""
        return self._next_row / self.disk_rows

    @property
    def cursor(self) -> int:
        """Committed scan cursor: the next row to examine."""
        return self._next_row

    def plan_rows(self, start_row: int, rows: int) -> Tuple[List[DiskOp], int]:
        """Plan reconstruction traffic for ``rows`` rows from
        ``start_row`` *without* advancing any state.

        Pure with respect to controller state so a leased-job worker
        can re-plan the same step after a stale-lease re-claim; the
        legacy pacing path composes this with :meth:`commit_rows`.
        Returns ``(ops, next_row)``.
        """
        if rows < 1:
            raise StorageError("batch must cover at least one row")
        g = self.raid.geometry
        su = g.stripe_unit_blocks
        ops: List[DiskOp] = []
        end = min(start_row + rows, self.disk_rows)
        if end < start_row:
            end = start_row
        for row in range(start_row, end):
            if self._live_rows is not None and row not in self._live_rows:
                continue
            disk_pba = row * su
            for disk in range(g.ndisks):
                if disk != self.failed_disk:
                    ops.append(DiskOp(disk, OpType.READ, disk_pba, su))
            ops.append(DiskOp(self.failed_disk, OpType.WRITE, disk_pba, su))
        return ops, end

    def commit_rows(self, start_row: int, next_row: int) -> None:
        """Apply one planned batch: advance the cursor and counters.

        Rejects a commit whose start does not match the committed
        cursor -- the hard stop against a fenced worker's step being
        double-applied.
        """
        if start_row != self._next_row:
            raise StorageError(
                f"rebuild commit at row {start_row} does not match the "
                f"committed cursor {self._next_row}"
            )
        if next_row < start_row or next_row > self.disk_rows:
            raise StorageError(
                f"rebuild commit range [{start_row}, {next_row}) out of bounds"
            )
        for row in range(start_row, next_row):
            self.rows_scanned += 1
            if self._live_rows is not None and row not in self._live_rows:
                self.rows_skipped += 1
            else:
                self.rows_rebuilt += 1
        self._next_row = next_row

    def next_batch(self, rows: int = 1) -> List[DiskOp]:
        """Plan the next ``rows`` rows' reconstruction traffic.

        Each rebuilt row costs one stripe-unit read per surviving
        member plus one stripe-unit write to the spare (modelled as
        the failed slot's replacement, same disk id).  Rows with no
        live data are skipped in capacity-aware mode.

        Work is bounded by rows *scanned*, not rows rebuilt: a batch
        over a sparse disk examines at most ``rows`` rows even when
        every one of them is skipped.  (The earlier behaviour --
        decrementing the budget only for rebuilt rows -- let a single
        call walk arbitrarily many rows on a mostly-empty disk,
        defeating the pacing the replay harness relies on.)

        Equivalent to :meth:`plan_rows` + :meth:`commit_rows` in one
        call (the jobs-off pacing path).
        """
        ops, end = self.plan_rows(self._next_row, rows)
        self.commit_rows(self._next_row, end)
        return ops
