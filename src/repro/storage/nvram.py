"""NVRAM byte accounting for the Map table.

The paper stores the Map table in non-volatile RAM to survive power
failures and reports its footprint as an overhead metric: 20 bytes per
entry, peaking at 0.8 / 0.3 / 1.5 MB for web-vm / homes / mail
(Section IV-D.2).  This meter tracks the live entry count and the
high-water mark so the overhead bench can reproduce that table.
"""

from __future__ import annotations

from repro.constants import MAP_ENTRY_SIZE
from repro.errors import DedupError


class NvramMeter:
    """Tracks live Map-table entries and their NVRAM footprint."""

    def __init__(self, entry_size: int = MAP_ENTRY_SIZE) -> None:
        if entry_size <= 0:
            raise DedupError("entry size must be positive")
        self.entry_size = entry_size
        self._entries = 0
        self._peak_entries = 0

    @property
    def entries(self) -> int:
        """Current number of live entries."""
        return self._entries

    @property
    def peak_entries(self) -> int:
        """High-water mark of live entries."""
        return self._peak_entries

    @property
    def bytes_used(self) -> int:
        return self._entries * self.entry_size

    @property
    def peak_bytes(self) -> int:
        """Maximum NVRAM ever needed (the number the paper reports)."""
        return self._peak_entries * self.entry_size

    def add(self, n: int = 1) -> None:
        """Record ``n`` new entries."""
        if n < 0:
            raise DedupError("use remove() to drop entries")
        self._entries += n
        if self._entries > self._peak_entries:
            self._peak_entries = self._entries

    def remove(self, n: int = 1) -> None:
        """Record ``n`` dropped entries."""
        if n < 0:
            raise DedupError("negative removal")
        if n > self._entries:
            raise DedupError("removing more entries than exist")
        self._entries -= n

    def resync(self, entries: int) -> None:
        """Reset the live-entry count after crash recovery.

        Journal replay rebuilds the Map table wholesale; the meter is
        resynchronised to the recovered entry count.  The high-water
        mark is monotone: it only moves up.
        """
        if entries < 0:
            raise DedupError("entry count must be non-negative")
        self._entries = entries
        if entries > self._peak_entries:
            self._peak_entries = entries
