"""The Index table: in-memory LRU of *hot* fingerprint entries.

From Section III-B:

  "In order to reduce the memory space and processing overhead
  required to store and query the huge hash index table, POD only
  stores the hot hash index entries in memory.  The Index table [...]
  is organized in an LRU form and maintains the frequency of write
  requests by using the Count variable (initialized to 0).  When a
  write request hits the Index table, the count value of the
  corresponding hash index entry is incremented."

A lookup miss therefore means "treat the chunk as unique" -- POD never
does on-disk index lookups (that is Full-Dedupe's bottleneck, Section
II-B).  The table keeps a reverse PBA -> fingerprint map so that
overwriting a physical block invalidates any stale entry pointing at
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Optional, Tuple

from repro.cache.lru import LRUCache
from repro.constants import INDEX_ENTRY_SIZE
from repro.errors import DedupError


@dataclass
class IndexEntry:
    """One hot fingerprint: where its data lives and how popular it is."""

    pba: int
    count: int = 0


class IndexTable:
    """Fingerprint -> :class:`IndexEntry` over a shared LRU cache.

    The byte budget of the underlying :class:`LRUCache` is owned by
    the cache-partition object (fixed or iCache), so resizing the
    partition transparently shrinks/grows this table.
    """

    def __init__(self, lru: LRUCache) -> None:
        if lru.default_entry_size != INDEX_ENTRY_SIZE:
            raise DedupError(
                "index table expects an LRU sized in "
                f"{INDEX_ENTRY_SIZE}-byte entries"
            )
        self.lru = lru
        self._by_pba: Dict[int, int] = {}
        #: Evicted fingerprints since last drain (fed to ghost caches).
        self._evicted: List[Tuple[int, IndexEntry]] = []

    def __len__(self) -> int:
        return len(self.lru)

    def __contains__(self, fingerprint: int) -> bool:
        return fingerprint in self.lru

    # ------------------------------------------------------------------

    def lookup(self, fingerprint: int) -> Optional[IndexEntry]:
        """Query a write chunk's fingerprint.

        A hit promotes the entry and increments its ``Count``
        (capturing the temporal locality and frequency of writes).
        """
        entry = self.lru.get(fingerprint)
        if entry is None:
            return None
        entry.count += 1
        return entry

    def peek(self, fingerprint: int) -> Optional[IndexEntry]:
        """Query without promoting or counting (stats/tests)."""
        return self.lru.peek(fingerprint)

    @property
    def pba_claims(self) -> "MappingProxyType[int, int]":
        """Read-only live view of the reverse PBA -> fingerprint map.

        The sanctioned inspection surface for validators: the POD
        sanitizer checks this map is an exact bijection with the live
        entries (``INV-INDEX-PBA``).
        """
        return MappingProxyType(self._by_pba)

    def insert(self, fingerprint: int, pba: int) -> IndexEntry:
        """Insert a new hot entry with ``Count = 0``.

        If another fingerprint already claims ``pba`` the stale claim
        is dropped first (the block's content has changed).
        """
        self.invalidate_pba(pba)
        stale = self.lru.peek(fingerprint)
        if stale is not None:
            self._by_pba.pop(stale.pba, None)
        entry = IndexEntry(pba=pba, count=0)
        victims = self.lru.put(fingerprint, entry)
        self._by_pba[pba] = fingerprint
        for key, value, _size in victims:
            if key == fingerprint:
                # Entry was larger than the cache; nothing was kept.
                self._by_pba.pop(pba, None)
            else:
                self._by_pba.pop(value.pba, None)
                self._evicted.append((key, value))
        return entry

    def remove(self, fingerprint: int) -> bool:
        """Drop an entry (not counted as an eviction)."""
        entry = self.lru.peek(fingerprint)
        if entry is None:
            return False
        self._by_pba.pop(entry.pba, None)
        return self.lru.remove(fingerprint)

    def invalidate_pba(self, pba: int) -> bool:
        """The content at ``pba`` is about to change: drop any entry
        pointing at it so future lookups cannot dedupe onto stale data."""
        fingerprint = self._by_pba.pop(pba, None)
        if fingerprint is None:
            return False
        self.lru.remove(fingerprint)
        return True

    def resize(self, new_capacity_bytes: int) -> List[Tuple[int, IndexEntry]]:
        """Change the table's byte budget (iCache repartitioning).

        Returns the evicted ``(fingerprint, entry)`` pairs, with the
        PBA reverse map kept consistent -- resizing the underlying LRU
        directly would leave stale PBA claims behind that block later
        swap-ins and invalidations.
        """
        out: List[Tuple[int, IndexEntry]] = []
        for key, value, _size in self.lru.resize(new_capacity_bytes):
            self._by_pba.pop(value.pba, None)
            out.append((key, value))
        return out

    def restore(self, fingerprint: int, entry: IndexEntry) -> bool:
        """Swap a previously evicted entry back in (iCache swap-in).

        Unlike :meth:`insert`, restoring does not treat the entry as a
        claim about fresh content: it only succeeds when the slot is
        free, the fingerprint is not already present, and no other
        fingerprint currently claims the entry's PBA.
        """
        if self.lru.free_bytes < self.lru.default_entry_size:
            return False
        if fingerprint in self.lru or entry.pba in self._by_pba:
            return False
        victims = self.lru.put(fingerprint, entry)
        if victims:  # pragma: no cover - free space was checked above
            for key, value, _size in victims:
                self._by_pba.pop(value.pba, None)
                self._evicted.append((key, value))
        self._by_pba[entry.pba] = fingerprint
        return True

    def drain_evicted(self) -> List[Tuple[int, IndexEntry]]:
        """Return and clear the evictions since the last drain.

        The iCache feeds these into its ghost index cache.
        """
        out = self._evicted
        self._evicted = []
        return out

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self.lru),
            "hits": self.lru.hits,
            "misses": self.lru.misses,
            "hit_ratio": self.lru.hit_ratio,
        }
