"""The Map table: LBA -> PBA indirection with reference counting.

From Section III-B of the paper:

  "The Map table keeps all the information of the deduplicated write
  requests whose write data are already stored on disks. [...] The
  mapping relationship between the items in Map table and the items in
  Index table is m-to-1.  This means that an LBA can only be linked to
  a unique and distinctive physical data block but multiple LBAs may
  be linked to the same physical data block. [...] To prevent data
  loss in case of a power failure, the Map table data structure is
  stored in non-volatile RAM."

Only *redirected* LBAs have entries; an LBA without an entry maps to
its home physical block (in-place layout).  Reference counts on PBAs
implement the Request Redirector's consistency rule: a physical block
referenced by any LBA must never be overwritten in place.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Iterable, Optional, Set

from repro.errors import DedupError
from repro.storage.allocator import RegionMap
from repro.storage.journal import MapJournal
from repro.storage.nvram import NvramMeter


class MapTable:
    """LBA -> PBA indirection over a :class:`RegionMap` home layout."""

    def __init__(self, regions: RegionMap, nvram: Optional[NvramMeter] = None) -> None:
        self.regions = regions
        self.nvram = nvram if nvram is not None else NvramMeter()
        self._map: Dict[int, int] = {}
        self._refs: Dict[int, int] = {}
        #: Optional write-ahead journal; attached by fault-tolerant
        #: configurations (see :mod:`repro.storage.journal`).
        self.journal: Optional[MapJournal] = None

    def attach_journal(self, journal: MapJournal) -> None:
        """Start write-ahead logging of every mutation.

        The journal is checkpointed with the current mapping so replay
        from this point reconstructs the full table.
        """
        journal.checkpoint(self._map)
        self.journal = journal

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of explicit (redirected) entries."""
        return len(self._map)

    def translate(self, lba: int) -> int:
        """Physical block currently backing ``lba``."""
        pba = self._map.get(lba)
        if pba is not None:
            return pba
        return self.regions.home_of(lba)

    def translate_many(self, lbas: Iterable[int]) -> list:
        """Translate a batch of LBAs (read-path helper)."""
        return [self.translate(lba) for lba in lbas]

    def is_redirected(self, lba: int) -> bool:
        return lba in self._map

    @property
    def mapping(self) -> "MappingProxyType[int, int]":
        """Read-only live view of the explicit LBA -> PBA entries.

        The sanctioned inspection surface for validators (the POD
        sanitizer re-derives refcounts from it); a
        :class:`~types.MappingProxyType` so observers cannot mutate
        table state.  Use :meth:`snapshot` for a detached copy.
        """
        return MappingProxyType(self._map)

    @property
    def refcounts(self) -> "MappingProxyType[int, int]":
        """Read-only live view of the per-PBA reference counts."""
        return MappingProxyType(self._refs)

    def refs(self, pba: int) -> int:
        """Number of explicit map entries referencing ``pba``."""
        return self._refs.get(pba, 0)

    def is_referenced(self, pba: int) -> bool:
        """True if overwriting ``pba`` in place would corrupt some LBA
        other than its implicit home owner."""
        return self.refs(pba) > 0

    def referencing_lbas(self, pba: int) -> Set[int]:
        """All LBAs explicitly mapped to ``pba`` (O(n); tests only)."""
        return {lba for lba, p in self._map.items() if p == pba}

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def set_mapping(self, lba: int, pba: int) -> Optional[int]:
        """Point ``lba`` at ``pba``.

        Returns the previously mapped PBA whose reference count
        dropped to zero (so the caller can reclaim it if it is a log
        block), or ``None``.

        Mapping an LBA to its own home block is stored as *no entry*
        (identity), keeping the table minimal -- the paper sizes NVRAM
        by deduplicated writes only.
        """
        self.regions.home_of(lba)  # validates the LBA range
        if pba < 0 or pba >= self.regions.total_blocks:
            raise DedupError(f"PBA {pba} outside the volume")
        freed = self.clear_mapping(lba)
        if pba != self.regions.home_of(lba):
            if self.journal is not None:
                self.journal.append_set(lba, pba)  # write-ahead
            self._map[lba] = pba
            self._refs[pba] = self._refs.get(pba, 0) + 1
            self.nvram.add(1)
        return freed

    def clear_mapping(self, lba: int) -> Optional[int]:
        """Return ``lba`` to its identity (home) mapping.

        Returns the PBA that became unreferenced, if any.
        """
        if lba in self._map and self.journal is not None:
            self.journal.append_clear(lba)  # write-ahead
        old = self._map.pop(lba, None)
        if old is None:
            return None
        self.nvram.remove(1)
        count = self._refs.get(old, 0)
        if count <= 0:
            raise DedupError(f"refcount underflow on PBA {old}")
        if count == 1:
            del self._refs[old]
            return old
        self._refs[old] = count - 1
        return None

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[int, int]:
        """Copy of the explicit (redirected) mapping."""
        return dict(self._map)

    def restore_mapping(self, mapping: Dict[int, int]) -> None:
        """Rebuild the table wholesale from a recovered mapping.

        Used by crash recovery: the journal replay yields the trusted
        LBA -> PBA mapping; reference counts are a pure function of it
        and are re-derived here.  The NVRAM meter is resynchronised and
        the journal (if attached) is checkpointed at the restored
        state.
        """
        refs: Dict[int, int] = {}
        for lba, pba in mapping.items():
            self.regions.home_of(lba)  # validates the LBA range
            if pba < 0 or pba >= self.regions.total_blocks:
                raise DedupError(f"recovered PBA {pba} outside the volume")
            refs[pba] = refs.get(pba, 0) + 1
        self._map = dict(mapping)
        self._refs = refs
        self.nvram.resync(len(self._map))
        if self.journal is not None:
            self.journal.checkpoint(self._map)

    # ------------------------------------------------------------------
    # write-target policy (the Request Redirector's consistency rule)
    # ------------------------------------------------------------------

    def choose_write_target(self, lba: int) -> Optional[int]:
        """Where may a *non-deduplicated* write of ``lba`` land in place?

        Returns a PBA safe to overwrite, or ``None`` if the caller
        must allocate a fresh (log) block:

        * the home block, when nothing references it -- the common
          in-place case (also reclaims a stale redirection);
        * the currently mapped block, when ``lba`` is its only
          referencer *and* the block lives in the log region (a
          private copy-on-write block, safe to update in place).  A
          block in the home region is never updated through a foreign
          mapping: it is some other LBA's home, and that LBA's
          implicit claim is not visible to the reference counts;
        * otherwise ``None`` -- every candidate is shared.
        """
        home = self.regions.home_of(lba)
        current = self.translate(lba)
        if not self.is_referenced(home):
            return home
        if (
            current != home
            and self.regions.is_log(current)
            and self.refs(current) == 1
            and self._map.get(lba) == current
        ):
            return current
        return None

    def live_pbas(self, written_lbas: Iterable[int]) -> Set[int]:
        """Distinct physical blocks backing the given logical blocks.

        This is the capacity-in-use measure of Figure 10: every
        written LBA resolves to exactly one physical block; shared
        blocks are counted once.
        """
        if not self._map:
            # No redirections: every LBA sits at its home block, which
            # is the LBA itself (``home_base`` is 0).  Skips a method
            # call per written block on the no-dedup reporting path.
            return set(written_lbas)
        get = self._map.get
        home_of = self.regions.home_of
        out: Set[int] = set()
        add = out.add
        for lba in written_lbas:
            pba = get(lba)
            add(home_of(lba) if pba is None else pba)
        return out
