"""Content-defined chunking (CDC) as a fingerprint transform.

The paper's POD system chunks at a fixed 4 KB block granularity.  Real
primary-storage deduplicators frequently use *content-defined*
chunking instead: a rolling hash (Gear or Rabin) over the data stream
picks chunk boundaries wherever the hash matches a mask, so an insert
near the front of a file shifts boundaries only locally and downstream
duplicate detection still works.

This simulator operates on per-block fingerprints rather than raw
bytes, so CDC is modelled as a *fingerprint transform* ahead of the
dedup planner:

* A Gear rolling hash runs over the stream of write-chunk tokens (one
  byte-sized token derived from each block fingerprint).  The hash
  state persists across requests -- CDC boundaries are a property of
  the written stream, not of request framing.
* A cut is declared at a block whose hash matches the average-size
  mask, subject to ``min_blocks``/``max_blocks`` bounds (the classic
  normalised-chunking rules).
* Every block between two cuts belongs to one variable-size chunk.
  Its *effective* fingerprint is ``(anchor << OFFSET_BITS) | offset``,
  where ``anchor`` is the raw fingerprint of the chunk's first block
  and ``offset`` is the block's position inside the chunk.  Two blocks
  deduplicate iff they sit at the same offset of identically-anchored
  chunks -- the block-granularity shadow of "same content at the same
  chunk-relative position".  The encoding is injective, so the
  transform introduces no false duplicates.

The transform preserves request shape (``n`` fingerprints in, ``n``
out), which keeps the entire commit path untouched: schemes simply
see a different notion of chunk identity.  It is deterministic and
stream-order-dependent, and both replay paths (object and columnar)
drive it through the same code in the same arrival order, so columnar
replay stays bit-identical with chunking enabled.

A byte-level vectorized Gear (:func:`gear_hashes` /
:func:`cut_points`) is also provided for chunking raw content
payloads; the trace-replay transform above shares its gear table and
cut rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "ChunkingConfig",
    "ChunkTransform",
    "gear_hashes",
    "cut_points",
    "GEAR_TABLE",
    "RABIN_TABLE",
    "RABIN_MULTIPLIER",
    "RABIN_WINDOW",
]

_MASK64 = (1 << 64) - 1

#: Bits reserved for the block offset inside a content-defined chunk;
#: bounds ``max_blocks`` (offsets must stay addressable).
OFFSET_BITS = 6
MAX_CHUNK_BLOCKS = 1 << OFFSET_BITS


def _splitmix64(x: int) -> int:
    """SplitMix64 step: the standard way to expand a seed into a
    high-quality 64-bit stream (used for the gear table)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _make_gear_table(seed: int = 0x504F44) -> Tuple[int, ...]:
    table = []
    x = seed
    for _ in range(256):
        x = (x + 0x9E3779B97F4A7C15) & _MASK64
        table.append(_splitmix64(x))
    return tuple(table)


#: The 256-entry Gear table (deterministic; shared by the byte-level
#: and block-token hashes so results are stable across runs).
GEAR_TABLE: Tuple[int, ...] = _make_gear_table()

_GEAR_NP = np.asarray(GEAR_TABLE, dtype=np.uint64)


def _make_rabin_table(seed: int = 0x504F44) -> Tuple[Tuple[int, ...], int]:
    """Rabin polynomial table + multiplier from the *same* splitmix64
    stream as the gear table: the first 256 draws are the gear table's
    (burned here so the two tables share a seed yet never an entry),
    the next 256 are the token polynomials, and one final draw (forced
    odd, hence invertible mod 2^64) is the rolling multiplier."""
    x = seed
    for _ in range(256):
        x = (x + 0x9E3779B97F4A7C15) & _MASK64
    table = []
    for _ in range(256):
        x = (x + 0x9E3779B97F4A7C15) & _MASK64
        table.append(_splitmix64(x))
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    return tuple(table), _splitmix64(x) | 1


#: The Rabin token table and rolling multiplier (splitmix64 stream
#: continuation past the gear table; multiplier forced odd).
RABIN_TABLE, RABIN_MULTIPLIER = _make_rabin_table()

#: Rabin window: block tokens contributing to each boundary decision.
#: Finite memory is what makes cuts insert-invariant -- after WINDOW
#: identical tokens the hash re-synchronises regardless of prefix.
RABIN_WINDOW = 8

#: ``RABIN_MULTIPLIER ** RABIN_WINDOW mod 2^64`` -- the coefficient of
#: the token leaving the window.
_RABIN_OUT_MULT = pow(RABIN_MULTIPLIER, RABIN_WINDOW, 1 << 64)


@dataclass(frozen=True)
class ChunkingConfig:
    """Content-defined chunking parameters, in 4 KB blocks.

    ``avg_blocks`` must be a power of two (it becomes the cut mask:
    a boundary is declared where ``hash % avg == 0``); bounds follow
    ``min_blocks <= avg_blocks <= max_blocks <= MAX_CHUNK_BLOCKS``.
    """

    min_blocks: int = 2
    avg_blocks: int = 4
    max_blocks: int = 16
    algorithm: str = "gear"

    def __post_init__(self) -> None:
        if self.min_blocks < 1:
            raise ConfigError("min_blocks must be >= 1")
        if self.max_blocks > MAX_CHUNK_BLOCKS:
            raise ConfigError(f"max_blocks must be <= {MAX_CHUNK_BLOCKS}")
        if not (self.min_blocks <= self.avg_blocks <= self.max_blocks):
            raise ConfigError("need min_blocks <= avg_blocks <= max_blocks")
        if self.avg_blocks & (self.avg_blocks - 1):
            raise ConfigError("avg_blocks must be a power of two")
        if self.algorithm not in ("gear", "rabin"):
            raise ConfigError(
                f"chunking algorithm must be 'gear' or 'rabin', "
                f"got {self.algorithm!r}"
            )

    @property
    def mask(self) -> int:
        return self.avg_blocks - 1


class ChunkTransform:
    """Streaming CDC over the write-chunk fingerprint stream.

    One instance per scheme; :meth:`transform` consumes each write
    request's fingerprints in arrival order and returns the same
    number of effective fingerprints.  Carries the rolling hash and
    the open chunk across requests (stream semantics).
    """

    __slots__ = (
        "config",
        "_hash",
        "_anchor",
        "_offset",
        "_since_cut",
        "_window",
        "blocks_processed",
        "chunks_formed",
        "forced_cuts",
    )

    def __init__(self, config: ChunkingConfig) -> None:
        self.config = config
        self._hash = 0
        self._anchor: Optional[int] = None
        self._offset = 0
        self._since_cut = 0
        #: Rabin only: token values inside the rolling window.
        self._window: List[int] = []
        self.blocks_processed = 0
        self.chunks_formed = 0
        self.forced_cuts = 0

    def transform(self, fingerprints: Tuple[int, ...]) -> Tuple[int, ...]:
        """Effective fingerprints for one write request's blocks."""
        if self.config.algorithm == "rabin":
            return self._transform_rabin(fingerprints)
        cfg = self.config
        mask = cfg.mask
        min_blocks = cfg.min_blocks
        max_blocks = cfg.max_blocks
        gear = GEAR_TABLE
        h = self._hash
        anchor = self._anchor
        offset = self._offset
        since = self._since_cut
        out: List[int] = []
        append = out.append
        for fp in fingerprints:
            if anchor is None:
                anchor = fp
                offset = 0
            h = ((h << 1) + gear[fp & 0xFF]) & _MASK64
            append((anchor << OFFSET_BITS) | offset)
            offset += 1
            since += 1
            if since >= max_blocks:
                self.forced_cuts += 1
                anchor = None
                since = 0
                self.chunks_formed += 1
            elif since >= min_blocks and (h & mask) == 0:
                anchor = None
                since = 0
                self.chunks_formed += 1
        self._hash = h
        self._anchor = anchor
        self._offset = offset
        self._since_cut = since
        self.blocks_processed += len(fingerprints)
        return tuple(out)

    def _transform_rabin(self, fingerprints: Tuple[int, ...]) -> Tuple[int, ...]:
        """Rabin variant: a windowed multiplicative rolling hash over
        the block tokens (``h = h*M + t_in - t_out*M^W mod 2^64``).
        Same cut rules, anchors and encoding as the Gear path."""
        cfg = self.config
        mask = cfg.mask
        min_blocks = cfg.min_blocks
        max_blocks = cfg.max_blocks
        table = RABIN_TABLE
        mult = RABIN_MULTIPLIER
        out_mult = _RABIN_OUT_MULT
        h = self._hash
        window = self._window
        anchor = self._anchor
        offset = self._offset
        since = self._since_cut
        out: List[int] = []
        append = out.append
        for fp in fingerprints:
            if anchor is None:
                anchor = fp
                offset = 0
            token = table[fp & 0xFF]
            h = (h * mult + token) & _MASK64
            window.append(token)
            if len(window) > RABIN_WINDOW:
                h = (h - window.pop(0) * out_mult) & _MASK64
            append((anchor << OFFSET_BITS) | offset)
            offset += 1
            since += 1
            if since >= max_blocks:
                self.forced_cuts += 1
                anchor = None
                since = 0
                self.chunks_formed += 1
            elif since >= min_blocks and (h & mask) == 0:
                anchor = None
                since = 0
                self.chunks_formed += 1
        self._hash = h
        self._anchor = anchor
        self._offset = offset
        self._since_cut = since
        self.blocks_processed += len(fingerprints)
        return tuple(out)

    def stats(self) -> "dict[str, object]":
        return {
            "algorithm": self.config.algorithm,
            "blocks_processed": self.blocks_processed,
            "chunks_formed": self.chunks_formed,
            "forced_cuts": self.forced_cuts,
            "min_blocks": self.config.min_blocks,
            "avg_blocks": self.config.avg_blocks,
            "max_blocks": self.config.max_blocks,
        }


# ----------------------------------------------------------------------
# byte-level vectorized Gear (raw content payloads)
# ----------------------------------------------------------------------


def gear_hashes(data: Union[bytes, bytearray, np.ndarray]) -> np.ndarray:
    """Rolling Gear hash at every byte position, vectorized.

    The Gear recurrence ``h_i = (h_{i-1} << 1) + gear[b_i] (mod 2^64)``
    has finite memory: position ``i`` only ever sees the last 64 bytes
    (older contributions shift out of the word).  Expanding the
    recurrence,

        ``h_i = sum_{k=0}^{63} gear[b_{i-k}] << k``

    which NumPy evaluates as 64 shifted vector adds over the whole
    buffer instead of one Python-level loop iteration per byte.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(
        data, np.ndarray
    ) else data.astype(np.uint8, copy=False)
    n = len(buf)
    out = np.zeros(n, dtype=np.uint64)
    if n == 0:
        return out
    g = _GEAR_NP[buf]
    for k in range(min(64, n)):
        # Contribution of the byte k positions back, shifted k left
        # (uint64 arithmetic wraps, matching the scalar recurrence).
        out[k:] += g[: n - k] << np.uint64(k)
    return out


def cut_points(
    data: Union[bytes, bytearray, np.ndarray],
    min_size: int,
    avg_size: int,
    max_size: int,
) -> List[int]:
    """Chunk boundaries (end offsets, exclusive) for a byte buffer.

    The hash candidates come from the vectorized :func:`gear_hashes`;
    the min/avg/max selection is the standard sequential scan, but
    only over mask-matching positions (a tiny fraction of the input).
    Always ends with ``len(data)`` for a non-empty buffer.
    """
    if min_size < 1 or not (min_size <= avg_size <= max_size):
        raise ConfigError("need 1 <= min_size <= avg_size <= max_size")
    if avg_size & (avg_size - 1):
        raise ConfigError("avg_size must be a power of two")
    n = len(data)
    if n == 0:
        return []
    hashes = gear_hashes(data)
    mask = np.uint64(avg_size - 1)
    candidates = np.flatnonzero((hashes & mask) == 0)
    cuts: List[int] = []
    start = 0
    for pos in candidates.tolist():
        end = pos + 1
        length = end - start
        if length < min_size:
            continue
        while length > max_size:
            # Candidate gap exceeded the bound: force intermediate cuts.
            start += max_size
            cuts.append(start)
            length = end - start
        if length >= min_size:
            cuts.append(end)
            start = end
    # Tail: force max-size cuts, then whatever remains.
    while n - start > max_size:
        start += max_size
        cuts.append(start)
    if start < n:
        cuts.append(n)
    return cuts
