"""Deduplication primitives shared by all schemes."""

from __future__ import annotations

from repro.dedup.fingerprint import HashEngine, fingerprint_bytes, chunk_bytes
from repro.dedup.index_table import IndexEntry, IndexTable
from repro.dedup.map_table import MapTable

__all__ = [
    "HashEngine",
    "fingerprint_bytes",
    "chunk_bytes",
    "IndexEntry",
    "IndexTable",
    "MapTable",
]
