"""Fingerprinting: the hash engine's cost model and content hashing.

The traces the paper replays already carry per-chunk hash values, so
at replay time fingerprinting is purely a *delay*: "we added a 32 us
fingerprint-computing delay to each process of writing a 4KB data
chunk, which is an overestimation for the processors in modern
controllers" (Section IV-A).  :class:`HashEngine` models exactly that.

For the examples that deduplicate real byte content (rather than
synthetic traces), :func:`fingerprint_bytes` provides a collision-
resistant 64-bit fingerprint via BLAKE2b.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List

from repro.constants import BLOCK_SIZE, FINGERPRINT_DELAY
from repro.errors import DedupError


class HashEngine:
    """Charges the per-chunk fingerprint computation delay.

    Parameters
    ----------
    per_chunk_delay:
        Seconds of compute per 4 KB chunk (paper: 32 us).
    """

    def __init__(self, per_chunk_delay: float = FINGERPRINT_DELAY) -> None:
        if per_chunk_delay < 0:
            raise DedupError("negative fingerprint delay")
        self.per_chunk_delay = per_chunk_delay
        self.chunks_hashed = 0

    def delay_for(self, nblocks: int) -> float:
        """Total fingerprinting delay for a request of ``nblocks`` chunks."""
        if nblocks < 0:
            raise DedupError("negative chunk count")
        self.chunks_hashed += nblocks
        return nblocks * self.per_chunk_delay


def fingerprint_bytes(data: bytes) -> int:
    """64-bit content fingerprint of a chunk (BLAKE2b-8)."""
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def chunk_bytes(data: bytes, chunk_size: int = BLOCK_SIZE) -> Iterator[bytes]:
    """Split a buffer into fixed-size chunks; the tail is zero-padded.

    Fixed-size chunking is what the paper's prototype uses (subfile
    deduplication at the block-device level).
    """
    if chunk_size <= 0:
        raise DedupError("chunk size must be positive")
    for off in range(0, len(data), chunk_size):
        chunk = data[off : off + chunk_size]
        if len(chunk) < chunk_size:
            chunk = chunk + b"\x00" * (chunk_size - len(chunk))
        yield chunk


def fingerprints_of(data: bytes, chunk_size: int = BLOCK_SIZE) -> List[int]:
    """Per-chunk fingerprints of a buffer (example-application helper)."""
    return [fingerprint_bytes(c) for c in chunk_bytes(data, chunk_size)]
