"""Command-line interface.

::

    python -m repro run --trace mail --scheme POD --scale 0.1
    python -m repro run --trace web-vm --scheme pod \
        --report-out r.json --trace-out t.jsonl --seed 7
    python -m repro run-multi --trace mail --trace web-vm --copies 3 \
        --scheme POD --scale 0.1
    python -m repro compare --trace homes --scale 0.1 --report-out all.json
    python -m repro stats r.json            # pretty-print one report
    python -m repro stats a.json b.json     # diff two reports
    python -m repro figures --only fig8,fig11 --scale 0.25
    python -m repro trace generate --trace web-vm --scale 0.05 --out w.trace
    python -m repro trace analyze w.trace
    python -m repro report --scale 0.25
    python -m repro run --trace mail --scheme POD --timeline 0.5 --spans \
        --slo examples/slo.json --report-out r.json
    python -m repro timeline render r.json
    python -m repro timeline export r.json --out metrics.txt
    python -m repro dash r.json --out dash.html

Everything the CLI does is also available as a library call; the CLI
is a thin argparse layer over :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.metrics.report import render_table

#: figure-name -> driver attribute on repro.experiments.figures
FIGURES = {
    "table1": "table1_features",
    "table2": "table2_characteristics",
    "fig1": "fig1_redundancy_by_size",
    "fig2": "fig2_io_vs_capacity",
    "fig3": "fig3_partition_sweep",
    "fig8": "fig8_overall_response",
    "fig9": "fig9_read_write_split",
    "fig10": "fig10_capacity",
    "fig11": "fig11_write_reduction",
    "nvram": "nvram_overhead",
}


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by run / run-multi / run-cluster."""
    p.add_argument("--timeline", type=float, default=None, nargs="?",
                   const=1.0, metavar="SECONDS",
                   help="sample windowed telemetry (throughput, latency "
                   "percentiles, dedup/cache rates, queue depths) at this "
                   "window width in simulated seconds (bare flag: 1.0)")
    p.add_argument("--spans", action="store_true",
                   help="record causal spans through the request lifecycle "
                   "(admission, classify, remote lookup, disk, recovery)")
    p.add_argument("--slo", default=None, metavar="POLICY.json",
                   help="evaluate SLO objectives over the timeline windows "
                   "(JSON policy, see examples/slo.json; implies --timeline)")
    p.add_argument("--timeline-out", default=None, metavar="FILE.jsonl",
                   help="write the sampled timeline as JSON Lines "
                   "(requires --timeline or --slo)")
    p.add_argument("--spans-out", default=None, metavar="FILE.jsonl",
                   help="write completed spans as JSON Lines "
                   "(requires --spans)")


def _add_jobs_args(p: argparse.ArgumentParser) -> None:
    """Leased-job flags shared by run / run-multi / run-cluster."""
    p.add_argument("--jobs", default=None, nargs="?", const="",
                   metavar="CONFIG.json",
                   help="arm the leased background-job subsystem (workers, "
                   "lease policy, scrubber, admission; JSON, see "
                   "examples/jobs.json; bare flag: defaults)")
    p.add_argument("--scrub", action="store_true",
                   help="run a background scrubber job over the volume "
                   "(implies --jobs)")
    p.add_argument("--admission", default=None, metavar="RATE:BURST",
                   help="per-tenant token-bucket admission control in "
                   "blocks/s and burst blocks (implies --jobs)")


def build_parser() -> argparse.ArgumentParser:
    from repro.baselines.registry import DEFAULT_REGISTRY

    scheme_help = "scheme name or alias, case-insensitive: " + ", ".join(
        DEFAULT_REGISTRY.names()
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="POD (IPDPS'14) reproduction: trace-driven dedup experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="replay one trace through one scheme")
    run.add_argument("--trace", required=True, choices=["web-vm", "homes", "mail"])
    run.add_argument("--scheme", required=True, help=scheme_help)
    run.add_argument("--scale", type=float, default=0.1)
    run.add_argument("--index-fraction", type=float, default=None,
                     help="fixed index-cache share (non-POD schemes)")
    run.add_argument("--scheduler", choices=["fcfs", "clook"], default=None,
                     help="event-driven disk queue discipline "
                     "(default: fast analytic FCFS)")
    run.add_argument("--failed-disk", type=int, default=None,
                     help="run the RAID-5 array degraded with this member failed")
    run.add_argument("--raid", choices=["raid5", "raid0", "single"], default="raid5")
    run.add_argument("--ndisks", type=int, default=None,
                     help="member disks (default 4 for raid5/raid0, 1 for single)")
    run.add_argument("--seed", type=int, default=None,
                     help="trace-generator seed (recorded in the run report)")
    run.add_argument("--trace-level", choices=["off", "summary", "request", "chunk"],
                     default=None,
                     help="event-recording verbosity (default: request when "
                     "--trace-out is given, off otherwise)")
    run.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                     help="write the recorded simulation events as JSON Lines")
    run.add_argument("--report-out", default=None, metavar="FILE.json",
                     help="write the versioned machine-readable run report")
    run.add_argument("--check-invariants", action="store_true",
                     help="debug mode: validate every POD invariant "
                     "(Map/Index tables, iCache budgets, NVRAM model) "
                     "periodically during the replay; fails loudly on the "
                     "first violation and never changes simulated times")
    run.add_argument("--faults", default=None, metavar="PLAN.json",
                     help="arm a deterministic fault plan (JSON, see "
                     "docs/robustness.md and examples/faults.json)")
    run.add_argument("--fault-seed", type=int, default=None, metavar="N",
                     help="override the fault plan's RNG seed "
                     "(requires --faults)")
    run.add_argument("--batch-size", type=int, default=None, metavar="N",
                     help="replay through the columnar batch driver, planning "
                          "N requests per batch (bit-identical to the default "
                          "event loop, several times faster; incompatible "
                          "configs fall back silently)")
    run.add_argument("--chunking", default=None, metavar="[ALGO:]MIN:AVG:MAX",
                     help="enable content-defined chunking with the given "
                          "chunk bounds in 4 KB blocks (AVG must be a power "
                          "of two); ALGO is 'gear' or 'rabin', and a bare "
                          "'gear'/'rabin' takes the default bounds (2:4:16)")
    run.add_argument("--sanitize-every", type=int, default=1000, metavar="N",
                     help="structural-check cadence in requests "
                     "(with --check-invariants; default 1000)")
    _add_telemetry_args(run)
    _add_jobs_args(run)

    multi = sub.add_parser(
        "run-multi",
        help="replay several tenant volumes through one shared dedup domain",
    )
    multi.add_argument("--trace", action="append", required=True, dest="traces",
                       choices=["web-vm", "homes", "mail"], metavar="NAME",
                       help="base trace family (repeatable); each family is "
                       "expanded into --copies tenant volumes")
    multi.add_argument("--scheme", default="POD", help=scheme_help)
    multi.add_argument("--copies", type=int, default=2,
                       help="tenant clones per base trace (default 2)")
    multi.add_argument("--divergence", type=float, default=0.15,
                       help="fraction of each clone's content privatised "
                       "away from the golden image (default 0.15)")
    multi.add_argument("--skew", type=float, default=0.5,
                       help="per-tenant arrival-rate skew exponent; tenant k "
                       "runs at (k+1)^-skew of the base rate (default 0.5)")
    multi.add_argument("--scale", type=float, default=0.1)
    multi.add_argument("--seed", type=int, default=None,
                       help="trace-generator seed (recorded in the report)")
    multi.add_argument("--report-out", default=None, metavar="FILE.json",
                       help="write the run report with the per-volume section")
    multi.add_argument("--check-invariants", action="store_true",
                       help="validate every POD invariant during the replay")
    multi.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="arm a deterministic fault plan (JSON)")
    multi.add_argument("--fault-seed", type=int, default=None, metavar="N",
                       help="override the fault plan's RNG seed "
                       "(requires --faults)")
    multi.add_argument("--batch-size", type=int, default=None, metavar="N",
                       help="replay through the columnar batch driver "
                            "(bit-identical to the event loop; incompatible "
                            "configs fall back silently)")
    multi.add_argument("--chunking", default=None, metavar="MIN:AVG:MAX",
                       help="enable content-defined chunking (see 'run')")
    multi.add_argument("--sanitize-every", type=int, default=1000, metavar="N",
                       help="structural-check cadence in requests "
                       "(with --check-invariants; default 1000)")
    _add_telemetry_args(multi)
    _add_jobs_args(multi)

    cluster = sub.add_parser(
        "run-cluster",
        help="replay the tenant volumes across a sharded multi-node cluster",
    )
    cluster.add_argument("--trace", action="append", required=True, dest="traces",
                         choices=["web-vm", "homes", "mail"], metavar="NAME",
                         help="base trace family (repeatable); each family is "
                         "expanded into --copies tenant volumes")
    cluster.add_argument("--scheme", default="POD", help=scheme_help)
    cluster.add_argument("--nodes", type=int, default=2,
                         help="POD nodes in the cluster (default 2); volumes "
                         "are assigned round-robin")
    cluster.add_argument("--copies", type=int, default=2,
                         help="tenant clones per base trace (default 2)")
    cluster.add_argument("--divergence", type=float, default=0.15,
                         help="fraction of each clone's content privatised "
                         "away from the golden image (default 0.15)")
    cluster.add_argument("--skew", type=float, default=0.5,
                         help="per-tenant arrival-rate skew exponent "
                         "(default 0.5)")
    cluster.add_argument("--scale", type=float, default=0.1)
    cluster.add_argument("--seed", type=int, default=None,
                         help="trace-generator seed (recorded in the report)")
    cluster.add_argument("--vnodes", type=int, default=None,
                         help="virtual nodes per member on the hash ring "
                         "(default 64)")
    cluster.add_argument("--net-latency", type=float, default=None,
                         metavar="SECONDS",
                         help="one-way network latency (default 100e-6)")
    cluster.add_argument("--net-bandwidth", type=float, default=None,
                         metavar="BYTES_PER_S",
                         help="per-link bandwidth (default 1e9)")
    cluster.add_argument("--rebalance-at", type=float, default=None,
                         metavar="SECONDS",
                         help="trigger a membership change at this simulated "
                         "time")
    cluster.add_argument("--rebalance-add", type=int, default=0, metavar="N",
                         help="nodes to add at --rebalance-at (default 0)")
    cluster.add_argument("--rebalance-remove", type=int, default=None,
                         metavar="NODE",
                         help="node id to retire at --rebalance-at")
    cluster.add_argument("--migrate-batch", type=int, default=256, metavar="N",
                         help="shard entries migrated per background batch "
                         "(default 256)")
    cluster.add_argument("--migrate-interval", type=float, default=0.01,
                         metavar="SECONDS",
                         help="pause between migration batches (default 0.01)")
    cluster.add_argument("--fail-node", type=int, default=None, metavar="NODE",
                         help="degrade this node's RAID-5 array mid-run and "
                         "pace a rebuild (needs --fail-node-at)")
    cluster.add_argument("--fail-node-at", type=float, default=None,
                         metavar="SECONDS",
                         help="simulated time of the node failure")
    cluster.add_argument("--fail-slow", action="append", default=None,
                         metavar="DISK:START:END:MULT", dest="fail_slow",
                         help="fail-slow window on a cluster disk (global "
                         "disk id = node * ndisks + member); repeatable. "
                         "A window overlapping a leased rebuild exercises "
                         "stale-lease recovery")
    cluster.add_argument("--replication", type=int, default=None, metavar="R",
                         help="arm the replicated fingerprint directory with "
                         "R-way replica placement (R=1 pins the legacy "
                         "single-copy arithmetic)")
    cluster.add_argument("--consistency", choices=["one", "quorum", "all"],
                         default="quorum",
                         help="directory read/write consistency level "
                         "(with --replication; default quorum)")
    cluster.add_argument("--gc", nargs="?", const="online",
                         choices=["online", "stw"], default=None,
                         help="refcount garbage collection over the "
                         "replicated directory: 'online' (leased job; "
                         "implies --jobs) or 'stw' (stop-the-world "
                         "baseline). Implies --replication 1 if unset")
    cluster.add_argument("--gc-start", type=float, default=0.0,
                         metavar="SECONDS",
                         help="earliest simulated time GC may run "
                         "(default 0)")
    cluster.add_argument("--gc-interval", type=float, default=0.05,
                         metavar="SECONDS",
                         help="online GC: pause between job steps "
                         "(default 0.05)")
    cluster.add_argument("--gc-batch", type=int, default=64, metavar="N",
                         help="online GC: decrement intents per step "
                         "(default 64)")
    cluster.add_argument("--kill-metadata-node", default=None,
                         metavar="NODE:SECONDS", dest="kill_metadata_node",
                         help="kill one node's directory replica at a "
                         "simulated time (data plane unaffected); degraded "
                         "lookups fall back to surviving replicas and "
                         "trigger read repair")
    cluster.add_argument("--verify-content", action="store_true",
                         help="arm a per-node content oracle that checks "
                         "every read against the write history")
    cluster.add_argument("--check-invariants", action="store_true",
                         help="validate every POD invariant on every node "
                         "during the replay")
    cluster.add_argument("--sanitize-every", type=int, default=1000, metavar="N",
                         help="structural-check cadence in requests "
                         "(with --check-invariants; default 1000)")
    cluster.add_argument("--report-out", default=None, metavar="FILE.json",
                         help="write the run report with per-node and "
                         "cluster sections")
    _add_telemetry_args(cluster)
    _add_jobs_args(cluster)

    compare = sub.add_parser("compare", help="replay one trace through every scheme")
    compare.add_argument("--trace", required=True, choices=["web-vm", "homes", "mail"])
    compare.add_argument("--scale", type=float, default=0.1)
    compare.add_argument("--seed", type=int, default=None,
                         help="trace-generator seed (recorded in the report)")
    compare.add_argument("--report-out", default=None, metavar="FILE.json",
                         help="write a compare report bundling every run report")
    compare.add_argument("--check-invariants", action="store_true",
                         help="validate every POD invariant during each replay")
    compare.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="arm the same deterministic fault plan against "
                         "every scheme (JSON)")
    compare.add_argument("--fault-seed", type=int, default=None, metavar="N",
                         help="override the fault plan's RNG seed "
                         "(requires --faults)")

    lint = sub.add_parser(
        "lint", help="run the POD determinism linter (POD001..POD007; "
        "--flow adds the dataflow tier POD008..POD012)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--flow", action="store_true",
                      help="run the whole-program dataflow tier too")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma list of rule codes to enable")
    lint.add_argument("--fix", action="store_true",
                      help="apply mechanical fixes, then re-lint")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppression baseline to filter findings against")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="write current findings as the new baseline")
    lint.add_argument("--dump-summaries", action="store_true",
                      help="print interprocedural call summaries and exit")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    stats = sub.add_parser(
        "stats", help="pretty-print a run report, or diff two of them"
    )
    stats.add_argument("paths", nargs="+", metavar="REPORT.json",
                       help="one report to render, or two run reports to diff")
    stats.add_argument("--buckets", action="store_true",
                       help="also dump non-zero histogram buckets")

    figures_cmd = sub.add_parser("figures", help="regenerate the paper's tables/figures")
    figures_cmd.add_argument("--only", default=None,
                             help=f"comma list from: {','.join(FIGURES)}")
    figures_cmd.add_argument("--scale", type=float, default=0.25)

    trace = sub.add_parser("trace", help="generate or analyse trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate", help="write a synthetic trace file")
    gen.add_argument("--trace", required=True, choices=["web-vm", "homes", "mail"])
    gen.add_argument("--scale", type=float, default=0.1)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", required=True)
    ana = trace_sub.add_parser("analyze", help="Table-II/Fig-1/Fig-2 stats of a trace file")
    ana.add_argument("path")

    timeline = sub.add_parser(
        "timeline", help="render, diff or export a sampled telemetry timeline"
    )
    timeline_sub = timeline.add_subparsers(dest="timeline_command", required=True)
    tl_render = timeline_sub.add_parser(
        "render", help="pretty-print the per-window series"
    )
    tl_render.add_argument("path", metavar="TIMELINE",
                           help="run report (JSON), bare timeline document, "
                           "or timeline JSONL file")
    tl_render.add_argument("--limit", type=int, default=40, metavar="N",
                           help="windows to show (default 40; 0 for all)")
    tl_diff = timeline_sub.add_parser(
        "diff", help="diff two timelines window by window"
    )
    tl_diff.add_argument("paths", nargs=2, metavar="TIMELINE",
                         help="two timeline files (any loadable form)")
    tl_diff.add_argument("--limit", type=int, default=20, metavar="N",
                         help="differing windows to show (default 20)")
    tl_export = timeline_sub.add_parser(
        "export", help="export the timeline as OpenMetrics text"
    )
    tl_export.add_argument("path", metavar="TIMELINE")
    tl_export.add_argument("--out", default=None, metavar="FILE",
                           help="output file (default: stdout)")
    tl_export.add_argument("--prefix", default="pod",
                           help="metric-family name prefix (default pod)")

    dash = sub.add_parser(
        "dash", help="render a self-contained HTML dashboard from a run report"
    )
    dash.add_argument("path", metavar="REPORT.json",
                      help="run report written with --report-out and --timeline")
    dash.add_argument("--out", default="dash.html", metavar="FILE.html",
                      help="output file (default dash.html)")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("--scale", type=float, default=0.25)

    export = sub.add_parser("export", help="write every figure's data as CSV/JSON")
    export.add_argument("--out", default="figures_out")
    export.add_argument("--scale", type=float, default=0.25)

    return parser


def _print_result(result) -> None:
    s = result.summary()
    rows = [
        ["requests measured", s["requests"]],
        ["mean response (ms)", s["mean_response"] * 1e3],
        ["read mean (ms)", s["read_mean_response"] * 1e3],
        ["write mean (ms)", s["write_mean_response"] * 1e3],
        ["p95 (ms)", s["p95_response"] * 1e3],
        ["write requests removed", f"{result.removed_write_pct:.1f}%"],
        ["capacity (blocks)", result.capacity_blocks],
        ["map entries", result.scheme_stats["map_entries"]],
        ["NVRAM peak (bytes)", result.scheme_stats["nvram_peak_bytes"]],
    ]
    print(render_table(f"{result.scheme_name} on {result.trace_name}", ["metric", "value"], rows))


def _chunking_config(args: argparse.Namespace):
    """Parse ``--chunking`` into a :class:`ChunkingConfig`, if given.

    Accepts ``gear`` or ``rabin`` (default bounds) or
    ``[ALGO:]MIN:AVG:MAX`` in 4 KB blocks.
    """
    from repro.dedup.chunking import ChunkingConfig
    from repro.errors import ConfigError

    spec = getattr(args, "chunking", None)
    if spec is None:
        return None
    if spec in ("gear", "rabin"):
        return ChunkingConfig(algorithm=spec)
    parts = spec.split(":")
    algorithm = "gear"
    if parts and parts[0] in ("gear", "rabin"):
        algorithm = parts[0]
        parts = parts[1:]
    if len(parts) != 3:
        raise ConfigError(
            f"--chunking expects 'gear', 'rabin' or [ALGO:]MIN:AVG:MAX, "
            f"got {spec!r}"
        )
    try:
        lo, avg, hi = (int(p) for p in parts)
    except ValueError:
        raise ConfigError(
            f"--chunking bounds must be integers, got {spec!r}"
        ) from None
    return ChunkingConfig(
        min_blocks=lo, avg_blocks=avg, max_blocks=hi, algorithm=algorithm
    )


def _fault_plan(args: argparse.Namespace):
    """Load the ``--faults`` plan, if any (``--fault-seed`` needs it)."""
    from repro.errors import ConfigError
    from repro.faults import FaultPlan

    if getattr(args, "faults", None) is None:
        if getattr(args, "fault_seed", None) is not None:
            raise ConfigError("--fault-seed requires --faults")
        return None
    return FaultPlan.load(args.faults)


def _print_fault_summary(result) -> None:
    """One-line fault verdict after a replay (full detail in reports)."""
    stats = getattr(result, "fault_stats", None)
    if not stats:
        return
    counters = stats.get("counters", {})
    oracle = stats.get("oracle", {})
    injected = sum(
        v for k, v in counters.items()
        if k in ("lse_injected", "member_failures", "nvram_losses",
                 "index_corruptions", "fail_slow_windows")
    )
    print(f"faults: seed={stats.get('seed')} injected={injected} "
          f"recoveries={stats.get('recovery_latency', {}).get('count', 0)} "
          f"oracle: {oracle.get('blocks_checked', 0)} blocks checked, "
          f"{oracle.get('mismatches', 0)} mismatches, "
          f"{oracle.get('at_risk_reads', 0)} at-risk reads")


def _jobs_config(args: argparse.Namespace):
    """Resolve the leased-job flags into a JobsConfig (or None).

    ``--scrub`` and ``--admission`` imply ``--jobs`` so the common
    cases need no config file; an explicit ``--jobs CONFIG.json``
    provides the full policy and the convenience flags overlay it.
    """
    import dataclasses

    from repro.errors import ConfigError
    from repro.jobs import AdmissionSpec, JobsConfig, ScrubberSpec

    jobs = getattr(args, "jobs", None)
    scrub = getattr(args, "scrub", False)
    admission = getattr(args, "admission", None)
    if jobs is None and not scrub and admission is None:
        return None
    config = JobsConfig.load(jobs) if jobs else JobsConfig()
    if scrub and config.scrub is None:
        config = dataclasses.replace(config, scrub=ScrubberSpec())
    if admission is not None:
        parts = admission.split(":")
        if len(parts) != 2:
            raise ConfigError(
                f"--admission expects RATE:BURST, got {admission!r}"
            )
        try:
            rate, burst = float(parts[0]), float(parts[1])
        except ValueError:
            raise ConfigError(
                f"--admission expects numeric RATE:BURST, got {admission!r}"
            )
        config = dataclasses.replace(
            config,
            admission=AdmissionSpec(rate_blocks=rate, burst_blocks=burst),
        )
    return config


def _directory_config(args: argparse.Namespace):
    """Resolve the replicated-directory flags (or None = legacy path).

    ``--gc`` and ``--kill-metadata-node`` imply ``--replication 1`` so
    the single-knob cases work; ``--gc online`` additionally implies
    ``--jobs`` (handled by the caller).
    """
    from repro.cluster.directory import (
        Consistency,
        DirectoryConfig,
        GcSpec,
        KillSpec,
    )
    from repro.errors import ConfigError

    replication = getattr(args, "replication", None)
    gc_mode = getattr(args, "gc", None)
    kill = getattr(args, "kill_metadata_node", None)
    if replication is None and gc_mode is None and kill is None:
        return None
    gc = None
    if gc_mode is not None:
        gc = GcSpec(
            start=args.gc_start,
            interval=args.gc_interval,
            batch=args.gc_batch,
            mode=gc_mode,
        )
    kill_spec = None
    if kill is not None:
        parts = kill.split(":")
        if len(parts) != 2:
            raise ConfigError(
                f"--kill-metadata-node expects NODE:SECONDS, got {kill!r}"
            )
        try:
            kill_spec = KillSpec(node=int(parts[0]), time=float(parts[1]))
        except ValueError:
            raise ConfigError(
                f"--kill-metadata-node expects numeric NODE:SECONDS, "
                f"got {kill!r}"
            ) from None
    return DirectoryConfig(
        replication=replication if replication is not None else 1,
        consistency=Consistency(args.consistency),
        gc=gc,
        kill=kill_spec,
    )


def _print_jobs_summary(result) -> None:
    """One-line leased-jobs digest after a run (when armed)."""
    stats = getattr(result, "jobs_stats", None)
    if not stats:
        return
    c = stats.get("counters", {})
    ledger = stats.get("oracle", {})
    print(f"jobs: {c.get('jobs_completed', 0)}/{c.get('jobs_submitted', 0)} "
          f"completed, {c.get('claims', 0)} claims "
          f"({c.get('stale_lease_reclaims', 0)} stale re-claims), "
          f"{c.get('steps_committed', 0)} steps committed "
          f"({c.get('fenced_commits', 0)} fenced), "
          f"ledger violations {len(ledger.get('violations', []))}")
    adm = stats.get("admission")
    if adm:
        print(f"admission: {adm.get('requests_admitted', 0)} admitted, "
              f"{adm.get('requests_throttled', 0)} throttled, "
              f"{adm.get('throttle_delay_total', 0.0):.3f}s total delay")


def _effective_trace_level(args: argparse.Namespace) -> str:
    """Resolve the recording verbosity from the CLI flags.

    Explicit ``--trace-level`` wins; otherwise ``--trace-out`` implies
    ``request`` (a trace file with no events would be useless) and the
    default is ``off`` (no recording cost at all).
    """
    from repro.obs import TraceLevel

    if getattr(args, "trace_level", None) is not None:
        return TraceLevel.parse(args.trace_level)
    if getattr(args, "trace_out", None) is not None:
        return TraceLevel.REQUEST
    return TraceLevel.OFF


def _telemetry_config(args: argparse.Namespace) -> dict:
    """ReplayConfig telemetry kwargs from the shared CLI flags."""
    from repro.errors import ConfigError
    from repro.obs import SloPolicy, TimelineConfig

    kwargs: dict = {}
    if getattr(args, "timeline", None) is not None:
        kwargs["timeline"] = TimelineConfig(window=args.timeline)
    if getattr(args, "spans", False):
        kwargs["spans"] = True
    if getattr(args, "slo", None) is not None:
        kwargs["slo"] = SloPolicy.load(args.slo)
    if getattr(args, "timeline_out", None) is not None and not (
        "timeline" in kwargs or "slo" in kwargs
    ):
        raise ConfigError("--timeline-out requires --timeline or --slo")
    if getattr(args, "spans_out", None) is not None and "spans" not in kwargs:
        raise ConfigError("--spans-out requires --spans")
    return kwargs


def _print_telemetry(result, args: argparse.Namespace) -> None:
    """Post-run telemetry summary + JSONL outputs (run/run-multi/run-cluster)."""
    timeline = getattr(result, "timeline", None)
    if timeline is not None:
        doc = timeline.as_dict()
        print(f"timeline: {doc['windows_total']} windows of "
              f"{doc['window']:.4g}s (t_end {doc['t_end']:.3f})")
        if getattr(args, "timeline_out", None) is not None:
            lines = timeline.write_jsonl(args.timeline_out)
            print(f"wrote {args.timeline_out}: {lines - 1} windows")
    spans = getattr(result, "spans", None)
    if spans is not None:
        s = spans.summary()
        print(f"spans: {s['spans']} recorded ({s['dropped']} dropped, "
              f"{s['open']} left open)")
        if getattr(args, "spans_out", None) is not None:
            lines = spans.write_jsonl(args.spans_out)
            print(f"wrote {args.spans_out}: {lines - 1} spans")
    slo = getattr(result, "slo_stats", None)
    if slo is not None:
        worst = max((o["worst_burn"] for o in slo["objectives"]), default=0.0)
        print(f"slo: {len(slo['objectives'])} objectives over "
              f"{slo['windows_evaluated']} windows, "
              f"{slo['violations_total']} violation windows, "
              f"worst burn rate {worst:.2f}")


def cmd_run(args: argparse.Namespace) -> int:
    import time

    from repro.experiments import runner
    from repro.obs import TraceLevel, TraceRecorder, build_run_report, write_report
    from repro.sim.replay import ReplayConfig
    from repro.storage.raid import RaidLevel
    from repro.storage.scheduler import SchedulingPolicy

    overrides = {}
    if args.index_fraction is not None:
        overrides["index_fraction"] = args.index_fraction
    chunking = _chunking_config(args)
    if chunking is not None:
        overrides["chunking"] = chunking
    level = {
        "raid5": RaidLevel.RAID5,
        "raid0": RaidLevel.RAID0,
        "single": RaidLevel.SINGLE,
    }[args.raid]
    ndisks = args.ndisks if args.ndisks is not None else (1 if level is RaidLevel.SINGLE else 4)
    telemetry = _telemetry_config(args)
    jobs_config = _jobs_config(args)
    replay_config = ReplayConfig(
        raid_level=level,
        ndisks=ndisks,
        scheduler=SchedulingPolicy(args.scheduler) if args.scheduler else None,
        failed_disk=args.failed_disk,
        check_invariants=args.check_invariants,
        sanitize_every=args.sanitize_every,
        faults=_fault_plan(args),
        fault_seed=args.fault_seed,
        jobs=jobs_config,
        **telemetry,
    )

    observed = (
        args.seed is not None
        or args.trace_level is not None
        or args.trace_out is not None
        or args.report_out is not None
        or bool(telemetry)
    )
    if not observed:
        # Plain run: share the memoised fast path with the figure benches.
        result = runner.run_single(
            args.trace, args.scheme, scale=args.scale,
            replay_config=replay_config, batch_size=args.batch_size,
            **overrides,
        )
        _print_result(result)
        if result.sanitizer is not None:
            s = result.sanitizer.summary()
            print(f"invariants clean: {s['checks_run']} structural checks, "
                  f"{s['decisions_validated']} dedupe decisions validated")
        _print_fault_summary(result)
        _print_jobs_summary(result)
        return 0

    trace_level = _effective_trace_level(args)
    recorder = (
        TraceRecorder(level=trace_level)
        if (trace_level > TraceLevel.OFF or args.trace_out is not None)
        else None
    )
    t0 = time.perf_counter()
    result = runner.run_observed(
        args.trace, args.scheme, scale=args.scale, seed=args.seed,
        replay_config=replay_config, recorder=recorder,
        batch_size=args.batch_size, **overrides,
    )
    wall = time.perf_counter() - t0
    _print_result(result)

    if result.sanitizer is not None:
        s = result.sanitizer.summary()
        print(f"invariants clean: {s['checks_run']} structural checks, "
              f"{s['decisions_validated']} dedupe decisions validated")
    _print_fault_summary(result)
    _print_jobs_summary(result)
    _print_telemetry(result, args)
    if args.trace_out is not None:
        lines = recorder.write_jsonl(args.trace_out)
        print(f"wrote {args.trace_out}: {lines - 1} events "
              f"(level {trace_level.name.lower()}, {recorder.dropped} dropped)")
    if args.report_out is not None:
        config_doc = {
            "raid": args.raid,
            "ndisks": ndisks,
            "scheduler": args.scheduler,
            "failed_disk": args.failed_disk,
            "index_fraction": args.index_fraction,
            "faults": args.faults,
            "fault_seed": args.fault_seed,
        }
        if jobs_config is not None:
            config_doc["jobs"] = jobs_config.as_dict()
        report = build_run_report(
            result,
            seed=args.seed,
            scale=args.scale,
            trace_level=trace_level.name.lower(),
            recorder=recorder,
            config=config_doc,
            overhead={"replay_wall_s": wall},
        )
        write_report(report, args.report_out)
        print(f"wrote {args.report_out}")
    return 0


def cmd_run_multi(args: argparse.Namespace) -> int:
    from repro.experiments import runner
    from repro.sim.replay import ReplayConfig

    jobs_config = _jobs_config(args)
    replay_config = ReplayConfig(
        check_invariants=args.check_invariants,
        sanitize_every=args.sanitize_every,
        faults=_fault_plan(args),
        fault_seed=args.fault_seed,
        jobs=jobs_config,
        **_telemetry_config(args),
    )
    overrides = {}
    chunking = _chunking_config(args)
    if chunking is not None:
        overrides["chunking"] = chunking
    result = runner.run_multi(
        args.traces,
        args.scheme,
        copies=args.copies,
        scale=args.scale,
        seed=args.seed,
        divergence=args.divergence,
        arrival_skew=args.skew,
        replay_config=replay_config,
        batch_size=args.batch_size,
        **overrides,
    )
    _print_result(result)
    print()
    print(render_table(
        f"per-volume breakdown ({len(result.volumes)} volumes, "
        f"shared dedup domain)",
        ["vol", "name", "reqs", "mean ms", "wr elim blk",
         "x-vol dedup", "intra dedup"],
        [
            [
                v["volume_id"],
                v["name"],
                v.get("requests", 0),
                f"{v.get('mean_response', 0.0) * 1e3:.3f}",
                v.get("writes_eliminated_blocks", 0),
                v.get("cross_volume_deduped_blocks", 0),
                v.get("intra_volume_deduped_blocks", 0),
            ]
            for v in result.volumes
        ],
    ))
    if result.sanitizer is not None:
        s = result.sanitizer.summary()
        print(f"invariants clean: {s['checks_run']} structural checks, "
              f"{s['decisions_validated']} dedupe decisions validated")
    _print_fault_summary(result)
    _print_jobs_summary(result)
    _print_telemetry(result, args)
    if args.report_out is not None:
        from repro.obs import build_run_report, write_report

        config_doc = {
            "traces": list(args.traces),
            "copies": args.copies,
            "divergence": args.divergence,
            "arrival_skew": args.skew,
            "faults": args.faults,
            "fault_seed": args.fault_seed,
        }
        if jobs_config is not None:
            config_doc["jobs"] = jobs_config.as_dict()
        report = build_run_report(
            result,
            seed=args.seed,
            scale=args.scale,
            config=config_doc,
        )
        write_report(report, args.report_out)
        print(f"wrote {args.report_out}")
    return 0


def cmd_run_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig, NetworkModel, RebalanceSpec
    from repro.errors import ConfigError
    from repro.experiments import runner
    from repro.faults import FailSlowSpec, NodeFailureSpec
    from repro.sim.replay import ReplayConfig

    net_kwargs = {}
    if args.net_latency is not None:
        net_kwargs["latency"] = args.net_latency
    if args.net_bandwidth is not None:
        net_kwargs["bandwidth"] = args.net_bandwidth
    rebalance = None
    if args.rebalance_at is not None:
        rebalance = RebalanceSpec(
            time=args.rebalance_at,
            add_nodes=args.rebalance_add,
            remove_node=args.rebalance_remove,
            entries_per_batch=args.migrate_batch,
            interval=args.migrate_interval,
        )
    elif args.rebalance_add or args.rebalance_remove is not None:
        raise ConfigError(
            "--rebalance-add/--rebalance-remove require --rebalance-at"
        )
    node_failure = None
    if args.fail_node is not None:
        if args.fail_node_at is None:
            raise ConfigError("--fail-node requires --fail-node-at")
        node_failure = NodeFailureSpec(node=args.fail_node, time=args.fail_node_at)
    elif args.fail_node_at is not None:
        raise ConfigError("--fail-node-at requires --fail-node")
    fail_slow = []
    for spec_str in args.fail_slow or []:
        parts = spec_str.split(":")
        if len(parts) != 4:
            raise ConfigError(
                f"--fail-slow expects DISK:START:END:MULT, got {spec_str!r}"
            )
        try:
            fail_slow.append(FailSlowSpec(
                disk=int(parts[0]),
                start=float(parts[1]),
                end=float(parts[2]),
                multiplier=float(parts[3]),
            ))
        except ValueError:
            raise ConfigError(
                f"--fail-slow expects numeric DISK:START:END:MULT, "
                f"got {spec_str!r}"
            )
    directory_config = _directory_config(args)
    cluster_kwargs = dict(
        net=NetworkModel(**net_kwargs),
        rebalance=rebalance,
        node_failure=node_failure,
        verify_content=args.verify_content,
    )
    if fail_slow:
        cluster_kwargs["fail_slow"] = tuple(fail_slow)
    if args.vnodes is not None:
        cluster_kwargs["vnodes"] = args.vnodes
    if directory_config is not None:
        cluster_kwargs["directory"] = directory_config
    cluster_config = ClusterConfig(**cluster_kwargs)
    jobs_config = _jobs_config(args)
    if (
        directory_config is not None
        and directory_config.gc is not None
        and directory_config.gc.mode == "online"
        and jobs_config is None
    ):
        # Online GC runs as a leased job: --gc implies --jobs.
        from repro.jobs import JobsConfig

        jobs_config = JobsConfig()
    replay_config = ReplayConfig(
        check_invariants=args.check_invariants,
        sanitize_every=args.sanitize_every,
        jobs=jobs_config,
        **_telemetry_config(args),
    )
    result = runner.run_cluster(
        args.traces,
        args.scheme,
        nodes=args.nodes,
        copies=args.copies,
        scale=args.scale,
        seed=args.seed,
        divergence=args.divergence,
        arrival_skew=args.skew,
        replay_config=replay_config,
        cluster_config=cluster_config,
    )
    _print_result(result)
    if result.nodes:
        print()
        print(render_table(
            f"per-node breakdown ({len(result.nodes)} nodes, "
            f"sharded fingerprint directory)",
            ["node", "name", "vols", "reqs", "mean ms", "wr elim",
             "remote lkp", "remote dup", "rebal miss"],
            [
                [
                    n["node_id"],
                    n["name"],
                    len(n.get("volumes", [])),
                    n.get("requests", n.get("requests_served", 0)),
                    f"{n.get('mean_response', 0.0) * 1e3:.3f}",
                    n.get("write_requests_removed", 0),
                    n.get("remote_lookups", 0),
                    n.get("remote_duplicate_blocks", 0),
                    n.get("rebalance_misses", 0),
                ]
                for n in result.nodes
            ],
        ))
    cs = result.cluster_stats
    if cs is not None:
        fabric = cs.get("fabric", {})
        print(f"cluster: {cs['nodes']} nodes, ring {cs['ring_members']}, "
              f"{cs['remote_lookups']} remote lookups, "
              f"{cs['remote_duplicate_blocks']} remote duplicate blocks, "
              f"fabric {fabric.get('rpcs', 0)} RPCs / "
              f"{fabric.get('bytes_moved', 0)} bytes")
        rb = cs.get("rebalance")
        if rb is not None:
            print(f"rebalance: moved {rb.get('entries_migrated', 0)} entries "
                  f"({rb.get('entries_superseded', 0)} superseded), "
                  f"{cs.get('rebalance_misses', 0)} directory misses")
        nf = cs.get("node_failure")
        if nf is not None:
            print(f"node failure: node {nf.get('node')} disk {nf.get('disk')} "
                  f"rebuild done={nf.get('done')} "
                  f"progress={nf.get('progress', 0.0):.2f}")
        dstats = cs.get("directory")
        if dstats is not None:
            print(f"directory: R={dstats.get('replication')} "
                  f"{dstats.get('consistency')}, "
                  f"{dstats.get('read_repairs', 0)} read repairs "
                  f"({dstats.get('repair_pushes', 0)} pushes), "
                  f"{dstats.get('degraded_lookups', 0)} degraded / "
                  f"{dstats.get('unavailable_lookups', 0)} unavailable lookups, "
                  f"{dstats.get('remote_refs_registered', 0)} remote refs, "
                  f"down={dstats.get('down_members', [])}")
            gcs = dstats.get("gc")
            if gcs is not None:
                print(f"gc[{gcs.get('mode')}]: "
                      f"{gcs.get('gc_reclaimed_blocks', 0)} blocks reclaimed, "
                      f"{gcs.get('decrements_applied', 0)} decrements applied, "
                      f"{gcs.get('gc_live_skips', 0)} live skips, "
                      f"{gcs.get('gc_pending_intents', 0)} pending intents, "
                      f"{gcs.get('journal_records', 0)} journal records")
        for oracle in cs.get("oracle", []):
            print(f"oracle node{oracle.get('node')}: "
                  f"{oracle.get('blocks_checked', 0)} blocks checked, "
                  f"{oracle.get('mismatches', 0)} mismatches")
    if result.sanitizer is not None:
        s = result.sanitizer.summary()
        print(f"invariants clean: {s['checks_run']} structural checks, "
              f"{s['decisions_validated']} dedupe decisions validated")
    _print_jobs_summary(result)
    _print_telemetry(result, args)
    if args.report_out is not None:
        from repro.obs import build_run_report, write_report

        config_doc = {
            "traces": list(args.traces),
            "nodes": args.nodes,
            "copies": args.copies,
            "divergence": args.divergence,
            "arrival_skew": args.skew,
            "vnodes": args.vnodes,
            "net_latency": args.net_latency,
            "net_bandwidth": args.net_bandwidth,
            "rebalance_at": args.rebalance_at,
            "rebalance_add": args.rebalance_add,
            "rebalance_remove": args.rebalance_remove,
            "fail_node": args.fail_node,
            "fail_node_at": args.fail_node_at,
        }
        if fail_slow:
            config_doc["fail_slow"] = list(args.fail_slow)
        if jobs_config is not None:
            config_doc["jobs"] = jobs_config.as_dict()
        if directory_config is not None:
            config_doc["replication"] = directory_config.replication
            config_doc["consistency"] = directory_config.consistency.value
            if directory_config.gc is not None:
                config_doc["gc"] = {
                    "mode": directory_config.gc.mode,
                    "start": directory_config.gc.start,
                    "interval": directory_config.gc.interval,
                    "batch": directory_config.gc.batch,
                }
            if directory_config.kill is not None:
                config_doc["kill_metadata_node"] = {
                    "node": directory_config.kill.node,
                    "time": directory_config.kill.time,
                }
        report = build_run_report(
            result,
            seed=args.seed,
            scale=args.scale,
            config=config_doc,
        )
        write_report(report, args.report_out)
        print(f"wrote {args.report_out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments import runner
    from repro.experiments.runner import PAPER_SCHEMES
    from repro.sim.replay import ReplayConfig

    observed = args.seed is not None or args.report_out is not None
    replay_config = ReplayConfig(
        check_invariants=args.check_invariants,
        faults=_fault_plan(args),
        fault_seed=args.fault_seed,
    )
    rows = []
    reports = []
    fault_rows = []
    for scheme in PAPER_SCHEMES:
        if observed:
            result = runner.run_observed(
                args.trace, scheme, scale=args.scale, seed=args.seed,
                replay_config=replay_config,
            )
        else:
            result = runner.run_single(
                args.trace, scheme, scale=args.scale,
                replay_config=replay_config,
            )
        rows.append(
            [
                scheme,
                result.metrics.overall_summary().mean * 1e3,
                result.metrics.read_summary().mean * 1e3,
                result.metrics.write_summary().mean * 1e3,
                f"{result.removed_write_pct:.1f}%",
                result.capacity_blocks,
            ]
        )
        if result.fault_stats is not None:
            oracle = result.fault_stats.get("oracle", {})
            fault_rows.append([
                scheme,
                result.fault_stats.get("recovery_latency", {}).get("count", 0),
                oracle.get("blocks_checked", 0),
                oracle.get("at_risk_reads", 0),
                oracle.get("mismatches", 0),
            ])
        if args.report_out is not None:
            from repro.obs import build_run_report

            reports.append(
                build_run_report(result, seed=args.seed, scale=args.scale)
            )
    print(
        render_table(
            f"{args.trace} @ scale {args.scale} (4-disk RAID-5)",
            ["scheme", "mean (ms)", "read (ms)", "write (ms)", "removed", "capacity"],
            rows,
        )
    )
    if fault_rows:
        print()
        print(render_table(
            "fault injection (same plan armed against every scheme)",
            ["scheme", "recoveries", "blocks checked", "at-risk reads",
             "mismatches"],
            fault_rows,
        ))
    if args.report_out is not None:
        from repro.obs import build_compare_report, write_report

        write_report(build_compare_report(reports), args.report_out)
        print(f"\nwrote {args.report_out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import diff_reports, load_report, render_report

    if len(args.paths) > 2:
        print("stats takes one report (render) or two (diff)", file=sys.stderr)
        return 2
    if len(args.paths) == 2:
        a, b = (load_report(p) for p in args.paths)
        print(diff_reports(a, b))
        return 0
    report = load_report(args.paths[0])
    print(render_report(report))
    if args.buckets:
        docs = report.get("runs", [report]) if report.get("kind") else [report]
        for doc in docs:
            for name, hist in sorted(doc.get("histograms", {}).items()):
                buckets = hist.get("buckets")
                if not buckets:
                    continue
                print()
                print(render_table(
                    f"{doc.get('scheme')}/{doc.get('trace')} {name} buckets (s)",
                    ["lower", "upper", "count"],
                    [[f"{lo:.3g}", hi if isinstance(hi, str) else f"{hi:.3g}", c]
                     for lo, hi, c in buckets],
                ))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    names = list(FIGURES) if args.only is None else args.only.split(",")
    for name in names:
        attr = FIGURES.get(name.strip())
        if attr is None:
            print(f"unknown figure {name!r}; choose from {', '.join(FIGURES)}",
                  file=sys.stderr)
            return 2
        fn = getattr(figures, attr)
        if name == "table1":
            _rows, text = fn()
        else:
            _rows, text = fn(scale=args.scale)
        print(text)
        print()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.traces import (
        generate_trace,
        io_vs_capacity_redundancy,
        load_trace,
        paper_traces,
        redundancy_by_size,
        save_trace,
        trace_characteristics,
    )

    if args.trace_command == "generate":
        spec = paper_traces()[args.trace]
        trace = generate_trace(spec, seed=args.seed, scale=args.scale)
        save_trace(trace, args.out)
        print(f"wrote {args.out}: {len(trace)} requests "
              f"({trace.warmup_count} warm-up), {trace.logical_blocks} logical blocks")
        return 0

    trace = load_trace(args.path)
    ch = trace_characteristics(trace)
    red = io_vs_capacity_redundancy(trace)
    print(render_table(
        f"trace {trace.name}",
        ["metric", "value"],
        [
            ["requests (measured)", ch.io_count],
            ["write ratio", f"{ch.write_ratio * 100:.1f}%"],
            ["mean request size", f"{ch.mean_request_kb:.1f} KB"],
            ["I/O redundancy", f"{red.io_redundancy_pct:.1f}%"],
            ["capacity redundancy", f"{red.capacity_redundancy_pct:.1f}%"],
        ],
    ))
    rows = redundancy_by_size(trace)
    print()
    print(render_table(
        "write redundancy by size",
        ["bucket", "total", "fully red.", "partially red."],
        [[f"{r.bucket_kb} KB", r.total, r.fully_redundant, r.partially_redundant] for r in rows],
    ))
    return 0


def _timeline_rows(doc: dict, limit: int) -> List[list]:
    windows = doc.get("windows", [])
    shown = windows if limit <= 0 else windows[:limit]
    rows = []
    for w in shown:
        rows.append([
            w["index"],
            f"{w['t0']:.2f}",
            w.get("requests", 0),
            f"{w.get('read_latency', {}).get('p95', 0.0) * 1e3:.3f}",
            f"{w.get('write_latency', {}).get('p95', 0.0) * 1e3:.3f}",
            f"{w.get('dedup_ratio', 0.0):.3f}",
            f"{w.get('read_cache_hit_rate', 0.0):.3f}",
            ",".join(sorted(w.get("activity", {}))) or "-",
        ])
    return rows


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import load_timeline, to_openmetrics

    if args.timeline_command == "render":
        doc = load_timeline(args.path)
        windows = doc.get("windows", [])
        print(render_table(
            f"timeline: {len(windows)} windows of {doc.get('window')}s "
            f"(t_end {doc.get('t_end', 0.0):.3f})",
            ["win", "t0", "reqs", "rd p95 ms", "wr p95 ms", "dedup",
             "cache hit", "activity"],
            _timeline_rows(doc, args.limit),
        ))
        if args.limit > 0 and len(windows) > args.limit:
            print(f"... {len(windows) - args.limit} more windows "
                  f"(--limit 0 for all)")
        return 0

    if args.timeline_command == "diff":
        a, b = (load_timeline(p) for p in args.paths)
        wa = {w["index"]: w for w in a.get("windows", [])}
        wb = {w["index"]: w for w in b.get("windows", [])}
        print(f"A: {len(wa)} windows of {a.get('window')}s; "
              f"B: {len(wb)} windows of {b.get('window')}s")
        rows = []
        for idx in sorted(set(wa) | set(wb)):
            xa, xb = wa.get(idx), wb.get(idx)
            if xa == xb:
                continue
            ra = xa.get("requests", 0) if xa else "--"
            rb = xb.get("requests", 0) if xb else "--"
            pa = (f"{xa.get('read_latency', {}).get('p95', 0.0) * 1e3:.3f}"
                  if xa else "--")
            pb = (f"{xb.get('read_latency', {}).get('p95', 0.0) * 1e3:.3f}"
                  if xb else "--")
            rows.append([idx, ra, rb, pa, pb])
        if not rows:
            print("timelines are identical")
            return 0
        shown = rows if args.limit <= 0 else rows[:args.limit]
        print(render_table(
            f"{len(rows)} differing windows",
            ["win", "reqs A", "reqs B", "rd p95 A (ms)", "rd p95 B (ms)"],
            shown,
        ))
        if args.limit > 0 and len(rows) > args.limit:
            print(f"... {len(rows) - args.limit} more differing windows")
        return 1

    # export
    doc = load_timeline(args.path)
    text = to_openmetrics(doc, prefix=args.prefix)
    if args.out is None:
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}: {len(text.splitlines())} lines")
    return 0


def cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs import build_dashboard_html, load_report

    report = load_report(args.path)
    html = build_dashboard_html(report)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(f"wrote {args.out} ({len(html)} bytes, self-contained)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report_md import build_report
    from pathlib import Path

    report = build_report(args.scale)
    out = Path.cwd() / "EXPERIMENTS.md"
    out.write_text(report + "\n")
    print(f"wrote {out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint

    argv: List[str] = list(args.paths) or ["src"]
    argv += ["--format", args.format]
    if args.flow:
        argv += ["--flow"]
    if args.select is not None:
        argv += ["--select", args.select]
    if args.fix:
        argv += ["--fix"]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.write_baseline is not None:
        argv += ["--write-baseline", args.write_baseline]
    if args.dump_summaries:
        argv += ["--dump-summaries"]
    if args.list_rules:
        argv += ["--list-rules"]
    return lint.main(argv)


def cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.export import export_all

    export_all(Path(args.out), args.scale)
    print(f"wrote {args.out}/ (CSV per figure + figures.json) at scale {args.scale}")
    return 0


COMMANDS = {
    "run": cmd_run,
    "run-multi": cmd_run_multi,
    "run-cluster": cmd_run_cluster,
    "compare": cmd_compare,
    "stats": cmd_stats,
    "figures": cmd_figures,
    "timeline": cmd_timeline,
    "dash": cmd_dash,
    "trace": cmd_trace,
    "report": cmd_report,
    "export": cmd_export,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `repro stats r.json | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
