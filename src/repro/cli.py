"""Command-line interface.

::

    python -m repro run --trace mail --scheme POD --scale 0.1
    python -m repro compare --trace homes --scale 0.1
    python -m repro figures --only fig8,fig11 --scale 0.25
    python -m repro trace generate --trace web-vm --scale 0.05 --out w.trace
    python -m repro trace analyze w.trace
    python -m repro report --scale 0.25

Everything the CLI does is also available as a library call; the CLI
is a thin argparse layer over :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.metrics.report import render_table

#: figure-name -> driver attribute on repro.experiments.figures
FIGURES = {
    "table1": "table1_features",
    "table2": "table2_characteristics",
    "fig1": "fig1_redundancy_by_size",
    "fig2": "fig2_io_vs_capacity",
    "fig3": "fig3_partition_sweep",
    "fig8": "fig8_overall_response",
    "fig9": "fig9_read_write_split",
    "fig10": "fig10_capacity",
    "fig11": "fig11_write_reduction",
    "nvram": "nvram_overhead",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="POD (IPDPS'14) reproduction: trace-driven dedup experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="replay one trace through one scheme")
    run.add_argument("--trace", required=True, choices=["web-vm", "homes", "mail"])
    run.add_argument("--scheme", required=True)
    run.add_argument("--scale", type=float, default=0.1)
    run.add_argument("--index-fraction", type=float, default=None,
                     help="fixed index-cache share (non-POD schemes)")
    run.add_argument("--scheduler", choices=["fcfs", "clook"], default=None,
                     help="event-driven disk queue discipline "
                     "(default: fast analytic FCFS)")
    run.add_argument("--failed-disk", type=int, default=None,
                     help="run the RAID-5 array degraded with this member failed")
    run.add_argument("--raid", choices=["raid5", "raid0", "single"], default="raid5")
    run.add_argument("--ndisks", type=int, default=None,
                     help="member disks (default 4 for raid5/raid0, 1 for single)")

    compare = sub.add_parser("compare", help="replay one trace through every scheme")
    compare.add_argument("--trace", required=True, choices=["web-vm", "homes", "mail"])
    compare.add_argument("--scale", type=float, default=0.1)

    figures_cmd = sub.add_parser("figures", help="regenerate the paper's tables/figures")
    figures_cmd.add_argument("--only", default=None,
                             help=f"comma list from: {','.join(FIGURES)}")
    figures_cmd.add_argument("--scale", type=float, default=0.25)

    trace = sub.add_parser("trace", help="generate or analyse trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate", help="write a synthetic trace file")
    gen.add_argument("--trace", required=True, choices=["web-vm", "homes", "mail"])
    gen.add_argument("--scale", type=float, default=0.1)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", required=True)
    ana = trace_sub.add_parser("analyze", help="Table-II/Fig-1/Fig-2 stats of a trace file")
    ana.add_argument("path")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("--scale", type=float, default=0.25)

    export = sub.add_parser("export", help="write every figure's data as CSV/JSON")
    export.add_argument("--out", default="figures_out")
    export.add_argument("--scale", type=float, default=0.25)

    return parser


def _print_result(result) -> None:
    s = result.summary()
    rows = [
        ["requests measured", s["requests"]],
        ["mean response (ms)", s["mean_response"] * 1e3],
        ["read mean (ms)", s["read_mean_response"] * 1e3],
        ["write mean (ms)", s["write_mean_response"] * 1e3],
        ["p95 (ms)", s["p95_response"] * 1e3],
        ["write requests removed", f"{result.removed_write_pct:.1f}%"],
        ["capacity (blocks)", result.capacity_blocks],
        ["map entries", result.scheme_stats["map_entries"]],
        ["NVRAM peak (bytes)", result.scheme_stats["nvram_peak_bytes"]],
    ]
    print(render_table(f"{result.scheme_name} on {result.trace_name}", ["metric", "value"], rows))


def cmd_run(args) -> int:
    from repro.experiments import runner
    from repro.sim.replay import ReplayConfig
    from repro.storage.raid import RaidLevel
    from repro.storage.scheduler import SchedulingPolicy

    overrides = {}
    if args.index_fraction is not None:
        overrides["index_fraction"] = args.index_fraction
    level = {
        "raid5": RaidLevel.RAID5,
        "raid0": RaidLevel.RAID0,
        "single": RaidLevel.SINGLE,
    }[args.raid]
    ndisks = args.ndisks if args.ndisks is not None else (1 if level is RaidLevel.SINGLE else 4)
    replay_config = ReplayConfig(
        raid_level=level,
        ndisks=ndisks,
        scheduler=SchedulingPolicy(args.scheduler) if args.scheduler else None,
        failed_disk=args.failed_disk,
    )
    result = runner.run_single(
        args.trace, args.scheme, scale=args.scale, replay_config=replay_config, **overrides
    )
    _print_result(result)
    return 0


def cmd_compare(args) -> int:
    from repro.experiments import runner
    from repro.experiments.runner import PAPER_SCHEMES

    rows = []
    for scheme in PAPER_SCHEMES:
        result = runner.run_single(args.trace, scheme, scale=args.scale)
        rows.append(
            [
                scheme,
                result.metrics.overall_summary().mean * 1e3,
                result.metrics.read_summary().mean * 1e3,
                result.metrics.write_summary().mean * 1e3,
                f"{result.removed_write_pct:.1f}%",
                result.capacity_blocks,
            ]
        )
    print(
        render_table(
            f"{args.trace} @ scale {args.scale} (4-disk RAID-5)",
            ["scheme", "mean (ms)", "read (ms)", "write (ms)", "removed", "capacity"],
            rows,
        )
    )
    return 0


def cmd_figures(args) -> int:
    from repro.experiments import figures

    names = list(FIGURES) if args.only is None else args.only.split(",")
    for name in names:
        attr = FIGURES.get(name.strip())
        if attr is None:
            print(f"unknown figure {name!r}; choose from {', '.join(FIGURES)}",
                  file=sys.stderr)
            return 2
        fn = getattr(figures, attr)
        if name == "table1":
            _rows, text = fn()
        else:
            _rows, text = fn(scale=args.scale)
        print(text)
        print()
    return 0


def cmd_trace(args) -> int:
    from repro.traces import (
        generate_trace,
        io_vs_capacity_redundancy,
        load_trace,
        paper_traces,
        redundancy_by_size,
        save_trace,
        trace_characteristics,
    )

    if args.trace_command == "generate":
        spec = paper_traces()[args.trace]
        trace = generate_trace(spec, seed=args.seed, scale=args.scale)
        save_trace(trace, args.out)
        print(f"wrote {args.out}: {len(trace)} requests "
              f"({trace.warmup_count} warm-up), {trace.logical_blocks} logical blocks")
        return 0

    trace = load_trace(args.path)
    ch = trace_characteristics(trace)
    red = io_vs_capacity_redundancy(trace)
    print(render_table(
        f"trace {trace.name}",
        ["metric", "value"],
        [
            ["requests (measured)", ch.io_count],
            ["write ratio", f"{ch.write_ratio * 100:.1f}%"],
            ["mean request size", f"{ch.mean_request_kb:.1f} KB"],
            ["I/O redundancy", f"{red.io_redundancy_pct:.1f}%"],
            ["capacity redundancy", f"{red.capacity_redundancy_pct:.1f}%"],
        ],
    ))
    rows = redundancy_by_size(trace)
    print()
    print(render_table(
        "write redundancy by size",
        ["bucket", "total", "fully red.", "partially red."],
        [[f"{r.bucket_kb} KB", r.total, r.fully_redundant, r.partially_redundant] for r in rows],
    ))
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report_md import build_report
    from pathlib import Path

    report = build_report(args.scale)
    out = Path.cwd() / "EXPERIMENTS.md"
    out.write_text(report + "\n")
    print(f"wrote {out}")
    return 0


def cmd_export(args) -> int:
    from pathlib import Path

    from repro.experiments.export import export_all

    export_all(Path(args.out), args.scale)
    print(f"wrote {args.out}/ (CSV per figure + figures.json) at scale {args.scale}")
    return 0


COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "figures": cmd_figures,
    "trace": cmd_trace,
    "report": cmd_report,
    "export": cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
