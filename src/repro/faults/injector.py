"""Deterministic fault injection + the recovery paths it exercises.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete, *seeded* misbehaviour threaded through every layer of a
replay, together with the machinery that lets the simulated system
survive it:

==================  ==================================================
fault class         injection / recovery path
==================  ==================================================
latent sector       engine-level disk-op hook: the read attempt fails
errors              (but still spins the disk), is retried with
                    bounded backoff, then reconstructed by reading the
                    same block range from every surviving member of
                    the row (RAID-5 parity, the per-fragment rule of
                    ``RaidArray.map_read_degraded``) and repaired with
                    a write back to the faulted disk -- all charged at
                    real mechanical cost.
fail-slow disks     per-disk latency-multiplier windows inside
                    ``Disk.service`` (a degrading drive is correct but
                    slow).
member failure      ``Simulator.failed_disk`` flips mid-replay, so
                    foreground traffic pays degraded-read/write costs,
                    while a :class:`~repro.storage.rebuild.RebuildController`
                    runs as paced background load until the spare is
                    rebuilt and the array heals.
NVRAM power loss    DRAM state drops, the Map table is re-derived from
                    the write-ahead :class:`~repro.storage.journal.MapJournal`
                    (torn-tail detection, replay, refcount
                    re-derivation); LBAs whose recovered mapping
                    diverges from the pre-crash truth are quarantined
                    into dedupe-bypass mode and healed by later writes.
index corruption    live Index-table fingerprints are bit-flipped in a
                    structure-preserving way; the true fingerprint now
                    misses (POD's miss-as-unique degradation) and any
                    hit on the corrupt entry is caught by the commit
                    content check.
==================  ==================================================

Every random choice flows from one ``numpy`` generator seeded by the
plan, so a plan + seed reproduces the exact fault sequence; the
per-fault counters, recovery-latency histogram and the *blast-radius*
histogram (logical blocks at risk per lost physical block, the number
that quantifies how deduplication concentrates failure domains) land
in the run report via the replay's metrics registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

import numpy as np

from repro.errors import ConfigError, FaultError
from repro.faults.oracle import ContentOracle
from repro.faults.plan import (
    FaultPlan,
    IndexCorruptionSpec,
    MemberFailureSpec,
    NvramLossSpec,
)
from repro.obs.events import EventType, TraceLevel
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.request import DiskOp, OpType
from repro.storage.raid import RaidLevel
from repro.storage.rebuild import RebuildController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import DedupScheme
    from repro.sim.engine import Simulator

#: Blast-radius histogram buckets: powers of two up to 64 Ki logical
#: blocks per lost physical block.
BLAST_RADIUS_BOUNDS = [float(2**i) for i in range(17)]


class FaultInjector:
    """Owns one replay's fault schedule, recovery state and counters."""

    def __init__(
        self,
        plan: FaultPlan,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self._registry = registry
        #: Simulated time before which arrivals stall behind crash
        #: recovery (NVRAM-loss replay is a stop-the-world pause).
        self.blocked_until = 0.0
        #: Per-volume admission stalls (``NvramLossSpec.scope ==
        #: "volume"``): volume_id -> blocked-until time.  Consulted via
        #: :meth:`blocked_until_for`; empty for global-scope plans.
        self._blocked_by_volume: Dict[int, float] = {}
        #: The replay's namespace mapper (set by the harness on
        #: multi-volume replays); needed to attribute recovered journal
        #: records to tenant namespaces for per-volume recovery.
        self.mapper: Optional[Any] = None
        #: Leased-job runtime (set by the harness when jobs are armed):
        #: the rebuild then runs as a leased job instead of the legacy
        #: pacing tick.
        self.jobs: Optional[Any] = None
        #: True while the scrubber job's region read is in flight
        #: (synchronous in the analytic path); attributes LSE
        #: discoveries to the scrubber.
        self.in_scrub = False
        self.obs: TraceRecorder = NULL_RECORDER
        #: Attached windowed sampler and span tracer (``None`` unless
        #: the replay armed telemetry): recovery work annotates its
        #: windows and emits ``recovery.*`` spans.  Observation only.
        self.timeline: Optional[Any] = None
        self.spans: Optional[Any] = None
        #: Per-fault counters (mirrored into the registry at finalize).
        self.counters: Dict[str, int] = {}
        if registry is not None:
            self.recovery_hist = registry.histogram("faults.recovery_latency")
            self.blast_hist = registry.histogram(
                "faults.blast_radius", BLAST_RADIUS_BOUNDS
            )
        else:
            self.recovery_hist = Histogram("faults.recovery_latency")
            self.blast_hist = Histogram("faults.blast_radius", BLAST_RADIUS_BOUNDS)
        #: disk_id -> {disk_pba: volume_pba} of still-latent sector errors.
        self._lse_by_disk: Dict[int, Dict[int, int]] = {}
        self.rebuild: Optional[RebuildController] = None
        self._member_failed_at: Optional[float] = None
        self._finalized = False
        #: The end-to-end content oracle shadowing this replay.
        self.oracle = ContentOracle()
        self._scheme: Optional["DedupScheme"] = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, sim: "Simulator", scheme: "DedupScheme") -> None:
        """Arm every fault in the plan against a fresh replay."""
        plan = self.plan
        if sim.schedulers is not None:
            raise ConfigError(
                "fault injection requires the analytic FCFS service path "
                "(event-driven schedulers are not supported)"
            )
        self._scheme = scheme

        # -- latent sector errors --------------------------------------
        lse_pbas = self._resolve_lse_pbas(scheme)
        for vpba in lse_pbas:
            disk, disk_pba, _row = sim.raid.locate(vpba)
            self._lse_by_disk.setdefault(disk, {})[disk_pba] = vpba
        if self._lse_by_disk:
            sim.fault_hook = self.on_disk_op
        self._count("lse_injected", len(lse_pbas))

        # -- fail-slow windows -----------------------------------------
        for spec in plan.fail_slow:
            if not (0 <= spec.disk < len(sim.disks)):
                raise FaultError(f"fail-slow spec names unknown disk {spec.disk}")
            sim.disks[spec.disk].add_slow_window(spec.start, spec.end, spec.multiplier)
            self._count("fail_slow_windows")

        # -- member failure + rebuild ----------------------------------
        if plan.member_failure is not None:
            spec = plan.member_failure
            if sim.raid.geometry.level is not RaidLevel.RAID5:
                raise ConfigError("member failure requires a RAID-5 array")
            if not (0 <= spec.disk < len(sim.disks)):
                raise FaultError(f"member-failure spec names unknown disk {spec.disk}")
            if sim.failed_disk is not None:
                raise ConfigError(
                    "cannot schedule a member failure on an array that "
                    "already runs degraded (ReplayConfig.failed_disk)"
                )
            sim.schedule_callback(
                spec.time, self._begin_member_failure, sim, scheme, spec
            )

        # -- NVRAM power loss ------------------------------------------
        if plan.nvram_loss:
            scheme.enable_journal()
            for nspec in plan.nvram_loss:
                sim.schedule_callback(
                    nspec.time, self._fire_nvram_loss, sim, scheme, nspec
                )

        # -- index corruption ------------------------------------------
        for cspec in plan.index_corruption:
            sim.schedule_callback(
                cspec.time, self._fire_index_corruption, sim, scheme, cspec
            )

    def _resolve_lse_pbas(self, scheme: "DedupScheme") -> List[int]:
        """Pinned PBAs plus seeded random draws from the home region."""
        spec = self.plan.latent_sector_errors
        total = scheme.regions.total_blocks
        chosen: Set[int] = set()
        for pba in spec.pbas:
            if pba >= total:
                raise FaultError(
                    f"latent sector error at PBA {pba} outside the volume "
                    f"of {total} blocks"
                )
            chosen.add(pba)
        logical = scheme.regions.logical_blocks
        budget = min(spec.random_count, max(0, logical - len(chosen)))
        while budget > 0:
            pba = int(self.rng.integers(0, logical))
            if pba not in chosen:
                chosen.add(pba)
                budget -= 1
        # Correlated bursts draw *after* the independent errors so a
        # plan without bursts keeps its exact legacy RNG sequence.
        burst = self.plan.lse_bursts
        if burst is not None:
            tracks = max(1, logical // burst.track_blocks)
            injected = 0
            for _burst in range(burst.bursts):
                anchor = int(self.rng.integers(0, tracks))
                offset = int(self.rng.integers(0, burst.track_blocks))
                for t in range(burst.adjacency):
                    track_base = ((anchor + t) % tracks) * burst.track_blocks
                    for i in range(burst.length):
                        pba = track_base + (offset + i) % burst.track_blocks
                        if pba < logical and pba not in chosen:
                            chosen.add(pba)
                            injected += 1
            self._count("lse_burst_blocks", injected)
        return sorted(chosen)

    # ------------------------------------------------------------------
    # latent sector errors (engine disk-op hook)
    # ------------------------------------------------------------------

    def on_disk_op(
        self, sim: "Simulator", now: float, op: DiskOp
    ) -> Optional[float]:
        """Intercept one disk op; return its completion time to
        override normal service, or ``None`` to fall through."""
        bad = self._lse_by_disk.get(op.disk_id)
        if not bad:
            return None
        hit = [dpba for dpba in bad if op.pba <= dpba < op.pba + op.nblocks]
        if not hit:
            return None
        if op.op is OpType.WRITE:
            # Writing a bad sector remaps it: the error is healed
            # without any recovery traffic, as on real drives.
            for dpba in hit:
                del bad[dpba]
            self._count("lse_healed_by_write", len(hit))
            return None

        disk = sim.disks[op.disk_id]
        self._count("lse_read_failures")
        if self.in_scrub:
            # The scrubber got here before any foreground read did.
            self._count("lse_scrub_discoveries", len(hit))
        # The failed attempt still costs a full mechanical access.
        done = disk.service(now, op.pba, op.nblocks)
        retry = self.plan.lse_retry
        for _attempt in range(retry.max_retries):
            self._count("lse_retries")
            done = disk.service(done + retry.backoff, op.pba, op.nblocks)

        recoverable = (
            sim.raid.geometry.level is RaidLevel.RAID5
            and sim.failed_disk is None
        )
        if not recoverable:
            # No parity (RAID-0/SINGLE) or a peer is already dead: the
            # read cannot be reconstructed.  The error stays latent and
            # is counted; the content oracle tracks whether any
            # logical block actually depended on it.
            self._count("lse_unrecoverable")
            if self.obs.level >= TraceLevel.SUMMARY:
                self.obs.emit(
                    TraceLevel.SUMMARY, now, EventType.FAULT_INJECT,
                    kind="lse_unrecoverable",
                    detail=f"disk {op.disk_id} pba {hit[0]} (+{len(hit) - 1} more)",
                )
            return done
        # Degraded-read reconstruction, per-fragment (the
        # map_read_degraded rule): read the same block range from
        # every surviving member of the row, then repair the faulted
        # range with a write back.
        peer_done = done
        for peer in sim.disks:
            if peer.disk_id == op.disk_id:
                continue
            t = peer.service(done, op.pba, op.nblocks)
            if t > peer_done:
                peer_done = t
        repaired = disk.service(peer_done, op.pba, op.nblocks)
        assert self._scheme is not None
        for dpba in hit:
            self._observe_blast_radius(self._scheme, bad[dpba])
            del bad[dpba]
        self._count("lse_reconstructions")
        self._count("lse_sectors_recovered", len(hit))
        self.recovery_hist.observe(repaired - now)
        if self.timeline is not None:
            self.timeline.note_activity(now, "lse_recovery")
        if self.spans is not None:
            self.spans.emit(
                now, repaired, "recovery.lse",
                disk=op.disk_id, sectors=len(hit),
            )
        if self.obs.level >= TraceLevel.SUMMARY:
            self.obs.emit(
                TraceLevel.SUMMARY, now, EventType.FAULT_RECOVER,
                kind="lse", latency=repaired - now,
                detail=f"disk {op.disk_id} sectors {len(hit)}",
            )
        return repaired

    # ------------------------------------------------------------------
    # member failure + paced rebuild
    # ------------------------------------------------------------------

    def _begin_member_failure(
        self, sim: "Simulator", scheme: "DedupScheme", spec: MemberFailureSpec
    ) -> None:
        sim.failed_disk = spec.disk
        self._member_failed_at = sim.now
        self._count("member_failures")
        su = sim.raid.geometry.stripe_unit_blocks
        disk_rows = max(1, sim.disks[spec.disk].params.total_blocks // su)
        live = (
            scheme.map_table.live_pbas(scheme.written_lbas)
            if spec.capacity_aware
            else None
        )
        ctrl = RebuildController(sim.raid, spec.disk, disk_rows, live)
        self.rebuild = ctrl
        if self.timeline is not None:
            self.timeline.note_activity(sim.now, "degraded", 1.0)
        if self.obs.level >= TraceLevel.SUMMARY:
            self.obs.emit(
                TraceLevel.SUMMARY, sim.now, EventType.FAULT_INJECT,
                kind="member_failure",
                detail=f"disk {spec.disk} failed; rebuilding {disk_rows} rows",
            )
        if self.jobs is not None:
            # Jobs armed: the rebuild runs as a leased job -- a worker
            # claims it, paces the same batches, and survives stale
            # leases via epoch-fenced re-claim.
            from repro.jobs.jobs import RebuildJob

            def issue(ops: List[DiskOp]) -> float:
                holder: Dict[str, float] = {}
                sim.issue_disk_ops(ops, lambda t: holder.setdefault("t", t))
                return holder.get("t", sim.now)

            self.jobs.submit(
                "rebuild",
                RebuildJob(ctrl, spec.rows_per_batch, issue),
                spec.interval,
                on_done=lambda _t: self._complete_member_failure(sim, spec),
            )
            return
        sim.schedule_callback(sim.now + spec.interval, self._rebuild_tick, sim, spec)

    def _complete_member_failure(
        self, sim: "Simulator", spec: MemberFailureSpec
    ) -> None:
        """The array heals: shared by the legacy tick and the job path."""
        ctrl = self.rebuild
        assert ctrl is not None
        sim.failed_disk = None
        assert self._member_failed_at is not None
        duration = sim.now - self._member_failed_at
        self._count("rebuilds_completed")
        self.recovery_hist.observe(duration)
        if self.spans is not None:
            self.spans.emit(
                self._member_failed_at, sim.now, "recovery.rebuild",
                disk=spec.disk, rows_rebuilt=ctrl.rows_rebuilt,
            )
        if self.obs.level >= TraceLevel.SUMMARY:
            self.obs.emit(
                TraceLevel.SUMMARY, sim.now, EventType.FAULT_RECOVER,
                kind="member_failure", latency=duration,
                detail=(
                    f"disk {spec.disk} rebuilt: {ctrl.rows_rebuilt} rows "
                    f"rebuilt, {ctrl.rows_skipped} skipped"
                ),
            )

    def _rebuild_tick(self, sim: "Simulator", spec: MemberFailureSpec) -> None:
        ctrl = self.rebuild
        assert ctrl is not None
        if not ctrl.done:
            ops = ctrl.next_batch(spec.rows_per_batch)
            if ops:
                # Background load: competes for the spindles, gates
                # nothing.
                sim.issue_disk_ops(ops, lambda _t: None)
        if self.timeline is not None:
            self.timeline.note_activity(sim.now, "rebuild", ctrl.progress)
        if ctrl.done:
            self._complete_member_failure(sim, spec)
            return
        sim.schedule_callback(sim.now + spec.interval, self._rebuild_tick, sim, spec)

    # ------------------------------------------------------------------
    # NVRAM power loss + journal recovery
    # ------------------------------------------------------------------

    def _fire_nvram_loss(
        self, sim: "Simulator", scheme: "DedupScheme", spec: NvramLossSpec
    ) -> None:
        journal = scheme.map_table.journal
        assert journal is not None  # attached by install()
        truth = scheme.map_table.snapshot()
        self._count("nvram_losses")
        self._count("nvram_entries_torn", min(spec.torn_entries, len(truth)))
        if self.obs.level >= TraceLevel.SUMMARY:
            self.obs.emit(
                TraceLevel.SUMMARY, sim.now, EventType.FAULT_INJECT,
                kind="nvram_loss",
                detail=(
                    f"power cut: {len(truth)} map entries at stake, journal "
                    f"tail -{spec.lose_journal_tail} lost "
                    f"/{spec.tear_journal_tail} torn"
                ),
            )

        # The crash: DRAM gone, journal tail damaged.
        scheme.simulate_power_failure()
        lost = journal.lose_tail(spec.lose_journal_tail)
        torn = journal.tear_tail(spec.tear_journal_tail)
        self._count("journal_records_lost", lost)
        self._count("journal_records_torn", torn)

        # Recovery: replay the surviving prefix, scrub structurally
        # invalid entries, re-derive refcounts wholesale.
        mapping, replayed, torn_detected = journal.replay()
        if torn_detected:
            self._count("torn_tails_detected")
        scrubbed = self._scrub_recovered_mapping(scheme, mapping)
        self._count("journal_records_replayed", replayed)
        self._count("recovery_entries_scrubbed", scrubbed)

        diverged = {
            lba
            for lba in set(truth) | set(mapping)
            if truth.get(lba) != mapping.get(lba)
        }
        # Blast radius of the crash: per physical block whose mapping
        # was lost, how many logical blocks referenced it pre-crash.
        at_risk_pbas = {truth[lba] for lba in diverged if lba in truth}
        for pba in sorted(at_risk_pbas):
            refs = sum(1 for t in truth.values() if t == pba)
            self.blast_hist.observe(float(refs))

        scheme.map_table.restore_mapping(mapping)
        if diverged:
            scheme.quarantine(diverged)
            self.oracle.mark_at_risk(diverged)
            self._count("lbas_quarantined", len(diverged))

        cost = spec.base_recovery_cost + spec.replay_cost_per_record * replayed
        if spec.scope == "volume" and self.mapper is not None:
            # Per-volume recovery: each tenant namespace replays its own
            # journal partition (cost proportional to the map entries
            # re-derived for that namespace, plus the shared base
            # pause), so unaffected tenants resume admission first.
            counts: Dict[int, int] = {
                volume.volume_id: 0 for volume in self.mapper
            }
            for lba in mapping:
                vid, _local = self.mapper.locate(lba)
                counts[vid] = counts.get(vid, 0) + 1
            worst = spec.base_recovery_cost
            for vid in sorted(counts):
                cost_v = (
                    spec.base_recovery_cost
                    + spec.replay_cost_per_record * counts[vid]
                )
                until = sim.now + cost_v
                if until > self._blocked_by_volume.get(vid, 0.0):
                    self._blocked_by_volume[vid] = until
                if cost_v > worst:
                    worst = cost_v
            cost = worst
            self._count("nvram_volume_recoveries", len(counts))
        else:
            self.blocked_until = max(self.blocked_until, sim.now + cost)
        self.recovery_hist.observe(cost)
        if self.timeline is not None:
            # Stop-the-world recovery spans a known interval; stamp it
            # on every overlapping window.
            self.timeline.annotate_interval("nvram_recovery", sim.now, sim.now + cost)
        if self.spans is not None:
            self.spans.emit(
                sim.now, sim.now + cost, "recovery.nvram",
                replayed=replayed, quarantined=len(diverged),
            )
        if self.obs.level >= TraceLevel.SUMMARY:
            self.obs.emit(
                TraceLevel.SUMMARY, sim.now, EventType.FAULT_RECOVER,
                kind="nvram_loss", latency=cost,
                detail=(
                    f"replayed {replayed} records, scrubbed {scrubbed}, "
                    f"quarantined {len(diverged)} LBA(s)"
                ),
            )

    @staticmethod
    def _scrub_recovered_mapping(
        scheme: "DedupScheme", mapping: Dict[int, int]
    ) -> int:
        """Drop recovered entries that fail the structural fsck.

        A lost CLEAR record can resurrect a mapping to a since-freed
        log block or an overwritten target; keeping it would violate
        the Map-table invariants.  Such entries are dropped -- the LBA
        falls back to its home block and lands in the diverged
        (quarantined) set.
        """
        regions = scheme.regions
        scrubbed = 0
        for lba, pba in list(mapping.items()):
            bad = (
                not (0 <= pba < regions.total_blocks)
                or not (regions.is_home(pba) or regions.is_log(pba))
                or pba == regions.home_of(lba)
                or scheme.content.read(pba) is None
                or (regions.is_log(pba) and not scheme.log_alloc.is_allocated(pba))
            )
            if bad:
                del mapping[lba]
                scrubbed += 1
        return scrubbed

    def blocked_until_for(self, volume_id: int) -> float:
        """Admission stall horizon for one tenant: the global
        stop-the-world stall or the volume's own recovery, whichever
        ends later."""
        blocked = self._blocked_by_volume.get(volume_id, 0.0)
        return blocked if blocked > self.blocked_until else self.blocked_until

    # ------------------------------------------------------------------
    # index corruption
    # ------------------------------------------------------------------

    def _fire_index_corruption(
        self, sim: "Simulator", scheme: "DedupScheme", spec: IndexCorruptionSpec
    ) -> None:
        table = scheme.index_table
        if table is None or len(table) == 0:
            self._count("index_corruptions_skipped")
            return
        keys = list(table.lru.keys_lru_order())
        n = min(spec.entries, len(keys))
        picked = self.rng.choice(len(keys), size=n, replace=False)
        flipped_total = 0
        for i in sorted(int(j) for j in picked):
            fp = keys[i]
            entry = table.peek(fp)
            if entry is None:  # pragma: no cover - keys are live
                continue
            bit = spec.bit if spec.bit is not None else int(self.rng.integers(0, 62))
            flipped = fp ^ (1 << bit)
            # Structure-preserving corruption: the entry keeps its PBA
            # claim but advertises a wrong fingerprint, exactly what a
            # bit flip in the fingerprint field does.
            table.remove(fp)
            table.insert(flipped, entry.pba)
            evicted = table.drain_evicted()
            if evicted:
                scheme.cache.note_index_evictions(evicted)
            flipped_total += 1
        self._count("index_corruptions", flipped_total)
        if self.timeline is not None and flipped_total:
            self.timeline.note_activity(sim.now, "index_corruption")
        if self.obs.level >= TraceLevel.SUMMARY:
            self.obs.emit(
                TraceLevel.SUMMARY, sim.now, EventType.FAULT_INJECT,
                kind="index_corruption",
                detail=f"bit-flipped {flipped_total} live fingerprint(s)",
            )

    # ------------------------------------------------------------------
    # blast radius
    # ------------------------------------------------------------------

    def _observe_blast_radius(self, scheme: "DedupScheme", pba: int) -> None:
        """Logical blocks at risk if ``pba`` were truly lost."""
        table = scheme.map_table
        refs = len(table.referencing_lbas(pba))
        if scheme.regions.is_home(pba):
            lba = pba  # home layout is identity
            if lba in scheme.written_lbas and not table.is_redirected(lba):
                refs += 1
        self.blast_hist.observe(float(refs))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach_observer(self, recorder: TraceRecorder) -> None:
        self.obs = recorder

    def finalize(self, scheme: "DedupScheme") -> None:
        """End-of-run sweep: blast radius of still-latent errors,
        registry mirroring, and the content-oracle verdict."""
        if self._finalized:
            return
        self._finalized = True
        latent = 0
        for bad in self._lse_by_disk.values():
            for vpba in bad.values():
                self._observe_blast_radius(scheme, vpba)
                latent += 1
        self._count("lse_still_latent", latent)
        if self._registry is not None:
            for name, value in self.counters.items():
                self._registry.inc(f"faults.{name}", value)
        self.oracle.assert_clean(scheme)

    def _count(self, name: str, n: int = 1) -> None:
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Fault-subsystem snapshot for ``ReplayResult.fault_stats``
        and the run report's ``faults`` section."""
        out: Dict[str, Any] = {
            "seed": self.plan.seed,
            "counters": dict(sorted(self.counters.items())),
            "recovery_latency": self.recovery_hist.as_dict(),
            "blast_radius": self.blast_hist.as_dict(),
            "oracle": self.oracle.summary(),
        }
        if self.rebuild is not None:
            out["rebuild"] = {
                "done": self.rebuild.done,
                "progress": self.rebuild.progress,
                "rows_scanned": self.rebuild.rows_scanned,
                "rows_rebuilt": self.rebuild.rows_rebuilt,
                "rows_skipped": self.rebuild.rows_skipped,
            }
        return out
