"""Deterministic fault injection and crash recovery.

* :mod:`repro.faults.plan` -- seeded, JSON-loadable fault schedules
  (:class:`FaultPlan` and its per-class specs).
* :mod:`repro.faults.injector` -- the :class:`FaultInjector` that arms
  a plan against a replay and owns the recovery machinery.
* :mod:`repro.faults.oracle` -- the end-to-end :class:`ContentOracle`
  asserting every completed read returns the right content.

See docs/robustness.md for the fault model and recovery semantics.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.oracle import ContentOracle
from repro.faults.plan import (
    FailSlowSpec,
    FaultPlan,
    IndexCorruptionSpec,
    LatentSectorErrorSpec,
    LseBurstSpec,
    MemberFailureSpec,
    NodeFailureSpec,
    NvramLossSpec,
    RetryPolicy,
)

__all__ = [
    "ContentOracle",
    "FailSlowSpec",
    "FaultInjector",
    "FaultPlan",
    "IndexCorruptionSpec",
    "LatentSectorErrorSpec",
    "LseBurstSpec",
    "MemberFailureSpec",
    "NodeFailureSpec",
    "NvramLossSpec",
    "RetryPolicy",
]
