"""End-to-end content oracle for fault-injection replays.

Deduplication *concentrates* risk: one lost physical block can
invalidate every logical block whose Map-table entry references it.
The oracle is the ground-truth check that no injected fault -- sector
errors, degraded arrays, torn NVRAM, corrupted fingerprints -- ever
turns into silently wrong data: it shadows the replay with the
logical-level truth (LBA -> last-written fingerprint) and asserts
that every completed read resolves, through the live Map table and
content store, to exactly that fingerprint.

Degradation is modelled honestly: when NVRAM-loss recovery cannot
re-derive an LBA's mapping (journal records lost outright), the
scheme quarantines the LBA and the oracle marks it *at risk* -- reads
of it are counted (``at_risk_reads``) rather than failed, because the
system has correctly *detected* that it cannot vouch for the content.
The next write of real data heals both sides.  An at-risk read is a
declared degradation; a mismatching read outside the at-risk set is a
correctness bug and fails the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Set

from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import DedupScheme
    from repro.sim.request import IORequest

#: Cap on recorded mismatch diagnostics (a corruption cascade should
#: produce a readable report, not an unbounded list).
MAX_MISMATCHES = 20


class ContentOracle:
    """Logical-block checksum shadow of one replay."""

    def __init__(self) -> None:
        #: LBA -> fingerprint of the last write the replay issued.
        self.expected: Dict[int, int] = {}
        #: LBAs the system has declared it cannot vouch for
        #: (quarantined by crash recovery; healed by the next write).
        self.at_risk: Set[int] = set()
        # -- counters ---------------------------------------------------
        self.writes_noted = 0
        self.reads_checked = 0
        self.blocks_checked = 0
        self.at_risk_reads = 0
        self.mismatches = 0
        #: First ``MAX_MISMATCHES`` mismatch diagnostics.
        self.mismatch_details: List[str] = []

    # ------------------------------------------------------------------
    # replay hooks
    # ------------------------------------------------------------------

    def note_write(self, request: "IORequest") -> None:
        """Record the truth a completed write establishes."""
        assert request.fingerprints is not None
        self.writes_noted += 1
        for i, lba in enumerate(request.blocks()):
            self.expected[lba] = request.fingerprints[i]
            if self.at_risk:
                self.at_risk.discard(lba)

    def check_read(self, request: "IORequest", scheme: "DedupScheme") -> None:
        """Assert a read resolves to the last-written content."""
        self.reads_checked += 1
        for lba in request.blocks():
            want = self.expected.get(lba)
            if want is None:
                continue  # never-written block: nothing to vouch for
            if lba in self.at_risk:
                self.at_risk_reads += 1
                continue
            self.blocks_checked += 1
            pba = scheme.map_table.translate(lba)
            got = scheme.content.read(pba)
            if got != want:
                self._mismatch(
                    f"read of LBA {lba} -> PBA {pba}: expected fingerprint "
                    f"{want}, found {got}"
                )

    def mark_at_risk(self, lbas: Iterable[int]) -> None:
        """Declare LBAs unverifiable until the next write heals them."""
        self.at_risk.update(lbas)

    # ------------------------------------------------------------------
    # whole-state check
    # ------------------------------------------------------------------

    def verify_all(self, scheme: "DedupScheme") -> List[str]:
        """Check *every* written LBA against the live state.

        Returns diagnostics for non-at-risk mismatches (empty = clean).
        """
        problems: List[str] = []
        for lba in sorted(self.expected):
            if lba in self.at_risk:
                continue
            pba = scheme.map_table.translate(lba)
            got = scheme.content.read(pba)
            if got != self.expected[lba]:
                problems.append(
                    f"final state: LBA {lba} -> PBA {pba}: expected "
                    f"fingerprint {self.expected[lba]}, found {got}"
                )
                if len(problems) >= MAX_MISMATCHES:
                    break
        return problems

    def assert_clean(self, scheme: "DedupScheme") -> None:
        """Raise :class:`~repro.errors.FaultError` on any mismatch,
        inline or in the final whole-state sweep."""
        problems = list(self.mismatch_details)
        problems.extend(self.verify_all(scheme))
        if self.mismatches > len(self.mismatch_details):
            problems.append(
                f"... and {self.mismatches - len(self.mismatch_details)} "
                "more inline mismatches (capped)"
            )
        if problems:
            lines = "\n  ".join(problems)
            raise FaultError(
                f"content oracle found {len(problems)} violation(s):\n  {lines}"
            )

    # ------------------------------------------------------------------

    def _mismatch(self, detail: str) -> None:
        self.mismatches += 1
        if len(self.mismatch_details) < MAX_MISMATCHES:
            self.mismatch_details.append(detail)

    def summary(self) -> Dict[str, Any]:
        """Oracle self-description for run reports."""
        return {
            "writes_noted": self.writes_noted,
            "reads_checked": self.reads_checked,
            "blocks_checked": self.blocks_checked,
            "at_risk_reads": self.at_risk_reads,
            "at_risk_lbas": len(self.at_risk),
            "mismatches": self.mismatches,
        }
