"""End-to-end content oracle for fault-injection replays.

Deduplication *concentrates* risk: one lost physical block can
invalidate every logical block whose Map-table entry references it.
The oracle is the ground-truth check that no injected fault -- sector
errors, degraded arrays, torn NVRAM, corrupted fingerprints -- ever
turns into silently wrong data: it shadows the replay with the
logical-level truth (LBA -> last-written fingerprint) and asserts
that every completed read resolves, through the live Map table and
content store, to exactly that fingerprint.

Degradation is modelled honestly: when NVRAM-loss recovery cannot
re-derive an LBA's mapping (journal records lost outright), the
scheme quarantines the LBA and the oracle marks it *at risk* -- reads
of it are counted (``at_risk_reads``) rather than failed, because the
system has correctly *detected* that it cannot vouch for the content.
The next write of real data heals both sides.  An at-risk read is a
declared degradation; a mismatching read outside the at-risk set is a
correctness bug and fails the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Set, Tuple

from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import DedupScheme
    from repro.sim.request import IORequest

#: Cap on recorded mismatch diagnostics (a corruption cascade should
#: produce a readable report, not an unbounded list).
MAX_MISMATCHES = 20


class ContentOracle:
    """Logical-block checksum shadow of one replay."""

    def __init__(self) -> None:
        #: LBA -> fingerprint of the last write the replay issued.
        self.expected: Dict[int, int] = {}
        #: LBAs the system has declared it cannot vouch for
        #: (quarantined by crash recovery; healed by the next write).
        self.at_risk: Set[int] = set()
        # -- counters ---------------------------------------------------
        self.writes_noted = 0
        self.reads_checked = 0
        self.blocks_checked = 0
        self.at_risk_reads = 0
        self.mismatches = 0
        #: First ``MAX_MISMATCHES`` mismatch diagnostics.
        self.mismatch_details: List[str] = []
        # -- leased-job step ledger -------------------------------------
        #: job name -> committed cursor intervals, in commit order.
        self.job_steps: Dict[str, List[Tuple[int, int]]] = {}
        #: job name -> final cursor the job must reach when done.
        self.job_totals: Dict[str, int] = {}
        #: Jobs that reported completion.
        self.jobs_done: Set[str] = set()

    # ------------------------------------------------------------------
    # replay hooks
    # ------------------------------------------------------------------

    def note_write(self, request: "IORequest") -> None:
        """Record the truth a completed write establishes."""
        assert request.fingerprints is not None
        self.writes_noted += 1
        for i, lba in enumerate(request.blocks()):
            self.expected[lba] = request.fingerprints[i]
            if self.at_risk:
                self.at_risk.discard(lba)

    def check_read(self, request: "IORequest", scheme: "DedupScheme") -> None:
        """Assert a read resolves to the last-written content."""
        self.reads_checked += 1
        for lba in request.blocks():
            want = self.expected.get(lba)
            if want is None:
                continue  # never-written block: nothing to vouch for
            if lba in self.at_risk:
                self.at_risk_reads += 1
                continue
            self.blocks_checked += 1
            pba = scheme.map_table.translate(lba)
            got = scheme.content.read(pba)
            if got != want:
                self._mismatch(
                    f"read of LBA {lba} -> PBA {pba}: expected fingerprint "
                    f"{want}, found {got}"
                )

    def mark_at_risk(self, lbas: Iterable[int]) -> None:
        """Declare LBAs unverifiable until the next write heals them."""
        self.at_risk.update(lbas)

    # ------------------------------------------------------------------
    # leased-job step ledger
    # ------------------------------------------------------------------
    #
    # A leased job advances a monotone cursor in committed steps; the
    # runtime records every *accepted* commit here.  Stale-lease
    # recovery is correct iff the committed intervals chain exactly
    # 0 -> total: a gap means a step was lost, an overlap or a
    # backwards start means a fenced worker's step was double-applied.

    def note_job_total(self, name: str, total: int) -> None:
        """Register a job and the final cursor it must reach."""
        self.job_totals[name] = total
        self.job_steps.setdefault(name, [])

    def note_job_step(self, name: str, start: int, end: int) -> None:
        """Record one committed step covering ``[start, end)``."""
        self.job_steps.setdefault(name, []).append((start, end))

    def note_job_done(self, name: str) -> None:
        """Record that a job reported completion."""
        self.jobs_done.add(name)

    def verify_job_steps(self) -> List[str]:
        """Step-ledger diagnostics (empty = clean).

        Committed intervals must chain contiguously from cursor 0; a
        completed job's chain must end exactly at its registered total.
        """
        problems: List[str] = []
        for name in sorted(self.job_steps):
            cursor = 0
            for start, end in self.job_steps[name]:
                if start != cursor:
                    verb = "double-applied" if start < cursor else "lost"
                    problems.append(
                        f"job {name}: committed step [{start}, {end}) but the "
                        f"ledger cursor is {cursor} (a step was {verb})"
                    )
                if end > cursor:
                    cursor = end
            if name in self.jobs_done:
                total = self.job_totals.get(name)
                if total is not None and cursor != total:
                    problems.append(
                        f"job {name}: completed at cursor {cursor}, "
                        f"expected {total}"
                    )
        return problems

    def assert_job_steps_clean(self) -> None:
        """Raise :class:`~repro.errors.FaultError` on ledger violations."""
        problems = self.verify_job_steps()
        if problems:
            lines = "\n  ".join(problems)
            raise FaultError(
                f"job-step ledger found {len(problems)} violation(s):\n  {lines}"
            )

    def job_steps_summary(self) -> Dict[str, Any]:
        """Ledger self-description for the run report's jobs section."""
        return {
            "jobs_tracked": len(self.job_steps),
            "steps_committed": sum(len(v) for v in self.job_steps.values()),
            "jobs_completed": len(self.jobs_done),
            "violations": self.verify_job_steps(),
        }

    # ------------------------------------------------------------------
    # whole-state check
    # ------------------------------------------------------------------

    def verify_all(self, scheme: "DedupScheme") -> List[str]:
        """Check *every* written LBA against the live state.

        Returns diagnostics for non-at-risk mismatches (empty = clean).
        """
        problems: List[str] = []
        for lba in sorted(self.expected):
            if lba in self.at_risk:
                continue
            pba = scheme.map_table.translate(lba)
            got = scheme.content.read(pba)
            if got != self.expected[lba]:
                problems.append(
                    f"final state: LBA {lba} -> PBA {pba}: expected "
                    f"fingerprint {self.expected[lba]}, found {got}"
                )
                if len(problems) >= MAX_MISMATCHES:
                    break
        return problems

    def assert_clean(self, scheme: "DedupScheme") -> None:
        """Raise :class:`~repro.errors.FaultError` on any mismatch,
        inline or in the final whole-state sweep."""
        problems = list(self.mismatch_details)
        problems.extend(self.verify_all(scheme))
        problems.extend(self.verify_job_steps())
        if self.mismatches > len(self.mismatch_details):
            problems.append(
                f"... and {self.mismatches - len(self.mismatch_details)} "
                "more inline mismatches (capped)"
            )
        if problems:
            lines = "\n  ".join(problems)
            raise FaultError(
                f"content oracle found {len(problems)} violation(s):\n  {lines}"
            )

    # ------------------------------------------------------------------

    def _mismatch(self, detail: str) -> None:
        self.mismatches += 1
        if len(self.mismatch_details) < MAX_MISMATCHES:
            self.mismatch_details.append(detail)

    def summary(self) -> Dict[str, Any]:
        """Oracle self-description for run reports."""
        out: Dict[str, Any] = {
            "writes_noted": self.writes_noted,
            "reads_checked": self.reads_checked,
            "blocks_checked": self.blocks_checked,
            "at_risk_reads": self.at_risk_reads,
            "at_risk_lbas": len(self.at_risk),
            "mismatches": self.mismatches,
        }
        # Step-ledger keys appear only when jobs ran, so jobs-off fault
        # reports keep their golden bytes.
        if self.job_steps:
            out["job_steps"] = self.job_steps_summary()
        return out
