"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the *entire* description of what goes wrong in
a replay: which physical blocks carry latent sector errors, which disks
degrade and when, when a member dies, when power is lost, which index
entries get bit-flipped.  Plans are frozen, hashable dataclasses built
from tuples and scalars so they can ride inside the (memo-cache-keyed)
:class:`~repro.sim.replay.ReplayConfig`, and JSON-loadable so the CLI
can take ``--faults plan.json``.

Every random choice during injection (which home blocks get the
``random_count`` extra sector errors, which fingerprints are
bit-flipped, which bit flips) flows from one ``numpy`` generator
seeded with :attr:`FaultPlan.seed` -- the same plan + seed always
produces the same fault sequence and, because the simulator itself is
deterministic, a bit-identical run report (CI pins this).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import FaultError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with backoff for failed (latent-error) reads."""

    #: Re-reads attempted before falling back to parity reconstruction.
    max_retries: int = 1
    #: Pause between attempts, simulated seconds.
    backoff: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultError("max_retries must be non-negative")
        if self.backoff < 0:
            raise FaultError("backoff must be non-negative")


@dataclass(frozen=True)
class LatentSectorErrorSpec:
    """Latent sector errors: reads of these volume PBAs fail.

    ``pbas`` pins exact blocks; ``random_count`` additionally draws
    that many distinct home-region blocks from the plan's seeded RNG.
    A write to a bad block remaps/heals it silently (as real drives
    do); a failed read is retried per :class:`RetryPolicy` and then
    reconstructed from RAID-5 parity at real degraded-read cost.
    """

    pbas: Tuple[int, ...] = ()
    random_count: int = 0

    def __post_init__(self) -> None:
        if self.random_count < 0:
            raise FaultError("random_count must be non-negative")
        if any(p < 0 for p in self.pbas):
            raise FaultError("latent sector error PBAs must be non-negative")


@dataclass(frozen=True)
class LseBurstSpec:
    """Correlated latent-sector-error bursts on adjacent tracks.

    Field studies (Bairavasundaram et al., SIGMETRICS'07) show latent
    sector errors cluster: a media defect scratches a run of sectors
    and bleeds onto neighbouring tracks.  Each of the ``bursts`` draws
    a seeded anchor track and in-track offset, then marks ``length``
    consecutive blocks on that track and on the next ``adjacency - 1``
    adjacent tracks (a track is ``track_blocks`` consecutive volume
    PBAs -- a deliberately crude cylinder model).  The resulting
    clustered errors are exactly what the background scrubber job is
    paced to discover before foreground reads do.
    """

    bursts: int = 1
    #: Consecutive bad blocks per affected track.
    length: int = 4
    #: Blocks per modelled track.
    track_blocks: int = 64
    #: Total tracks touched per burst (anchor + neighbours).
    adjacency: int = 2

    def __post_init__(self) -> None:
        if self.bursts < 1:
            raise FaultError("bursts must be >= 1")
        if self.length < 1:
            raise FaultError("burst length must be >= 1")
        if self.track_blocks < 1:
            raise FaultError("track_blocks must be >= 1")
        if self.adjacency < 1:
            raise FaultError("adjacency must be >= 1")


@dataclass(frozen=True)
class FailSlowSpec:
    """A fail-slow window: one disk serves I/O ``multiplier`` x slower."""

    disk: int
    start: float
    end: float
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise FaultError("disk index must be non-negative")
        if self.end < self.start:
            raise FaultError("fail-slow window ends before it starts")
        if self.multiplier < 1.0:
            raise FaultError("fail-slow multiplier must be >= 1")


@dataclass(frozen=True)
class MemberFailureSpec:
    """A member disk dies mid-replay; a paced rebuild reconstructs it."""

    disk: int
    time: float
    #: Rebuild pacing: rows *scanned* per batch ...
    rows_per_batch: int = 4
    #: ... every this many simulated seconds.
    interval: float = 0.05
    #: Skip rows holding no live data (dedup-rebuild synergy).
    capacity_aware: bool = False

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise FaultError("disk index must be non-negative")
        if self.time < 0:
            raise FaultError("failure time must be non-negative")
        if self.rows_per_batch < 1:
            raise FaultError("rows_per_batch must be >= 1")
        if self.interval <= 0:
            raise FaultError("rebuild interval must be positive")


@dataclass(frozen=True)
class NodeFailureSpec:
    """A whole-node fault in a cluster replay: one member disk of the
    named *node*'s private array dies and is rebuilt in place.

    This is :class:`MemberFailureSpec` generalised to the cluster
    layer (see :mod:`repro.cluster.replay`): the failed node keeps
    serving its volumes degraded -- RAID-5 reads reconstruct from the
    row's survivors -- while a
    :class:`~repro.storage.rebuild.RebuildController` paces the
    reconstruction as background load on that node's spindles only;
    the other nodes are unaffected (fault isolation is the point of
    the per-node arrays).
    """

    node: int
    time: float
    disk: int = 0
    #: Rebuild pacing: rows *scanned* per batch ...
    rows_per_batch: int = 4
    #: ... every this many simulated seconds.
    interval: float = 0.05
    #: Skip rows holding no live data (dedup-rebuild synergy).
    capacity_aware: bool = False

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError("node index must be non-negative")
        if self.disk < 0:
            raise FaultError("disk index must be non-negative")
        if self.time < 0:
            raise FaultError("failure time must be non-negative")
        if self.rows_per_batch < 1:
            raise FaultError("rows_per_batch must be >= 1")
        if self.interval <= 0:
            raise FaultError("rebuild interval must be positive")


@dataclass(frozen=True)
class NvramLossSpec:
    """A power cut tears the NVRAM Map table and the journal tail.

    The Map table is recovered from the write-ahead
    :class:`~repro.storage.journal.MapJournal`: ``tear_journal_tail``
    records are CRC-corrupted (detected and discarded by torn-tail
    detection -- recoverable, because the matching NVRAM mutations are
    re-derivable), while ``lose_journal_tail`` records vanish entirely
    *before* the torn ones (mutations whose log writes never reached
    the medium).  LBAs whose recovered mapping diverges from the
    pre-crash truth are quarantined: reads are flagged at-risk and
    writes bypass deduplication until real data heals the map.
    """

    time: float
    #: NVRAM Map-table entries left in an undefined state by the tear
    #: (reported; recovery re-derives the table from the journal).
    torn_entries: int = 8
    #: Journal records lost outright (divergence source).
    lose_journal_tail: int = 0
    #: Journal records CRC-torn (detected, discarded, recoverable).
    tear_journal_tail: int = 2
    #: Recovery time model: fixed cost plus per-replayed-record cost.
    base_recovery_cost: float = 5e-3
    replay_cost_per_record: float = 2e-6
    #: ``"global"`` stalls all admission behind recovery (legacy
    #: stop-the-world); ``"volume"`` replays each tenant namespace's
    #: journal records independently, so volume *v* admits again at
    #: ``base + per_record * records(v)`` while unaffected tenants
    #: resume after just the base pause.
    scope: str = "global"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultError("power-loss time must be non-negative")
        for name in ("torn_entries", "lose_journal_tail", "tear_journal_tail"):
            if getattr(self, name) < 0:
                raise FaultError(f"{name} must be non-negative")
        if self.base_recovery_cost < 0 or self.replay_cost_per_record < 0:
            raise FaultError("recovery costs must be non-negative")
        if self.scope not in ("global", "volume"):
            raise FaultError(
                f"nvram-loss scope must be 'global' or 'volume', got {self.scope!r}"
            )


@dataclass(frozen=True)
class IndexCorruptionSpec:
    """Bit-flip fingerprints of live Index-table entries at ``time``.

    The corrupted entry keeps its PBA but advertises a wrong
    fingerprint, so (a) the true fingerprint now misses -- POD's
    miss-as-unique degradation -- and (b) a lookup that *hits* the
    corrupt fingerprint is caught by the commit-time content check
    (``stale_dedupe_avoided``), never corrupting data.
    """

    time: float
    entries: int = 1
    #: Which bit to flip; ``None`` draws one per entry from the RNG.
    bit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultError("corruption time must be non-negative")
        if self.entries < 1:
            raise FaultError("must corrupt at least one entry")
        if self.bit is not None and not (0 <= self.bit < 63):
            raise FaultError("bit index must be in [0, 63)")


@dataclass(frozen=True)
class FaultPlan:
    """The full, seeded fault schedule for one replay."""

    seed: int = 0
    latent_sector_errors: LatentSectorErrorSpec = LatentSectorErrorSpec()
    lse_bursts: Optional[LseBurstSpec] = None
    lse_retry: RetryPolicy = RetryPolicy()
    fail_slow: Tuple[FailSlowSpec, ...] = ()
    member_failure: Optional[MemberFailureSpec] = None
    nvram_loss: Tuple[NvramLossSpec, ...] = ()
    index_corruption: Tuple[IndexCorruptionSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultError("fault seed must be non-negative")

    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the plan schedules no fault at all."""
        return (
            not self.latent_sector_errors.pbas
            and self.latent_sector_errors.random_count == 0
            and self.lse_bursts is None
            and not self.fail_slow
            and self.member_failure is None
            and not self.nvram_loss
            and not self.index_corruption
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same schedule under a different RNG seed."""
        return dataclasses.replace(self, seed=seed)

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a JSON-shaped mapping (see
        ``examples/faults.json``)."""
        known = {
            "seed", "latent_sector_errors", "lse_bursts", "lse_retry",
            "fail_slow", "member_failure", "nvram_loss", "index_corruption",
        }
        unknown = set(data) - known
        if unknown:
            raise FaultError(f"unknown fault plan key(s): {sorted(unknown)}")

        def build(cls: type, obj: Mapping[str, Any]) -> Any:
            try:
                return cls(**obj)
            except TypeError as exc:
                raise FaultError(f"bad {cls.__name__} spec: {exc}") from None

        lse = data.get("latent_sector_errors", {})
        if "pbas" in lse:
            lse = dict(lse, pbas=tuple(lse["pbas"]))
        mf = data.get("member_failure")
        bursts = data.get("lse_bursts")
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            latent_sector_errors=build(LatentSectorErrorSpec, lse),
            lse_bursts=build(LseBurstSpec, bursts) if bursts is not None else None,
            lse_retry=build(RetryPolicy, data.get("lse_retry", {})),
            fail_slow=tuple(
                build(FailSlowSpec, f) for f in data.get("fail_slow", ())
            ),
            member_failure=build(MemberFailureSpec, mf) if mf is not None else None,
            nvram_loss=tuple(
                build(NvramLossSpec, n) for n in data.get("nvram_loss", ())
            ),
            index_corruption=tuple(
                build(IndexCorruptionSpec, c) for c in data.get("index_corruption", ())
            ),
        )

    @staticmethod
    def load(path: str) -> "FaultPlan":
        """Load a plan from a JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultError(f"cannot load fault plan {path!r}: {exc}") from None
        if not isinstance(data, dict):
            raise FaultError(f"fault plan {path!r} must be a JSON object")
        return FaultPlan.from_dict(data)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips through
        :meth:`from_dict`)."""
        out: Dict[str, Any] = {
            "seed": self.seed,
            "latent_sector_errors": {
                "pbas": list(self.latent_sector_errors.pbas),
                "random_count": self.latent_sector_errors.random_count,
            },
            "lse_retry": dataclasses.asdict(self.lse_retry),
            "fail_slow": [dataclasses.asdict(f) for f in self.fail_slow],
            "nvram_loss": [dataclasses.asdict(n) for n in self.nvram_loss],
            "index_corruption": [
                dataclasses.asdict(c) for c in self.index_corruption
            ],
        }
        if self.lse_bursts is not None:
            out["lse_bursts"] = dataclasses.asdict(self.lse_bursts)
        if self.member_failure is not None:
            out["member_failure"] = dataclasses.asdict(self.member_failure)
        return out
