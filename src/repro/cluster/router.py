"""Consistent-hash fingerprint routing for the sharded dedup domain.

The cluster shards the *fingerprint space* -- not the address space --
across nodes: every fingerprint has exactly one home shard whose node
owns the authoritative "who wrote this content first" record.  POD's
Select-Dedupe keeps each request's blocks co-located on the request
owner's node (the sequentiality rule of Figure 5 is a per-node
property), so the router is consulted only for *dedup lookups*; data
placement never crosses nodes.

The ring is a classic consistent hash with virtual nodes:

* each member contributes ``vnodes`` tokens, derived purely from the
  ``(member id, replica)`` pair through a splitmix64 finaliser --
  **never** Python's process-salted ``hash()``;
* a fingerprint routes to the owner of the first token clockwise from
  its own 64-bit mix;
* removing a member deletes only that member's tokens, so every
  surviving fingerprint keeps its owner (the *exact* removal
  property); adding one member steals only the arcs in front of its
  new tokens, remapping ~K/N of K fingerprints in expectation.

Everything here is integer arithmetic on frozen inputs: routing is
bit-for-bit reproducible across seeds, processes and platforms.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Set, Tuple

from repro.errors import ClusterError

#: 64-bit wrap mask.
MASK64 = (1 << 64) - 1

#: Default virtual nodes per member -- enough that the largest arc is
#: within a few percent of fair share at small cluster sizes.
DEFAULT_VNODES = 64


def mix64(x: int) -> int:
    """The splitmix64 finaliser: a strong, stateless 64-bit mixer.

    Used both to place virtual-node tokens and to hash fingerprints
    onto the ring.  Deterministic by construction (pure integer ops).
    """
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return (x ^ (x >> 31)) & MASK64


class FingerprintRouter:
    """Consistent-hash ring mapping fingerprints to shard-owner nodes.

    Parameters
    ----------
    members:
        Initial member (node) ids.  Must be non-empty and unique.
    vnodes:
        Virtual nodes per member.
    """

    def __init__(self, members: Sequence[int], vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ClusterError(f"need at least one virtual node, got {vnodes}")
        self.vnodes = vnodes
        self._members: List[int] = []
        self._tokens: List[int] = []
        self._owners: List[int] = []
        for member in members:
            self.add_member(member)
        if not self._members:
            raise ClusterError("a fingerprint router needs at least one member")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def members(self) -> Tuple[int, ...]:
        """Current ring members, in insertion-independent sorted order."""
        return tuple(sorted(self._members))

    def _member_tokens(self, member: int) -> List[int]:
        """The member's virtual-node tokens (stable for all ring states)."""
        return [
            mix64((((member + 1) & MASK64) << 32) ^ replica)
            for replica in range(self.vnodes)
        ]

    def add_member(self, member: int) -> None:
        """Add a node's virtual tokens to the ring."""
        if member < 0:
            raise ClusterError(f"negative member id {member}")
        if member in self._members:
            raise ClusterError(f"member {member} already on the ring")
        self._members.append(member)
        self._rebuild()

    def remove_member(self, member: int) -> None:
        """Remove a node; survivors keep every arc they already owned."""
        if member not in self._members:
            raise ClusterError(f"member {member} not on the ring")
        if len(self._members) == 1:
            raise ClusterError("cannot remove the last ring member")
        self._members.remove(member)
        self._rebuild()

    def _rebuild(self) -> None:
        ring: List[Tuple[int, int]] = []
        for member in self._members:
            for token in self._member_tokens(member):
                ring.append((token, member))
        ring.sort()
        self._tokens = [token for token, _ in ring]
        self._owners = [owner for _, owner in ring]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(self, fingerprint: int) -> int:
        """The node owning ``fingerprint``'s shard."""
        h = mix64(fingerprint & MASK64)
        i = bisect_right(self._tokens, h) % len(self._tokens)
        return self._owners[i]

    def route_many(self, fingerprints: Sequence[int]) -> List[int]:
        """Vector form of :meth:`route` (preserves order)."""
        return [self.route(fp) for fp in fingerprints]

    def route_replicas(self, fingerprint: int, count: int) -> List[int]:
        """The first ``count`` *distinct* owners clockwise from the
        fingerprint's ring position (the replica preference order).

        ``route_replicas(fp, 1) == [route(fp)]`` by construction.  When
        the ring has fewer than ``count`` members, every member is
        returned (in preference order).  The walk inherits the ring's
        membership properties: removing a member not in the returned
        list cannot change it (its tokens were never reached before the
        ``count``-th distinct owner), and removing a member that *is*
        in it shifts only the suffix from that member on -- the
        bounded-disruption property the replica placement layer
        (:mod:`repro.cluster.directory.replica`) builds on.
        """
        if count < 1:
            raise ClusterError(f"need at least one replica, got {count}")
        h = mix64(fingerprint & MASK64)
        n = len(self._tokens)
        i = bisect_right(self._tokens, h) % n
        out: List[int] = []
        seen: Set[int] = set()
        for k in range(n):
            owner = self._owners[(i + k) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) >= count:
                    break
        return out

    # ------------------------------------------------------------------

    def ring_size(self) -> int:
        """Number of virtual-node tokens on the ring."""
        return len(self._tokens)

    def __contains__(self, member: int) -> bool:
        return member in self._members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FingerprintRouter(members={self.members}, vnodes={self.vnodes})"
        )
