"""Replicated fingerprint directory: the cluster-wide dedup domain.

PR 5's cluster sharded the fingerprint space one-copy-per-owner and
merely *counted* cross-node duplicates.  This package turns that into
a genuine global dedup domain, following the casstor blueprint
(Cassandra-backed dedup directory) with an online reclamation story it
lacks:

* :mod:`~repro.cluster.directory.replica` -- R-way replica placement
  on the splitmix64 vnode ring (preference lists, bounded disruption);
* :mod:`~repro.cluster.directory.quorum` -- ONE/QUORUM/ALL consistency
  over the PR 5 network fabric, metadata-node kills, read repair, and
  remote-reference bookkeeping;
* :mod:`~repro.cluster.directory.gc` -- online refcount GC as a
  lease-fenced job, journaled through
  :class:`~repro.storage.journal.MapJournal`, with a stop-the-world
  baseline for the disruption benchmark.

Everything is gated on ``ClusterConfig.directory``: ``None`` keeps the
legacy single-copy path bit-identical per seed.
"""

from repro.cluster.directory.gc import (
    MODE_ONLINE,
    MODE_STW,
    GcJob,
    GcSpec,
    RefcountGc,
)
from repro.cluster.directory.quorum import (
    Consistency,
    DirectoryConfig,
    DirectoryEntry,
    KillSpec,
    LookupResult,
    ReplicatedDirectory,
    required,
)
from repro.cluster.directory.replica import ReplicaPlacer, replicas

__all__ = [
    "MODE_ONLINE",
    "MODE_STW",
    "Consistency",
    "DirectoryConfig",
    "DirectoryEntry",
    "GcJob",
    "GcSpec",
    "KillSpec",
    "LookupResult",
    "RefcountGc",
    "ReplicaPlacer",
    "ReplicatedDirectory",
    "replicas",
    "required",
]
