"""Online refcount garbage collection for the replicated directory.

casstor reclaims dedup space in a stop-the-world "cleanup time"
window: foreground I/O drains, the directory is swept, and writes
resume afterwards.  This module replaces that with an *online* GC
built from the pieces earlier PRs proved out:

* overwrites queue **decrement intents** on the directory (the truth
  counter ``live_counts`` drops immediately; the replicated ``refs``
  decrement is deferred);
* a :class:`GcJob` -- a leased job in the PR 9 runtime -- consumes the
  intent queue in bounded batches under plan/commit separation: the
  step *plans* a batch from the committed cursor and charges its wire
  cost, the fenced *commit* applies the decrements, so a stale worker
  (lease lost mid fail-slow window) can never double-decrement;
* every applied decrement and every reclaim is journaled write-ahead
  through a :class:`~repro.storage.journal.MapJournal`
  (fingerprint -> refs records), so the replicated refcounts are
  recoverable from checkpoint + log replay;
* an entry is **reclaimed** only when its refs have drained to zero
  *and* the independent truth counter agrees no live block still
  holds the content -- a disagreement is counted (``live_skips``) and
  the entry survives, which is the "no live block is ever collected"
  guarantee the acceptance criteria pin.

The stop-the-world baseline (:meth:`RefcountGc.drain_all`) processes
the whole intent queue in one synchronous sweep; the replay driver
charges it as a foreground admission stall, which is exactly the
casstor disruption `benchmarks/bench_gc_disruption.py` measures
against the online job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ClusterError, ConfigError
from repro.jobs.jobs import LeasedJob, SendFn, Step
from repro.storage.journal import MapJournal

if TYPE_CHECKING:  # imported by quorum.py; break the cycle at runtime
    from repro.cluster.directory.quorum import ReplicatedDirectory

#: GC execution modes.
MODE_ONLINE = "online"
MODE_STW = "stw"


@dataclass(frozen=True)
class GcSpec:
    """Refcount-GC knobs (frozen; rides inside DirectoryConfig).

    Attributes
    ----------
    start:
        Simulated time the first GC round may run.
    interval:
        Online mode: seconds between GC job steps.
    batch:
        Online mode: decrement intents consumed per step.
    rounds:
        Online mode: fixed number of job steps (the leased-job ledger
        needs a known total).  ``None`` lets the replay size the job
        to the trace horizon.
    entry_cost:
        Seconds of directory processing per intent -- background pacing
        online, a foreground stall in stop-the-world mode.
    mode:
        ``"online"`` (leased job) or ``"stw"`` (casstor-style
        stop-the-world sweep at ``start``).
    """

    start: float = 0.0
    interval: float = 0.05
    batch: int = 64
    rounds: Optional[int] = None
    entry_cost: float = 2e-05
    mode: str = MODE_ONLINE

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"gc start must be >= 0, got {self.start}")
        if self.interval <= 0:
            raise ConfigError(f"gc interval must be positive, got {self.interval}")
        if self.batch < 1:
            raise ConfigError(f"gc batch must be >= 1, got {self.batch}")
        if self.rounds is not None and self.rounds < 1:
            raise ConfigError(f"gc rounds must be >= 1, got {self.rounds}")
        if self.entry_cost < 0:
            raise ConfigError(f"negative gc entry_cost {self.entry_cost}")
        if self.mode not in (MODE_ONLINE, MODE_STW):
            raise ConfigError(
                f"gc mode must be {MODE_ONLINE!r} or {MODE_STW!r}, got {self.mode!r}"
            )


class RefcountGc:
    """Fenced consumer of the directory's decrement-intent queue.

    Mirrors the :class:`~repro.cluster.rebalance.ShardMigrator`
    plan/commit idiom: :meth:`plan_decrements` is a pure read from the
    committed ``cursor``, :meth:`commit_decrements` refuses any batch
    whose start does not match it, so a superseded worker's late
    commit is rejected rather than double-applied.
    """

    def __init__(self, directory: "ReplicatedDirectory") -> None:
        self.directory = directory
        #: Committed cursor into ``directory.decrement_intents``.
        self.cursor = 0
        self.journal = MapJournal()
        # -- counters ---------------------------------------------------
        self.decrements_applied = 0
        self.reclaimed_blocks = 0
        self.live_skips = 0
        self.orphan_decrements = 0
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # plan (pure) / commit (fenced)
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Intents enqueued but not yet committed."""
        return len(self.directory.decrement_intents) - self.cursor

    def plan_decrements(self, start: int, batch: int) -> Tuple[List[int], int]:
        """The next ``batch`` intents from ``start``; mutates nothing."""
        if start != self.cursor:
            raise ClusterError(
                f"gc plan from {start} but committed cursor is {self.cursor}"
            )
        if batch < 1:
            raise ClusterError(f"gc batch must be >= 1, got {batch}")
        intents = self.directory.decrement_intents
        end = min(start + batch, len(intents))
        return list(intents[start:end]), end

    def plan_links(self, fingerprints: List[int]) -> Dict[Tuple[int, int], int]:
        """Per-link wire batches for a planned batch: the primary
        (live) replica coordinates each decrement and pushes one entry
        to every other live replica."""
        links: Dict[Tuple[int, int], int] = {}
        for fp in fingerprints:
            live = self.directory.live_replicas(fp)
            if len(live) < 2:
                continue
            src = live[0]
            for dst in live[1:]:
                key = (src, dst)
                links[key] = links.get(key, 0) + 1
        return links

    def commit_decrements(self, start: int, end: int) -> None:
        """Apply the batch ``[start, end)``.  Epoch-fenced twice: the
        job store rejects stale workers, and this cursor check rejects
        any replayed or out-of-order commit outright."""
        if start != self.cursor:
            raise ClusterError(
                f"gc commit [{start}, {end}) but committed cursor is {self.cursor}"
            )
        if end < start or end > len(self.directory.decrement_intents):
            raise ClusterError(f"gc commit range [{start}, {end}) out of bounds")
        for i in range(start, end):
            self._apply_decrement(self.directory.decrement_intents[i])
        self.cursor = end
        self.rounds_run += 1

    def _apply_decrement(self, fingerprint: int) -> None:
        directory = self.directory
        live = directory.live_replicas(fingerprint)
        holders = [m for m in live if fingerprint in directory.tables[m]]
        if not holders:
            # Entry never reached a surviving replica (registered while
            # unavailable, or already reclaimed): nothing to decrement.
            self.orphan_decrements += 1
            return
        for m in holders:
            directory.tables[m][fingerprint].refs -= 1
        self.decrements_applied += 1
        remaining = max(directory.tables[m][fingerprint].refs for m in holders)
        self.journal.append_set(fingerprint, max(remaining, 0))
        if remaining > 0:
            return
        if directory.live_counts.get(fingerprint, 0) > 0:
            # Replicated refs drained but the truth counter says a live
            # block still holds this content (divergence the contacted
            # window never repaired): refuse to reclaim.
            self.live_skips += 1
            return
        for m in holders:
            del directory.tables[m][fingerprint]
        self.journal.append_clear(fingerprint)
        self.reclaimed_blocks += 1

    # ------------------------------------------------------------------
    # stop-the-world baseline
    # ------------------------------------------------------------------

    def drain_all(self) -> int:
        """casstor's cleanup time: synchronously consume every pending
        intent.  Returns the number of intents processed (the driver
        charges ``entry_cost`` per intent as a foreground stall)."""
        start = self.cursor
        end = len(self.directory.decrement_intents)
        if end > start:
            self.commit_decrements(start, end)
        return end - start

    # ------------------------------------------------------------------
    # recovery + summaries
    # ------------------------------------------------------------------

    def refcount_view(self) -> Dict[int, int]:
        """The converged fingerprint -> refs map (max over live
        replicas) -- the state journal replay must reproduce."""
        out: Dict[int, int] = {}
        for m in sorted(self.directory.tables):
            if m in self.directory.down:
                continue
            table = self.directory.tables[m]
            for fp in sorted(table):
                refs = table[fp].refs
                if fp not in out or refs > out[fp]:
                    out[fp] = refs
        return out

    def checkpoint(self) -> None:
        """Fold the current refcount view into the journal checkpoint."""
        self.journal.checkpoint(self.refcount_view())

    def summary(self) -> Dict[str, object]:
        return {
            "decrements_applied": self.decrements_applied,
            "gc_reclaimed_blocks": self.reclaimed_blocks,
            "gc_live_skips": self.live_skips,
            "gc_orphan_decrements": self.orphan_decrements,
            "gc_pending_intents": self.pending,
            "gc_rounds": self.rounds_run,
            "journal_records": self.journal.records_appended,
            "journal_checkpoints": self.journal.checkpoints_taken,
        }


class GcJob(LeasedJob):
    """Online refcount GC as a leased job (PR 9 runtime).

    The ledger needs a fixed total, but the intent queue grows while
    the replay runs -- so the job's cursor is the *round* index over a
    fixed number of rounds, each consuming up to ``batch`` intents
    from the GC's own fenced cursor.  Rounds that find the queue empty
    complete instantly; intents arriving after the last round are
    reported as ``gc_pending_intents``.
    """

    kind = "gc"

    def __init__(
        self,
        gc: RefcountGc,
        batch: int,
        rounds: int,
        entry_cost: float,
        send: SendFn,
    ) -> None:
        if batch < 1:
            raise ClusterError(f"gc batch must be >= 1, got {batch}")
        if rounds < 1:
            raise ClusterError(f"gc rounds must be >= 1, got {rounds}")
        self.gc = gc
        self.batch = batch
        self.rounds_total = rounds
        self.entry_cost = entry_cost
        self._send = send
        #: Committed cursor: rounds fully applied.
        self.rounds_done = 0

    def done(self) -> bool:
        return self.rounds_done >= self.rounds_total

    def progress(self) -> float:
        return self.rounds_done / self.rounds_total

    def total(self) -> int:
        return self.rounds_total

    def run_step(self, now: float) -> Step:
        round_start = self.rounds_done
        start = self.gc.cursor
        fingerprints, end = self.gc.plan_decrements(start, self.batch)
        links = self.gc.plan_links(fingerprints)
        wire = self._send(links) if links else now
        completion = max(wire, now + self.entry_cost * len(fingerprints))

        def commit() -> None:
            if end > start:
                self.gc.commit_decrements(start, end)
            self.rounds_done = round_start + 1

        return Step(completion, (round_start, round_start + 1), commit)

    def summary(self) -> Dict[str, object]:
        out = dict(self.gc.summary())
        out["rounds_total"] = self.rounds_total
        out["rounds_done"] = self.rounds_done
        return out
