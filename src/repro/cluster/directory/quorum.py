"""Consistency levels, read-repair and the replicated directory state.

The replicated fingerprint directory stores one
:class:`DirectoryEntry` per fingerprint on the R-way replica set named
by :mod:`repro.cluster.directory.replica`.  Lookups and registrations
contact the first ``required(level, R)`` *live* replicas in preference
order -- casstor's tunable consistency over the Cassandra directory:

===========  ==========================  =================================
level        replicas contacted          survives (metadata) node kills
===========  ==========================  =================================
``one``      1                           R-1, but lookups may miss entries
``quorum``   floor(R/2)+1                floor((R-1)/2) with no lost entry
``all``      R                           0 without degrading
===========  ==========================  =================================

A killed metadata node (:class:`KillSpec`) stops answering directory
RPCs; its *data plane* keeps serving I/O.  Lookups route around it:
when fewer than ``required`` replicas are live the lookup degrades to
the survivors (``degraded_lookups``), and when none are live the
fingerprint is treated as unique -- POD's miss-as-unique semantics,
counted as ``unavailable_lookups``.

Because writes only reach the contacted subset, replicas diverge: a
kill shifts the contact window onto a replica that never saw the
registration.  A lookup that observes divergence among the replicas it
contacted pushes the winning entry (lowest registration sequence --
the true first writer) to the stale ones and counts a *read repair*;
the driver charges the push's per-link wire cost and emits a
``directory.repair`` span.

Remote-reference bookkeeping rides the same machinery: every logical
block that holds a fingerprint's content registers a reference on the
contacted replicas (``refs``), every overwrite queues a decrement
intent, and the online GC (:mod:`repro.cluster.directory.gc`) applies
the decrements in journaled, lease-fenced batches.  ``live_counts`` is
the independently maintained ground truth (blocks currently holding
each content) that proves no live entry is ever collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.directory.gc import GcSpec
from repro.cluster.directory.replica import ReplicaPlacer
from repro.cluster.router import FingerprintRouter
from repro.errors import ClusterError


class Consistency(str, Enum):
    """Read/write consistency level of the replicated directory."""

    ONE = "one"
    QUORUM = "quorum"
    ALL = "all"


def required(level: Consistency, replication: int) -> int:
    """Replicas that must acknowledge a lookup or registration."""
    if replication < 1:
        raise ClusterError(f"replication factor must be >= 1, got {replication}")
    if level is Consistency.ONE:
        return 1
    if level is Consistency.QUORUM:
        return replication // 2 + 1
    return replication


@dataclass(frozen=True)
class KillSpec:
    """Kill one node's *metadata* (directory) role at a simulated time.

    The node's data plane -- its array, scheme and volumes -- keeps
    serving; only its directory replica stops answering.  Failure
    detection is modelled as instantaneous cluster-wide knowledge
    (gossip abstracted away), so peers skip the dead replica rather
    than paying a timeout.
    """

    node: int
    time: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ClusterError(f"negative kill node id {self.node}")
        if self.time < 0:
            raise ClusterError(f"kill time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class DirectoryConfig:
    """Replicated-directory options (frozen; rides in ClusterConfig).

    ``None`` anywhere a :class:`DirectoryConfig` is accepted means the
    legacy single-copy sharded directory -- the replay then takes
    exactly the pre-directory code path and stays bit-identical per
    seed (golden-tested).
    """

    replication: int = 1
    consistency: Consistency = Consistency.QUORUM
    gc: Optional[GcSpec] = None
    kill: Optional[KillSpec] = None

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ClusterError(
                f"replication factor must be >= 1, got {self.replication}"
            )
        if not isinstance(self.consistency, Consistency):
            raise ClusterError(
                f"unknown consistency level {self.consistency!r}"
            )


class DirectoryEntry:
    """One replica's copy of a fingerprint's directory record."""

    __slots__ = ("writer", "seq", "refs")

    def __init__(self, writer: int, seq: int, refs: int) -> None:
        #: First-writer node id (the node owning the physical block).
        self.writer = writer
        #: Global registration sequence; the lowest seq wins a
        #: divergence (it is the true first registration).
        self.seq = seq
        #: References: logical blocks cluster-wide holding this content,
        #: as seen by this replica (views converge via read repair).
        self.refs = refs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectoryEntry(writer={self.writer}, seq={self.seq}, refs={self.refs})"


class LookupResult:
    """Outcome of one fingerprint lookup+register round."""

    __slots__ = (
        "contacted",
        "repairs",
        "writer",
        "remote_dup",
        "registered",
        "degraded",
        "unavailable",
    )

    def __init__(self) -> None:
        #: Replicas contacted, in preference order (wire cost basis).
        self.contacted: List[int] = []
        #: Replicas that received a read-repair push (entry_bytes each).
        self.repairs: List[int] = []
        #: Winning first-writer node, or None on a directory miss.
        self.writer: Optional[int] = None
        #: True when the winner is a different node than the origin.
        self.remote_dup = False
        #: True when this lookup registered a fresh entry.
        self.registered = False
        #: Fewer live replicas than the consistency level wanted.
        self.degraded = False
        #: No live replica at all; treated as unique, nothing recorded.
        self.unavailable = False


class ReplicatedDirectory:
    """R-way replicated fingerprint directory with read repair.

    ``tables[m]`` is member ``m``'s replica table (fingerprint ->
    :class:`DirectoryEntry`).  All mutation goes through
    :meth:`lookup_register`, :meth:`note_overwrite` and the GC's
    decrement commits, each deterministic in arrival order.
    """

    def __init__(
        self,
        router: FingerprintRouter,
        nnodes: int,
        config: DirectoryConfig,
    ) -> None:
        if config.replication > nnodes:
            raise ClusterError(
                f"replication factor {config.replication} exceeds the "
                f"{nnodes}-node cluster"
            )
        self.config = config
        self.placer = ReplicaPlacer(router, config.replication)
        self.tables: Dict[int, Dict[int, DirectoryEntry]] = {
            n: {} for n in range(nnodes)
        }
        #: Members whose directory replica is dead (KillSpec fired).
        self.down: Set[int] = set()
        #: Ground truth: content fingerprint -> logical blocks holding
        #: it right now, maintained by plain counting independent of
        #: the replicated refs (the "no live block collected" witness).
        self.live_counts: Dict[int, int] = {}
        #: Queued refcount-decrement intents, in overwrite order.
        self.decrement_intents: List[int] = []
        self._seq = 0
        # -- counters ---------------------------------------------------
        self.lookups = 0
        self.registrations = 0
        self.read_repairs = 0
        self.repair_pushes = 0
        self.degraded_lookups = 0
        self.unavailable_lookups = 0
        self.remote_refs_registered = 0
        self.kills = 0
        #: Per-member service counters (replica-side view).
        self.lookups_served: Dict[int, int] = {n: 0 for n in range(nnodes)}
        self.repairs_received: Dict[int, int] = {n: 0 for n in range(nnodes)}

    # ------------------------------------------------------------------
    # membership / failure
    # ------------------------------------------------------------------

    def kill(self, member: int) -> None:
        """Stop ``member``'s directory replica answering (data plane
        unaffected).  Idempotent."""
        if member not in self.tables:
            raise ClusterError(f"kill names unknown member {member}")
        if member not in self.down:
            self.down.add(member)
            self.kills += 1

    def live_replicas(self, fingerprint: int) -> List[int]:
        """Preference-ordered replica set minus dead members."""
        return [m for m in self.placer.replicas(fingerprint) if m not in self.down]

    # ------------------------------------------------------------------
    # the lookup + register + read-repair round
    # ------------------------------------------------------------------

    def lookup_register(
        self, fingerprint: int, origin: int, new_holder: bool
    ) -> LookupResult:
        """One write block's directory round.

        Consults the first ``required`` live replicas in preference
        order; registers a fresh first-writer entry on a miss; repairs
        divergent contacted replicas on a hit; and (when ``new_holder``)
        counts one more logical block holding this content.  Returns
        everything the driver needs to charge wire costs.
        """
        self.lookups += 1
        res = LookupResult()
        if new_holder:
            self.live_counts[fingerprint] = (
                self.live_counts.get(fingerprint, 0) + 1
            )
        live = self.live_replicas(fingerprint)
        need = required(self.config.consistency, self.config.replication)
        if not live:
            # Every replica dead: miss-as-unique, nothing recorded.
            self.unavailable_lookups += 1
            res.unavailable = True
            return res
        if len(live) < need:
            self.degraded_lookups += 1
            res.degraded = True
            need = len(live)
        contacted = live[:need]
        res.contacted = contacted
        for m in contacted:
            self.lookups_served[m] += 1
        entries: List[Tuple[int, Optional[DirectoryEntry]]] = [
            (m, self.tables[m].get(fingerprint)) for m in contacted
        ]
        present: List[Tuple[int, DirectoryEntry]] = [
            (m, e) for m, e in entries if e is not None
        ]
        if present:
            winner = min(present, key=lambda me: me[1].seq)[1]
            res.writer = winner.writer
            if winner.writer != origin:
                res.remote_dup = True
            # Read repair: contacted replicas whose copy is missing or
            # lost the seq race re-converge to the winner.
            stale = [m for m, e in entries if e is None or e.seq != winner.seq]
            if stale:
                self.read_repairs += 1
                self.repair_pushes += len(stale)
                res.repairs = stale
                for m in stale:
                    self.repairs_received[m] += 1
                    self.tables[m][fingerprint] = DirectoryEntry(
                        winner.writer, winner.seq, winner.refs
                    )
            if new_holder:
                if res.remote_dup:
                    self.remote_refs_registered += 1
                for m in contacted:
                    entry = self.tables[m].get(fingerprint)
                    if entry is not None:
                        entry.refs += 1
        else:
            # Directory miss: register origin as first writer on the
            # contacted replicas (the uncontacted ones stay stale until
            # a read repair finds them).
            self._seq += 1
            self.registrations += 1
            res.registered = True
            for m in contacted:
                self.tables[m][fingerprint] = DirectoryEntry(
                    origin, self._seq, 1
                )
        return res

    # ------------------------------------------------------------------
    # refcount decrements (consumed by the GC)
    # ------------------------------------------------------------------

    def note_overwrite(self, old_fingerprint: int) -> None:
        """A logical block stopped holding ``old_fingerprint``: truth
        count drops now, the replicated decrement is deferred to GC."""
        count = self.live_counts.get(old_fingerprint, 0)
        if count > 1:
            self.live_counts[old_fingerprint] = count - 1
        elif count == 1:
            del self.live_counts[old_fingerprint]
        self.decrement_intents.append(old_fingerprint)

    @property
    def pending_decrements(self) -> int:
        """Intents enqueued and not yet consumed by a GC commit
        (the GC owns the consumption cursor)."""
        return len(self.decrement_intents)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def entries_by_member(self) -> Dict[str, int]:
        return {
            str(member): len(self.tables[member])
            for member in sorted(self.tables)
        }

    def member_summary(self, member: int) -> Dict[str, object]:
        """Per-node directory section for the run report."""
        table = self.tables[member]
        return {
            "entries": len(table),
            "refs": sum(table[fp].refs for fp in sorted(table)),
            "lookups_served": self.lookups_served[member],
            "repairs_received": self.repairs_received[member],
            "down": member in self.down,
        }

    def summary(self) -> Dict[str, object]:
        """Cluster-level directory section for the run report."""
        return {
            "replication": self.config.replication,
            "consistency": self.config.consistency.value,
            "lookups": self.lookups,
            "registrations": self.registrations,
            "read_repairs": self.read_repairs,
            "repair_pushes": self.repair_pushes,
            "degraded_lookups": self.degraded_lookups,
            "unavailable_lookups": self.unavailable_lookups,
            "remote_refs_registered": self.remote_refs_registered,
            "entries": self.entries_by_member(),
            "live_fingerprints": len(self.live_counts),
            "down_members": sorted(self.down),
            "kills": self.kills,
        }
