"""R-way replica placement on the splitmix64 vnode ring.

The replicated fingerprint directory stores every entry on the first
``R`` *distinct* ring members clockwise from the fingerprint's hash --
the classic consistent-hash preference list (Dynamo/Cassandra style,
the casstor layout).  Placement is a pure function of the ring state:

* ``replicas(router, fp, 1)[0] == router.route(fp)`` -- the primary is
  exactly the sharded single-copy owner, which is what lets the R=1
  directory path reproduce the legacy cluster bit-for-bit;
* membership changes disrupt placement boundedly: removing a member
  that is *not* in a fingerprint's replica set leaves that set
  untouched (the exact-removal property, lifted from one owner to R),
  and removing a member that *is* replaces it while every survivor
  keeps its preference position;
* the walk is pure integer arithmetic over frozen tokens -- identical
  across processes, platforms and seeds.

``tests/properties/test_prop_replicas.py`` pins these properties with
hypothesis.
"""

from __future__ import annotations

from typing import List

from repro.cluster.router import FingerprintRouter
from repro.errors import ClusterError


def replicas(router: FingerprintRouter, fingerprint: int, r: int) -> List[int]:
    """The ``r`` distinct members holding ``fingerprint``'s directory
    entry, in preference (ring-walk) order.

    With fewer than ``r`` ring members every member is returned; the
    caller sees the effective replication factor as ``len(result)``.
    """
    if r < 1:
        raise ClusterError(f"replication factor must be >= 1, got {r}")
    return router.route_replicas(fingerprint, r)


class ReplicaPlacer:
    """A router bound to a fixed replication factor.

    Thin convenience wrapper so the directory layer asks one object
    "where does this fingerprint live" without re-threading ``r``
    through every call site.
    """

    def __init__(self, router: FingerprintRouter, replication: int) -> None:
        if replication < 1:
            raise ClusterError(
                f"replication factor must be >= 1, got {replication}"
            )
        self.router = router
        self.replication = replication

    def replicas(self, fingerprint: int) -> List[int]:
        """Preference-ordered replica set for ``fingerprint``."""
        return self.router.route_replicas(fingerprint, self.replication)

    def primary(self, fingerprint: int) -> int:
        """The first preference -- identical to ``router.route``."""
        return self.router.route(fingerprint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaPlacer(replication={self.replication}, "
            f"members={self.router.members})"
        )
