"""The cluster replay driver: N POD nodes, one event loop.

This is :func:`repro.sim.replay.replay_traces` lifted one level up:
instead of one scheme on one array, the driver runs N complete POD
nodes (private RAID array, Index table, Map table, iCache budget)
against a single shared clock, with a cluster overlay on the write
path:

* every write's blocks stay on the request-owner node (Select-Dedupe's
  sequentiality rule is a per-node property -- remote *data* placement
  would shred exactly the sequential runs Figure 5 protects);
* every write's fingerprints are looked up in the sharded cluster
  directory: a consistent-hash :class:`~repro.cluster.router.FingerprintRouter`
  names each fingerprint's shard-owner node, remote lookups pay the
  :class:`~repro.cluster.netmodel.NetworkModel` (latency + bandwidth +
  per-link queueing) and their cost lands on the request's response
  time; duplicates first written by *another* node are detected and
  counted (``remote_duplicate_blocks``) but deliberately not
  deduplicated across nodes -- each node remains a standard POD
  instance, so the PodSanitizer and the content oracle hold per node;
* membership changes (node add/remove) re-route fingerprint arcs
  immediately and migrate the displaced directory entries as paced
  background RPC load (:class:`~repro.cluster.rebalance.ShardMigrator`);
  lookups that race the migration miss -- POD's miss-as-unique
  semantics, counted as ``rebalance_misses``;
* a :class:`~repro.faults.plan.NodeFailureSpec` degrades one node's
  array mid-replay and rebuilds it in place, generalising the fault
  layer's member failure to the cluster.

The one-node, feature-free case takes *exactly* the single-node code
path decision-for-decision and is pinned bit-identical to
:func:`~repro.sim.replay.replay_traces` by a golden test.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.sanitizer import PodSanitizer
from repro.baselines.base import DedupScheme, PlannedIO
from repro.cluster.directory.gc import MODE_ONLINE, GcJob, RefcountGc
from repro.cluster.directory.quorum import DirectoryConfig, ReplicatedDirectory
from repro.cluster.netmodel import NetworkFabric, NetworkModel
from repro.cluster.node import ClusterNode
from repro.cluster.rebalance import RebalanceSpec, ShardMigrator
from repro.cluster.router import FingerprintRouter
from repro.errors import ClusterError, ConfigError
from repro.faults.oracle import ContentOracle
from repro.faults.plan import FailSlowSpec, NodeFailureSpec
from repro.jobs.admission import AdmissionController
from repro.jobs.jobs import MigrationJob, RebuildJob, ScrubJob
from repro.jobs.runtime import JobRuntime
from repro.metrics.collector import MetricsCollector
from repro.obs.events import EventType, TraceLevel
from repro.obs.slo import evaluate_slo
from repro.obs.spans import SpanTracer
from repro.obs.timeline import TimelineSampler
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.replay import ReplayConfig, ReplayResult, size_disks
from repro.sim.request import IORequest, OpType
from repro.storage.disk import Disk
from repro.storage.namespace import NamespaceMapper
from repro.storage.raid import RaidArray
from repro.storage.rebuild import RebuildController
from repro.storage.ssd import Ssd
from repro.storage.volume import VolumeOp
from repro.traces.format import Trace


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-layer options (frozen and hashable, like ReplayConfig).

    Attributes
    ----------
    vnodes:
        Virtual nodes per ring member (router fairness knob).
    net:
        The inter-node network cost model.
    rebalance:
        An optional scheduled membership change with paced shard
        migration.
    node_failure:
        An optional whole-node fault (one member disk of that node's
        array fails and is rebuilt in place).
    fail_slow:
        Fail-slow windows on individual cluster disks, addressed by
        *global* disk id (``node * ndisks + member``).  A window
        overlapping a leased rebuild is the stale-lease recovery
        scenario: the stalled worker's lease expires mid-step and the
        job is re-claimed at the next epoch.
    verify_content:
        Run one end-to-end :class:`~repro.faults.oracle.ContentOracle`
        per node (observation only; raises on any wrong read).
    directory:
        The replicated fingerprint directory
        (:class:`~repro.cluster.directory.quorum.DirectoryConfig`):
        R-way replica placement, tunable consistency, read repair,
        metadata-node kills and online refcount GC.  ``None`` keeps
        the legacy single-copy sharded directory bit-identical.
    """

    vnodes: int = 64
    net: NetworkModel = NetworkModel()
    rebalance: Optional[RebalanceSpec] = None
    node_failure: Optional[NodeFailureSpec] = None
    fail_slow: Tuple[FailSlowSpec, ...] = ()
    verify_content: bool = False
    directory: Optional[DirectoryConfig] = None

    def __post_init__(self) -> None:
        if self.vnodes <= 0:
            raise ClusterError(f"vnodes must be positive, got {self.vnodes}")


def _merge_cluster_streams(
    traces: Sequence[Trace], bases: Sequence[int]
) -> Tuple[List[IORequest], List[bool]]:
    """Merge-sort N streams exactly like the single-node replay, but
    rebase each volume into its *owner node's* local address space.

    Stability, req-id assignment and measured-flag semantics are
    identical to :func:`repro.sim.replay._merge_streams`; only the
    base address per volume differs (node-local rather than global).
    For one node the bases coincide and the merge is bit-identical.
    """

    def stream(vid: int, trace: Trace) -> Iterator[Tuple[float, int, IORequest, bool]]:
        base = bases[vid]
        warmup = trace.warmup_count
        for i, rec in enumerate(trace.records):
            req = IORequest(
                time=rec.time,
                op=rec.op,
                lba=base + rec.lba,
                nblocks=rec.nblocks,
                fingerprints=rec.fingerprints,
                req_id=-1,
                volume_id=vid,
            )
            yield rec.time, vid, req, i >= warmup

    merged = heapq.merge(
        *(stream(vid, t) for vid, t in enumerate(traces)),
        key=lambda item: item[0],
    )
    requests: List[IORequest] = []
    measured: List[bool] = []
    for req_id, (_t, _vid, req, is_measured) in enumerate(merged):
        req.req_id = req_id
        requests.append(req)
        measured.append(is_measured)
    return requests, measured


def _aggregate_stats(stats_list: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum numeric scheme stats across nodes (non-numerics from node 0)."""
    out: Dict[str, Any] = dict(stats_list[0])
    for stats in stats_list[1:]:
        for key, value in stats.items():
            if isinstance(value, bool):
                continue
            prev = out.get(key)
            if isinstance(value, (int, float)) and isinstance(prev, (int, float)):
                out[key] = prev + value
    return out


def replay_cluster(
    traces: Sequence[Trace],
    schemes: Sequence[DedupScheme],
    cluster: ClusterConfig = ClusterConfig(),
    config: ReplayConfig = ReplayConfig(),
    *,
    assignment: Optional[Sequence[int]] = None,
    collector: Optional[MetricsCollector] = None,
    recorder: Optional[TraceRecorder] = None,
    per_volume_metrics: bool = True,
) -> ReplayResult:
    """Replay N trace streams across a sharded multi-node dedup domain.

    ``schemes[n]`` becomes node *n*'s POD instance; each node gets a
    private array built from ``config`` (same geometry and disk-sizing
    rule as the single-node replay).  ``assignment[vid]`` names the
    node serving volume ``vid`` (default: ``vid % len(schemes)``).

    With one node and no cluster features, the run is bit-identical to
    ``replay_traces(traces, schemes[0], config)``.
    """
    if not traces:
        raise ConfigError("replay_cluster needs at least one trace")
    if not schemes:
        raise ConfigError("replay_cluster needs at least one scheme (node)")
    if config.scheduler is not None:
        raise ConfigError(
            "cluster replays run on the analytic FCFS path only "
            "(ReplayConfig.scheduler must be None)"
        )
    if config.faults is not None or config.fault_seed is not None:
        raise ConfigError(
            "cluster replays take node faults via ClusterConfig.node_failure, "
            "not ReplayConfig.faults"
        )
    if config.failed_disk is not None:
        raise ConfigError(
            "cluster replays take degraded arrays via ClusterConfig.node_failure, "
            "not ReplayConfig.failed_disk"
        )

    nnodes = len(schemes)
    if assignment is None:
        assignment = [vid % nnodes for vid in range(len(traces))]
    if len(assignment) != len(traces):
        raise ClusterError(
            f"assignment names {len(assignment)} volumes for {len(traces)} traces"
        )
    for vid, node_id in enumerate(assignment):
        if not (0 <= node_id < nnodes):
            raise ClusterError(f"volume {vid} assigned to unknown node {node_id}")
    served: Set[int] = set(assignment)
    if served != set(range(nnodes)):
        missing = sorted(set(range(nnodes)) - served)
        raise ClusterError(f"node(s) {missing} serve no volume")

    rebalance = cluster.rebalance
    node_failure = cluster.node_failure
    if node_failure is not None:
        if node_failure.node >= nnodes:
            raise ClusterError(
                f"node-failure spec names unknown node {node_failure.node}"
            )
        if node_failure.disk >= config.ndisks:
            raise ClusterError(
                f"node-failure spec names unknown member disk {node_failure.disk}"
            )
    if rebalance is not None:
        if rebalance.remove_node is not None and (
            rebalance.remove_node >= nnodes + rebalance.add_nodes
        ):
            raise ClusterError(
                f"rebalance removes unknown member {rebalance.remove_node}"
            )
    directory_cfg = cluster.directory
    if directory_cfg is not None:
        if rebalance is not None:
            raise ConfigError(
                "the replicated directory and shard rebalancing cannot be "
                "combined yet (replica sets would race the migration)"
            )
        if directory_cfg.replication > nnodes:
            raise ClusterError(
                f"replication factor {directory_cfg.replication} exceeds the "
                f"{nnodes}-node cluster"
            )
        if directory_cfg.kill is not None and directory_cfg.kill.node >= nnodes:
            raise ClusterError(
                f"kill-metadata-node names unknown node {directory_cfg.kill.node}"
            )
        if (
            directory_cfg.gc is not None
            and directory_cfg.gc.mode == MODE_ONLINE
            and config.jobs is None
        ):
            raise ConfigError(
                "online refcount GC runs as a leased job and needs "
                "ReplayConfig.jobs (pass --jobs, or --gc implies it on the CLI)"
            )

    # -- feature gates (each one must leave the plain N=1 path alone) --
    multi = len(traces) > 1
    multi_node = nnodes > 1
    net_active = multi_node or (rebalance is not None and rebalance.add_nodes > 0)
    dir_active = directory_cfg is not None
    cluster_active = (
        net_active or node_failure is not None or rebalance is not None or dir_active
    )

    # ------------------------------------------------------------------
    # build the nodes
    # ------------------------------------------------------------------
    geometry = config.geometry()
    node_traces: List[List[Trace]] = [[] for _ in range(nnodes)]
    node_vids: List[List[int]] = [[] for _ in range(nnodes)]
    for vid, trace in enumerate(traces):
        node_traces[assignment[vid]].append(trace)
        node_vids[assignment[vid]].append(vid)

    nodes: List[ClusterNode] = []
    bases: List[int] = [0] * len(traces)
    for n in range(nnodes):
        scheme = schemes[n]
        mapper = NamespaceMapper(
            (t.name, t.logical_blocks) for t in node_traces[n]
        )
        if mapper.total_logical_blocks > scheme.regions.logical_blocks:
            raise ConfigError(
                f"node {n}: volumes touch {mapper.total_logical_blocks} logical "
                f"blocks but the scheme was configured for "
                f"{scheme.regions.logical_blocks}"
            )
        params = size_disks(scheme.regions.total_blocks, config)
        disks = [
            Disk(params, disk_id=n * geometry.ndisks + j)
            for j in range(geometry.ndisks)
        ]
        node = ClusterNode(n, scheme, disks, RaidArray(geometry), mapper)
        node.volume_ids = list(node_vids[n])
        for local_vid, vid in enumerate(node_vids[n]):
            bases[vid] = mapper.volume(local_vid).base
        nodes.append(node)

    node_of: List[ClusterNode] = [nodes[assignment[vid]] for vid in range(len(traces))]

    for fs in cluster.fail_slow:
        fs_node, fs_member = divmod(fs.disk, geometry.ndisks)
        if not (0 <= fs_node < nnodes):
            raise ClusterError(
                f"fail-slow spec names unknown cluster disk {fs.disk} "
                f"(have {nnodes * geometry.ndisks})"
            )
        nodes[fs_node].disks[fs_member].add_slow_window(
            fs.start, fs.end, fs.multiplier
        )

    sim = Simulator([], None)
    metrics = collector if collector is not None else MetricsCollector()
    if per_volume_metrics:
        metrics.track_volumes()
    if multi_node or cluster_active:
        metrics.track_nodes()
    ssds: List[Optional[Ssd]] = [
        Ssd(config.ssd_params) if config.ssd_params is not None else None
        for _ in range(nnodes)
    ]

    obs = recorder if recorder is not None else NULL_RECORDER
    if recorder is not None:
        for node in nodes:
            node.scheme.attach_observer(recorder)
        sim.attach_observer(recorder)

    # -- telemetry (observation only; absent unless armed) -------------
    timeline_config = config.effective_timeline()
    sampler: Optional[TimelineSampler] = None
    if timeline_config is not None:
        sampler = TimelineSampler(timeline_config, policy=config.slo)
        metrics.attach_timeline(sampler)
        for fs in cluster.fail_slow:
            sampler.annotate_interval("fail_slow", fs.start, fs.end)
    tracer: Optional[SpanTracer] = SpanTracer() if config.spans else None
    if tracer is not None:
        for node in nodes:
            node.scheme.spans = tracer

    sanitizer: Optional[PodSanitizer] = None
    if config.check_invariants:
        if config.sanitize_every <= 0:
            raise ConfigError("sanitize_every must be positive")
        sanitizer = PodSanitizer(registry=metrics.registry)
        for node in nodes:
            sanitizer.attach(node.scheme)

    oracles: Optional[List[ContentOracle]] = (
        [ContentOracle() for _ in range(nnodes)] if cluster.verify_content else None
    )

    # -- cluster overlay state -----------------------------------------
    router = FingerprintRouter(range(nnodes), vnodes=cluster.vnodes)
    fabric = NetworkFabric(cluster.net)
    #: Shard-owner member id -> (fingerprint -> first-writer node id).
    shards: Dict[int, Dict[int, int]] = {n: {} for n in range(nnodes)}
    migration: Dict[str, Optional[ShardMigrator]] = {"migrator": None}

    # -- replicated directory (None = legacy single-copy shards) -------
    directory: Optional[ReplicatedDirectory] = None
    refcount_gc: Optional[RefcountGc] = None
    #: Per-node logical shadow (node-local lba -> fingerprint held) so
    #: overwrites queue refcount-decrement intents for the old content.
    block_content: Optional[List[Dict[int, int]]] = None
    if directory_cfg is not None:
        directory = ReplicatedDirectory(router, nnodes, directory_cfg)
        block_content = [{} for _ in range(nnodes)]
        if directory_cfg.gc is not None:
            refcount_gc = RefcountGc(directory)

    requests, measured_flags = _merge_cluster_streams(traces, bases)
    for request in requests:
        sim.schedule_arrival(request.time, request)

    # Leased background jobs (see repro.jobs): the cluster's
    # maintenance work -- node-failure rebuild, shard migration, one
    # scrubber per node -- runs under epoch-fenced worker leases when
    # armed; None keeps the legacy self-paced tick path bit-identical.
    jobs_runtime: Optional[JobRuntime] = None
    admission: Optional[AdmissionController] = None
    if config.jobs is not None:
        jobs_runtime = JobRuntime(
            config.jobs,
            sim,
            horizon=requests[-1].time if requests else 0.0,
            registry=metrics.registry,
        )
        jobs_runtime.timeline = sampler
        jobs_runtime.spans = tracer
        admission = jobs_runtime.admission
        scrub_spec = config.jobs.scrub
        if scrub_spec is not None:
            for node in nodes:

                def scrub_read(
                    pba: int, nblocks: int, node: ClusterNode = node
                ) -> float:
                    # Through the RAID layer so degraded rows
                    # reconstruct like any foreground read.
                    return node.service_volume_ops(
                        obs, sim.now, [VolumeOp(OpType.READ, pba, nblocks)]
                    )

                jobs_runtime.submit(
                    f"scrub.n{node.node_id}",
                    ScrubJob(
                        node.scheme.regions.total_blocks,
                        scrub_spec.region_blocks,
                        scrub_read,
                        regions_cap=(
                            scrub_spec.regions
                            if scrub_spec.regions is not None
                            else 0
                        ),
                    ),
                    scrub_spec.interval,
                    not_before=scrub_spec.start,
                )
        gc_spec = directory_cfg.gc if directory_cfg is not None else None
        if (
            refcount_gc is not None
            and gc_spec is not None
            and gc_spec.mode == MODE_ONLINE
        ):
            # Online refcount GC as a leased job: the ledger needs a
            # fixed total, so the job runs a fixed number of rounds
            # sized to the trace horizon, each draining up to ``batch``
            # decrement intents from the fenced cursor.
            gc_horizon = requests[-1].time if requests else 0.0
            gc_rounds = (
                gc_spec.rounds
                if gc_spec.rounds is not None
                else max(
                    1,
                    int(max(0.0, gc_horizon - gc_spec.start) / gc_spec.interval)
                    + 1,
                )
            )

            def gc_send(links: Dict[Tuple[int, int], int]) -> float:
                # Decrement pushes from each entry's coordinating
                # replica to the others; sunk cost on a fenced step,
                # exactly like migration sends.
                done = sim.now
                for src, dst in sorted(links):
                    moved = links[(src, dst)]
                    t = fabric.round_trip(
                        sim.now, src, dst, moved * cluster.net.entry_bytes
                    )
                    if sampler is not None:
                        sampler.note_rpc(
                            sim.now,
                            src,
                            dst,
                            moved * cluster.net.entry_bytes,
                            fabric.last_service,
                        )
                    if obs.level >= TraceLevel.CHUNK:
                        obs.emit(
                            TraceLevel.CHUNK,
                            sim.now,
                            EventType.NET_RPC,
                            src=src,
                            dst=dst,
                            bytes=moved * cluster.net.entry_bytes,
                            queued=fabric.last_queue_wait,
                            done=t,
                        )
                    if t > done:
                        done = t
                return done

            jobs_runtime.submit(
                "gc",
                GcJob(
                    refcount_gc,
                    gc_spec.batch,
                    gc_rounds,
                    gc_spec.entry_cost,
                    gc_send,
                ),
                gc_spec.interval,
                not_before=gc_spec.start,
            )
        jobs_runtime.start()

    run_name = traces[0].name if not multi else "+".join(t.name for t in traces)
    total_warmup = sum(t.warmup_count for t in traces)
    #: Per-node first-writer maps for the cross-volume vs intra-volume
    #: split (content only collapses within a node, so classification
    #: is a per-node question; one dict at N=1, exactly the classic
    #: multi-volume path).
    fp_owner: Optional[List[Dict[int, int]]] = (
        [{} for _ in range(nnodes)] if multi else None
    )
    if obs.level >= TraceLevel.SUMMARY:
        extra_run: Dict[str, Any] = {"volumes": len(traces)} if multi else {}
        if multi_node:
            extra_run["nodes"] = nnodes
        obs.emit(
            TraceLevel.SUMMARY,
            requests[0].time if requests else 0.0,
            EventType.RUN_START,
            trace=run_name,
            scheme=schemes[0].name,
            requests=len(requests),
            warmup=total_warmup,
            **extra_run,
        )

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------

    def remote_lookup_cost(
        node: ClusterNode, request: IORequest, now: float, root: int = -1
    ) -> Tuple[float, int, int]:
        """Consult the sharded directory for one write's fingerprints.

        Returns ``(net_delay, remote_lookups, remote_duplicate_blocks)``
        and registers first writers.  One batched RPC per distinct
        remote shard owner; the request waits for the slowest of them
        (lookups fan out in parallel).
        """
        assert request.fingerprints is not None
        migrator = migration["migrator"]
        pending = migrator.pending if migrator is not None else None
        per_dst: Dict[int, int] = {}
        remote_dups = 0
        for fp in request.fingerprints:
            shard = router.route(fp)
            if shard != node.node_id:
                per_dst[shard] = per_dst.get(shard, 0) + 1
            table = shards.setdefault(shard, {})
            writer = table.get(fp)
            if writer is None:
                if pending is not None and fp in pending:
                    # Entry still in flight to this (new) owner:
                    # miss-as-unique, charged to the rebalance.
                    node.rebalance_misses += 1
                table[fp] = node.node_id
                if migrator is not None:
                    migrator.note_registered(fp)
            elif writer != node.node_id:
                remote_dups += 1
        delay = 0.0
        remote_lookups = 0
        for dst in sorted(per_dst):
            count = per_dst[dst]
            remote_lookups += count
            done = fabric.round_trip(
                now, node.node_id, dst, count * cluster.net.lookup_bytes
            )
            if sampler is not None:
                sampler.note_rpc(
                    now,
                    node.node_id,
                    dst,
                    count * cluster.net.lookup_bytes,
                    fabric.last_service,
                )
            if tracer is not None and root > 0:
                tracer.emit(
                    now,
                    done,
                    "rpc.lookup",
                    parent=root,
                    req_id=request.req_id,
                    node=node.node_id,
                    dst=dst,
                    lookups=count,
                )
            if obs.level >= TraceLevel.CHUNK:
                obs.emit(
                    TraceLevel.CHUNK,
                    now,
                    EventType.NET_RPC,
                    src=node.node_id,
                    dst=dst,
                    bytes=count * cluster.net.lookup_bytes,
                    queued=fabric.last_queue_wait,
                    done=done,
                )
            if done - now > delay:
                delay = done - now
        return delay, remote_lookups, remote_dups

    def directory_lookup_cost(
        node: ClusterNode, request: IORequest, now: float, root: int = -1
    ) -> Tuple[float, int, int]:
        """Consult the *replicated* directory for one write's blocks.

        Same contract as :func:`remote_lookup_cost` (``(net_delay,
        remote_lookups, remote_duplicate_blocks)``), but each
        fingerprint contacts its first ``required`` live replicas,
        overwrites queue refcount-decrement intents, and divergent
        replicas get read-repair pushes (charged per link, span-traced
        as ``directory.repair``).  At R=1 the contacted set is exactly
        the legacy shard owner, so counts and wire arithmetic reduce
        to the legacy path block for block.
        """
        assert request.fingerprints is not None
        assert directory is not None and block_content is not None
        shadow = block_content[node.node_id]
        per_dst: Dict[int, int] = {}
        repair_links: Dict[Tuple[int, int], int] = {}
        remote_dups = 0
        for i, fp in enumerate(request.fingerprints):
            lba = request.lba + i
            old = shadow.get(lba)
            new_holder = old != fp
            if old is not None and old != fp:
                directory.note_overwrite(old)
            shadow[lba] = fp
            res = directory.lookup_register(fp, node.node_id, new_holder)
            for m in res.contacted:
                if m != node.node_id:
                    per_dst[m] = per_dst.get(m, 0) + 1
            for dst in res.repairs:
                # The origin coordinates the repair push (Cassandra
                # style): one directory entry per stale replica.
                key = (node.node_id, dst)
                repair_links[key] = repair_links.get(key, 0) + 1
            if res.remote_dup:
                remote_dups += 1
        delay = 0.0
        remote_lookups = 0
        for dst in sorted(per_dst):
            count = per_dst[dst]
            remote_lookups += count
            done = fabric.round_trip(
                now, node.node_id, dst, count * cluster.net.lookup_bytes
            )
            if sampler is not None:
                sampler.note_rpc(
                    now,
                    node.node_id,
                    dst,
                    count * cluster.net.lookup_bytes,
                    fabric.last_service,
                )
            if tracer is not None and root > 0:
                tracer.emit(
                    now,
                    done,
                    "rpc.lookup",
                    parent=root,
                    req_id=request.req_id,
                    node=node.node_id,
                    dst=dst,
                    lookups=count,
                )
            if obs.level >= TraceLevel.CHUNK:
                obs.emit(
                    TraceLevel.CHUNK,
                    now,
                    EventType.NET_RPC,
                    src=node.node_id,
                    dst=dst,
                    bytes=count * cluster.net.lookup_bytes,
                    queued=fabric.last_queue_wait,
                    done=done,
                )
            if done - now > delay:
                delay = done - now
        for src, dst in sorted(repair_links):
            count = repair_links[(src, dst)]
            done = fabric.round_trip(
                now, src, dst, count * cluster.net.entry_bytes
            )
            if sampler is not None:
                sampler.note_rpc(
                    now, src, dst, count * cluster.net.entry_bytes,
                    fabric.last_service,
                )
            if tracer is not None and root > 0:
                tracer.emit(
                    now,
                    done,
                    "directory.repair",
                    parent=root,
                    req_id=request.req_id,
                    node=src,
                    dst=dst,
                    entries=count,
                )
            if obs.level >= TraceLevel.CHUNK:
                obs.emit(
                    TraceLevel.CHUNK,
                    now,
                    EventType.NET_RPC,
                    src=src,
                    dst=dst,
                    bytes=count * cluster.net.entry_bytes,
                    queued=fabric.last_queue_wait,
                    done=done,
                )
            if done - now > delay:
                delay = done - now
        return delay, remote_lookups, remote_dups

    def finish(
        request: IORequest,
        planned: PlannedIO,
        arrival: float,
        cross: int,
        net_info: Tuple[float, int, int],
        root: int = -1,
    ) -> None:
        node = node_of[request.volume_id]
        issue_time = sim.now

        ssd = ssds[node.node_id]
        ssd_done = issue_time
        if planned.ssd_read_blocks or planned.ssd_write_blocks:
            if ssd is None:
                raise ConfigError(
                    f"scheme {node.scheme.name} emitted SSD traffic but the "
                    "replay has no ssd_params configured"
                )
            if planned.ssd_read_blocks:
                ssd_done = ssd.service(issue_time, planned.ssd_read_blocks)
            if planned.ssd_write_blocks:
                ssd.service(issue_time, planned.ssd_write_blocks)  # background

        completion = node.service_volume_ops(obs, issue_time, planned.volume_ops)
        completion = max(completion, ssd_done)
        measured = config.collect_warmup or measured_flags[request.req_id]
        completed_at = max(completion, issue_time)
        if tracer is not None and root > 0:
            if planned.volume_ops:
                tracer.emit(
                    issue_time,
                    completed_at,
                    "disk",
                    parent=root,
                    req_id=request.req_id,
                    node=node.node_id,
                    blocks=sum(op.nblocks for op in planned.volume_ops),
                )
            tracer.end(completed_at, root, response=completed_at - arrival)
        if measured:
            metrics.record(
                request,
                arrival,
                completed_at,
                eliminated=planned.eliminated,
                cache_hit_blocks=planned.cache_hit_blocks,
                deduped_blocks=planned.deduped_blocks,
                cross_volume_blocks=cross,
            )
            if metrics.tracks_nodes:
                metrics.record_node(
                    request,
                    node.node_id,
                    arrival,
                    completed_at,
                    eliminated=planned.eliminated,
                    cache_hit_blocks=planned.cache_hit_blocks,
                    deduped_blocks=planned.deduped_blocks,
                    net_delay=net_info[0],
                    remote_lookups=net_info[1],
                    remote_duplicate_blocks=net_info[2],
                )
        if obs.level >= TraceLevel.REQUEST:
            extra: Dict[str, Any] = {"volume": request.volume_id} if multi else {}
            obs.emit(
                TraceLevel.REQUEST,
                completed_at,
                EventType.REQUEST_COMPLETE,
                req_id=request.req_id,
                op=request.op.value,
                nblocks=request.nblocks,
                response=completed_at - arrival,
                eliminated=planned.eliminated,
                deduped_blocks=planned.deduped_blocks,
                cache_hit_blocks=planned.cache_hit_blocks,
                measured=measured,
                **extra,
            )
        if planned.background_ops:
            node.service_volume_ops(obs, issue_time, planned.background_ops)

    # Fig. 11 counts removed write requests over the measured day only,
    # so snapshot the (cluster-wide) scheme counters at the warm-up
    # boundary -- the first arrival past its volume's warm-up prefix.
    boundary = {"writes": 0, "removed": 0, "taken": total_warmup == 0}
    arrivals = {"count": 0}
    #: Stop-the-world GC window: arrivals stall until ``until`` while
    #: the sweep runs (the casstor "cleanup time" the online GC beats).
    stw_state: Dict[str, float] = {"until": 0.0, "stalled": 0.0, "processed": 0.0}

    def handle_request(request: IORequest, arrival: float) -> None:
        now = sim.now
        node = node_of[request.volume_id]
        if not boundary["taken"] and measured_flags[request.req_id]:
            boundary["writes"] = sum(s.writes_total for s in schemes)
            boundary["removed"] = sum(s.write_requests_removed for s in schemes)
            boundary["taken"] = True
        root = -1
        if tracer is not None:
            # Root span: arrival to completion (ended in finish()).
            root = tracer.start(
                arrival, "request", req_id=request.req_id, node=node.node_id
            )
            node.scheme.span_parent = root
        if sampler is not None:
            sampler.note_gauges(
                now,
                node_id=node.node_id,
                nvram_bytes=float(node.scheme.nvram.bytes_used),
                queue_lag=node.queue_lag(now),
            )
        if obs.level >= TraceLevel.REQUEST:
            extra: Dict[str, Any] = {"volume": request.volume_id} if multi else {}
            obs.emit(
                TraceLevel.REQUEST,
                now,
                EventType.REQUEST_ARRIVE,
                req_id=request.req_id,
                op=request.op.value,
                lba=request.lba,
                nblocks=request.nblocks,
                **extra,
            )
        node.requests_served += 1
        planned = node.scheme.process(request, now)
        if oracles is not None:
            if request.is_write:
                oracles[node.node_id].note_write(request)
            else:
                oracles[node.node_id].check_read(request, node.scheme)
        net_info: Tuple[float, int, int] = (0.0, 0, 0)
        if request.is_write and request.fingerprints is not None and (
            dir_active or net_active
        ):
            if dir_active:
                net_info = directory_lookup_cost(node, request, now, root)
            else:
                net_info = remote_lookup_cost(node, request, now, root)
            node.remote_lookups += net_info[1]
            node.remote_duplicate_blocks += net_info[2]
            node.net_delay_total += net_info[0]
        cross = 0
        if fp_owner is not None and request.fingerprints is not None:
            owners = fp_owner[node.node_id]
            vid = request.volume_id
            for i in planned.deduped_idx:
                owner = owners.get(request.fingerprints[i])
                if owner is not None and owner != vid:
                    cross += 1
            for fp in request.fingerprints:
                owners.setdefault(fp, vid)
        if sanitizer is not None:
            arrivals["count"] += 1
            if arrivals["count"] % config.sanitize_every == 0:
                sanitizer.assert_clean(node.scheme, now)
        total_delay = planned.delay + net_info[0]
        if total_delay > 0:
            if tracer is not None and root > 0 and planned.delay > 0:
                # Fingerprint classification: the planning delay between
                # arrival handling and op issue (net wait is the rpc span).
                tracer.emit(
                    now,
                    now + planned.delay,
                    "classify",
                    parent=root,
                    req_id=request.req_id,
                    node=node.node_id,
                )
            sim.schedule_callback(
                now + total_delay,
                finish,
                request,
                planned,
                arrival,
                cross,
                net_info,
                root,
            )
        else:
            finish(request, planned, arrival, cross, net_info, root)

    def on_arrival(now: float, request: IORequest) -> None:
        if stw_state["until"] > now:
            # Foreground drained for the stop-the-world sweep; the
            # stall is charged to response time (arrival kept).
            stw_state["stalled"] += 1
            sim.schedule_callback(stw_state["until"], handle_request, request, now)
            return
        if admission is not None:
            # Per-tenant token bucket; the stall is charged to the
            # request's response time (arrival timestamp is kept).
            admitted = admission.admit(request.volume_id, now, request.nblocks)
            if admitted > now:
                sim.schedule_callback(admitted, handle_request, request, now)
                return
        handle_request(request, now)

    # ------------------------------------------------------------------
    # per-node iCache epochs
    # ------------------------------------------------------------------
    if requests:
        last_arrival = requests[-1].time
        for node in nodes:
            interval = node.scheme.epoch_interval
            if interval is None:
                continue
            if interval <= 0:
                raise ConfigError("epoch interval must be positive")

            def epoch_tick(
                node: ClusterNode = node, interval: float = interval
            ) -> None:
                ops = node.scheme.on_epoch(sim.now)
                if sanitizer is not None:
                    sanitizer.assert_clean(node.scheme, sim.now)
                if sampler is not None:
                    sampler.note_gauges(
                        sim.now,
                        node_id=node.node_id,
                        icache_index_bytes=float(
                            node.scheme.cache.index.capacity_bytes
                        ),
                        icache_read_bytes=float(
                            node.scheme.cache.read.capacity_bytes
                        ),
                    )
                if ops:
                    node.service_volume_ops(obs, sim.now, ops)
                next_time = sim.now + interval
                if next_time <= last_arrival + interval:
                    sim.schedule_callback(next_time, epoch_tick)

            sim.schedule_callback(requests[0].time + interval, epoch_tick)

    # ------------------------------------------------------------------
    # node failure: degrade one node's array, rebuild it in place
    # ------------------------------------------------------------------
    rebuild_state: Dict[str, Any] = {"controller": None, "failed_at": None}
    if node_failure is not None:
        spec = node_failure

        def complete_node_failure() -> None:
            node = nodes[spec.node]
            ctrl = rebuild_state["controller"]
            assert ctrl is not None
            node.failed_disk = None
            failed_at = rebuild_state["failed_at"]
            assert failed_at is not None
            if tracer is not None:
                tracer.emit(
                    failed_at,
                    sim.now,
                    "recovery.rebuild",
                    node=spec.node,
                    disk=spec.disk,
                    rows_rebuilt=ctrl.rows_rebuilt,
                )
            if obs.level >= TraceLevel.SUMMARY:
                obs.emit(
                    TraceLevel.SUMMARY,
                    sim.now,
                    EventType.FAULT_RECOVER,
                    kind="node_failure",
                    latency=sim.now - failed_at,
                    detail=(
                        f"node {spec.node} disk {spec.disk} rebuilt: "
                        f"{ctrl.rows_rebuilt} rows rebuilt, "
                        f"{ctrl.rows_skipped} skipped"
                    ),
                )

        def begin_node_failure() -> None:
            node = nodes[spec.node]
            node.failed_disk = spec.disk
            rebuild_state["failed_at"] = sim.now
            su = geometry.stripe_unit_blocks
            disk_rows = max(1, node.disks[spec.disk].params.total_blocks // su)
            live = (
                node.scheme.map_table.live_pbas(node.scheme.written_lbas)
                if spec.capacity_aware
                else None
            )
            ctrl = RebuildController(node.raid, spec.disk, disk_rows, live)
            rebuild_state["controller"] = ctrl
            if sampler is not None:
                sampler.note_activity(sim.now, "node_failure", 1.0)
            if obs.level >= TraceLevel.SUMMARY:
                obs.emit(
                    TraceLevel.SUMMARY,
                    sim.now,
                    EventType.CLUSTER_NODE_FAIL,
                    node=spec.node,
                    disk=spec.disk,
                )
            if jobs_runtime is not None:
                # Reconstruction runs as a leased job: a worker claims
                # it, plans batches from the committed cursor, and a
                # fail-slow stall that outlives the lease hands the job
                # to the next epoch's claimant.
                def issue(ops: List[Any], node: ClusterNode = node) -> float:
                    # Background load on the failed node's spindles only.
                    return node.service_disk_ops(obs, sim.now, ops)

                jobs_runtime.submit(
                    "rebuild",
                    RebuildJob(ctrl, spec.rows_per_batch, issue),
                    spec.interval,
                    on_done=lambda _t: complete_node_failure(),
                )
                return
            sim.schedule_callback(sim.now + spec.interval, rebuild_tick)

        def rebuild_tick() -> None:
            node = nodes[spec.node]
            ctrl = rebuild_state["controller"]
            assert ctrl is not None
            if not ctrl.done:
                ops = ctrl.next_batch(spec.rows_per_batch)
                if ops:
                    # Background load on the failed node's spindles only.
                    node.service_disk_ops(obs, sim.now, ops)
            if sampler is not None:
                sampler.note_activity(sim.now, "rebuild", ctrl.progress)
            if ctrl.done:
                complete_node_failure()
                return
            sim.schedule_callback(sim.now + spec.interval, rebuild_tick)

        sim.schedule_callback(spec.time, begin_node_failure)

    # ------------------------------------------------------------------
    # metadata-node kill + stop-the-world GC baseline
    # ------------------------------------------------------------------
    if directory is not None and directory_cfg is not None:
        kill_spec = directory_cfg.kill
        if kill_spec is not None:
            kill = kill_spec

            def do_kill() -> None:
                assert directory is not None
                directory.kill(kill.node)
                if sampler is not None:
                    sampler.note_activity(sim.now, "metadata_kill", 1.0)
                if obs.level >= TraceLevel.SUMMARY:
                    obs.emit(
                        TraceLevel.SUMMARY,
                        sim.now,
                        EventType.FAULT_INJECT,
                        kind="metadata_kill",
                        detail=(
                            f"node {kill.node} directory replica down "
                            "(data plane unaffected)"
                        ),
                    )

            sim.schedule_callback(kill.time, do_kill)
        stw_spec = directory_cfg.gc
        if (
            refcount_gc is not None
            and stw_spec is not None
            and stw_spec.mode != MODE_ONLINE
        ):
            sweep_spec = stw_spec

            def stw_sweep() -> None:
                assert refcount_gc is not None
                processed = refcount_gc.drain_all()
                stall = processed * sweep_spec.entry_cost
                stw_state["processed"] += processed
                stw_state["until"] = sim.now + stall
                if sampler is not None and stall > 0:
                    sampler.annotate_interval("gc_stw", sim.now, sim.now + stall)
                if obs.level >= TraceLevel.SUMMARY:
                    obs.emit(
                        TraceLevel.SUMMARY,
                        sim.now,
                        EventType.FAULT_INJECT,
                        kind="gc_stw",
                        detail=(
                            f"stop-the-world gc: {processed} intents, "
                            f"{stall:.6f}s foreground stall"
                        ),
                    )

            sim.schedule_callback(sweep_spec.start, stw_sweep)

    # ------------------------------------------------------------------
    # membership change + paced shard migration
    # ------------------------------------------------------------------
    if rebalance is not None:
        rb = rebalance

        def begin_rebalance() -> None:
            added = [nnodes + i for i in range(rb.add_nodes)]
            for member in added:
                router.add_member(member)
                shards.setdefault(member, {})
            if rb.remove_node is not None:
                router.remove_member(rb.remove_node)
            migrator = ShardMigrator(router, shards)
            migration["migrator"] = migrator
            if sampler is not None:
                sampler.note_activity(sim.now, "rebalance", 1.0)
            if obs.level >= TraceLevel.SUMMARY:
                obs.emit(
                    TraceLevel.SUMMARY,
                    sim.now,
                    EventType.CLUSTER_REBALANCE,
                    added=len(added),
                    removed=0 if rb.remove_node is None else 1,
                    moves=migrator.entries_total,
                    ring_size=router.ring_size(),
                )
            if migrator.done:
                return
            if jobs_runtime is not None:
                # Migration runs as a leased job; the per-link wire
                # charge happens at plan time (sunk cost on a fenced
                # step -- the bytes were already on the wire), the
                # directory mutation only at the fenced commit.
                def send(links: Dict[Tuple[int, int], int]) -> float:
                    done = sim.now
                    for src, dst in sorted(links):
                        moved = links[(src, dst)]
                        t = fabric.round_trip(
                            sim.now, src, dst, moved * cluster.net.entry_bytes
                        )
                        if sampler is not None:
                            sampler.note_rpc(
                                sim.now,
                                src,
                                dst,
                                moved * cluster.net.entry_bytes,
                                fabric.last_service,
                            )
                        if obs.level >= TraceLevel.CHUNK:
                            obs.emit(
                                TraceLevel.CHUNK,
                                sim.now,
                                EventType.NET_RPC,
                                src=src,
                                dst=dst,
                                bytes=moved * cluster.net.entry_bytes,
                                queued=fabric.last_queue_wait,
                                done=t,
                            )
                        if t > done:
                            done = t
                    return done

                jobs_runtime.submit(
                    "migrate",
                    MigrationJob(migrator, rb.entries_per_batch, send),
                    rb.interval,
                )
                return
            sim.schedule_callback(sim.now + rb.interval, migrate_tick)

        def migrate_tick() -> None:
            migrator = migration["migrator"]
            assert migrator is not None
            links = migrator.next_batch(rb.entries_per_batch)
            if sampler is not None:
                sampler.note_activity(sim.now, "migration", migrator.progress)
            for src, dst in sorted(links):
                moved = links[(src, dst)]
                done = fabric.round_trip(
                    sim.now, src, dst, moved * cluster.net.entry_bytes
                )
                if sampler is not None:
                    sampler.note_rpc(
                        sim.now,
                        src,
                        dst,
                        moved * cluster.net.entry_bytes,
                        fabric.last_service,
                    )
                if obs.level >= TraceLevel.CHUNK:
                    obs.emit(
                        TraceLevel.CHUNK,
                        sim.now,
                        EventType.NET_RPC,
                        src=src,
                        dst=dst,
                        bytes=moved * cluster.net.entry_bytes,
                        queued=fabric.last_queue_wait,
                        done=done,
                    )
            if obs.level >= TraceLevel.SUMMARY:
                obs.emit(
                    TraceLevel.SUMMARY,
                    sim.now,
                    EventType.CLUSTER_MIGRATE,
                    moved=migrator.entries_migrated,
                    remaining=migrator.remaining,
                )
            if not migrator.done:
                sim.schedule_callback(sim.now + rb.interval, migrate_tick)

        sim.schedule_callback(rb.time, begin_rebalance)

    # ------------------------------------------------------------------

    sim.run(arrival_handler=on_arrival)

    if jobs_runtime is not None:
        # Mirror job counters into the registry and verify the step
        # ledger (no step lost, none double-applied).
        jobs_runtime.finalize()

    if sanitizer is not None:
        for node in nodes:
            sanitizer.assert_clean(node.scheme, sim.now)

    if oracles is not None:
        for node in nodes:
            oracles[node.node_id].assert_clean(node.scheme)

    if obs.level >= TraceLevel.SUMMARY:
        obs.emit(
            TraceLevel.SUMMARY,
            sim.now,
            EventType.RUN_END,
            events_processed=sim.events_processed,
            makespan=metrics.as_dict()["makespan"],
        )

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------

    slo_stats: Optional[Dict[str, Any]] = None
    if sampler is not None:
        sampler.finish(sim.now)
        if config.slo is not None:
            slo_stats = evaluate_slo(config.slo, sampler.as_dict())

    volumes: List[Dict[str, Any]] = []
    if per_volume_metrics:
        tracked = set(metrics.volume_ids())
        for vid, trace in enumerate(traces):
            entry: Dict[str, Any] = {
                "volume_id": vid,
                "name": trace.name,
                "logical_blocks": trace.logical_blocks,
            }
            if vid in tracked:
                entry.update(metrics.volume_as_dict(vid))
            else:  # volume with no measured traffic
                entry["requests"] = 0
            volumes.append(entry)

    utilisation: Dict[int, Dict[str, float]] = {}
    for node in nodes:
        utilisation.update(node.utilisation())

    if nnodes == 1:
        scheme_stats = schemes[0].stats()
        timeline = getattr(schemes[0].cache, "epoch_timeline", [])
    else:
        scheme_stats = _aggregate_stats([s.stats() for s in schemes])
        timeline = []

    node_summaries: List[Dict[str, Any]] = []
    cluster_stats: Optional[Dict[str, Any]] = None
    if multi_node or cluster_active:
        tracked_nodes = set(metrics.node_ids())
        for node in nodes:
            node_entry: Dict[str, Any] = {
                "node_id": node.node_id,
                "name": node.name,
                "volumes": list(node.volume_ids),
                "logical_blocks": node.mapper.total_logical_blocks,
                "capacity_blocks": node.scheme.capacity_blocks(),
            }
            if node.node_id in tracked_nodes:
                node_entry.update(metrics.node_as_dict(node.node_id))
            else:  # node with no measured traffic
                node_entry["requests"] = 0
            # Raw whole-run node counters deliberately override the
            # measured-window metric counters of the same name: the
            # per-node breakdown must sum exactly to the cluster totals
            # below (which are whole-run).
            node_entry.update(
                {
                    "writes_total": node.scheme.writes_total,
                    "write_requests_removed": node.scheme.write_requests_removed,
                    "requests_served": node.requests_served,
                    "remote_lookups": node.remote_lookups,
                    "remote_duplicate_blocks": node.remote_duplicate_blocks,
                    "rebalance_misses": node.rebalance_misses,
                    "net_delay_total": node.net_delay_total,
                }
            )
            if directory is not None:
                node_entry["directory"] = directory.member_summary(node.node_id)
            node_summaries.append(node_entry)

        net = cluster.net
        cluster_stats = {
            "nodes": nnodes,
            "vnodes": cluster.vnodes,
            "ring_members": list(router.members),
            "net": {
                "latency": net.latency,
                "bandwidth": net.bandwidth,
                "lookup_bytes": net.lookup_bytes,
                "entry_bytes": net.entry_bytes,
            },
            "fabric": fabric.summary(),
            "remote_lookups": sum(n.remote_lookups for n in nodes),
            "remote_duplicate_blocks": sum(
                n.remote_duplicate_blocks for n in nodes
            ),
            "rebalance_misses": sum(n.rebalance_misses for n in nodes),
            "shard_entries": (
                directory.entries_by_member()
                if directory is not None
                else {
                    str(member): len(shards[member]) for member in sorted(shards)
                }
            ),
        }
        migrator = migration["migrator"]
        if rebalance is not None:
            rb_stats: Dict[str, Any] = {
                "time": rebalance.time,
                "add_nodes": rebalance.add_nodes,
                "remove_node": rebalance.remove_node,
            }
            if migrator is not None:
                rb_stats.update(migrator.summary())
            cluster_stats["rebalance"] = rb_stats
        ctrl = rebuild_state["controller"]
        if node_failure is not None:
            nf_stats: Dict[str, Any] = {
                "node": node_failure.node,
                "disk": node_failure.disk,
                "time": node_failure.time,
            }
            if ctrl is not None:
                nf_stats.update(
                    {
                        "done": ctrl.done,
                        "progress": ctrl.progress,
                        "rows_scanned": ctrl.rows_scanned,
                        "rows_rebuilt": ctrl.rows_rebuilt,
                        "rows_skipped": ctrl.rows_skipped,
                    }
                )
            cluster_stats["node_failure"] = nf_stats
        if directory is not None and directory_cfg is not None:
            dir_stats: Dict[str, Any] = dict(directory.summary())
            if directory_cfg.kill is not None:
                dir_stats["kill"] = {
                    "node": directory_cfg.kill.node,
                    "time": directory_cfg.kill.time,
                }
            if refcount_gc is not None and directory_cfg.gc is not None:
                gc_stats: Dict[str, Any] = dict(refcount_gc.summary())
                gc_stats["mode"] = directory_cfg.gc.mode
                gc_stats["start"] = directory_cfg.gc.start
                gc_stats["batch"] = directory_cfg.gc.batch
                if directory_cfg.gc.mode != MODE_ONLINE:
                    gc_stats["stw_stalled_requests"] = int(stw_state["stalled"])
                    gc_stats["stw_processed_intents"] = int(
                        stw_state["processed"]
                    )
                dir_stats["gc"] = gc_stats
            cluster_stats["directory"] = dir_stats
        if oracles is not None:
            cluster_stats["oracle"] = [
                {"node": node_id, **oracle.summary()}
                for node_id, oracle in enumerate(oracles)
            ]

    return ReplayResult(
        trace_name=run_name,
        scheme_name=schemes[0].name,
        metrics=metrics,
        scheme_stats=scheme_stats,
        utilisation=utilisation,
        capacity_blocks=sum(s.capacity_blocks() for s in schemes),
        writes_total=sum(s.writes_total for s in schemes) - boundary["writes"],
        write_requests_removed=(
            sum(s.write_requests_removed for s in schemes) - boundary["removed"]
        ),
        epoch_timeline=[
            e.as_dict() if hasattr(e, "as_dict") else dict(e) for e in timeline
        ],
        recorder=recorder,
        sanitizer=sanitizer,
        volumes=volumes,
        fault_stats=None,
        nodes=node_summaries,
        cluster_stats=cluster_stats,
        timeline=sampler,
        spans=tracer,
        slo_stats=slo_stats,
        jobs_stats=jobs_runtime.summary() if jobs_runtime is not None else None,
    )
