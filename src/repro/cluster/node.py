"""One POD node inside a cluster replay.

A :class:`ClusterNode` bundles everything the single-node replay
builds at module scope -- a private RAID array over private member
disks, one :class:`~repro.baselines.base.DedupScheme` (Index table,
Map table, iCache budget and all), and a node-local
:class:`~repro.storage.namespace.NamespaceMapper` over the volumes
assigned to the node.  Every node is a *complete, standard* POD
instance: the cluster layer above it routes dedup lookups and pays
network costs, but data placement, Select-Dedupe decisions, sanitizer
invariants and the content oracle all remain per-node properties.

Disk service replicates :meth:`repro.sim.engine.Simulator.service_disk_ops`
exactly (same FCFS busy-horizon arithmetic, same ``disk.op`` trace
events) so that a one-node cluster produces byte-identical traces and
utilisation tables to the classic engine path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.base import DedupScheme
from repro.errors import ClusterError
from repro.obs.events import EventType, TraceLevel
from repro.obs.trace import TraceRecorder
from repro.sim.request import DiskOp
from repro.storage.disk import Disk
from repro.storage.namespace import NamespaceMapper
from repro.storage.raid import RaidArray
from repro.storage.volume import VolumeOp


class ClusterNode:
    """A POD node: scheme + RAID array + member disks + volume map.

    Parameters
    ----------
    node_id:
        Dense cluster-wide node index (0..N-1).
    scheme:
        The node's dedup scheme, sized for the node's own volumes.
    disks:
        The node's member disks, ordered by *local* disk index; each
        carries a cluster-unique ``disk_id`` for trace events and
        utilisation keys.
    raid:
        The node's RAID array (geometry must match ``len(disks)``).
    mapper:
        Node-local namespace over the node's volumes, in global
        volume-id order.
    """

    def __init__(
        self,
        node_id: int,
        scheme: DedupScheme,
        disks: Sequence[Disk],
        raid: RaidArray,
        mapper: NamespaceMapper,
    ) -> None:
        if node_id < 0:
            raise ClusterError(f"negative node id {node_id}")
        if len(disks) != raid.geometry.ndisks:
            raise ClusterError(
                f"node {node_id}: raid geometry wants {raid.geometry.ndisks} "
                f"disks, got {len(disks)}"
            )
        self.node_id = node_id
        self.name = f"node{node_id}"
        self.scheme = scheme
        self.disks: List[Disk] = list(disks)
        self.raid = raid
        self.mapper = mapper
        #: Failed member disk (local index), or None when healthy.
        self.failed_disk: Optional[int] = None
        #: Global volume ids served by this node, in arrival-merge order.
        self.volume_ids: List[int] = []
        # -- cluster accounting (fed by the replay driver) --------------
        self.remote_lookups = 0
        self.remote_duplicate_blocks = 0
        self.rebalance_misses = 0
        self.net_delay_total = 0.0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # disk service (mirrors Simulator.service_disk_ops analytically)
    # ------------------------------------------------------------------

    def service_disk_ops(
        self, obs: TraceRecorder, now: float, ops: Sequence[DiskOp]
    ) -> float:
        """Issue raw per-disk ops FCFS; return the last completion time."""
        completion = now
        trace_ops = obs.level >= TraceLevel.CHUNK
        for op in ops:
            if not (0 <= op.disk_id < len(self.disks)):
                raise ClusterError(
                    f"node {self.node_id}: op addressed to unknown disk {op.disk_id}"
                )
            disk = self.disks[op.disk_id]
            busy_before = disk.busy_until if trace_ops else 0.0
            done = disk.service(now, op.pba, op.nblocks)
            if trace_ops:
                obs.emit(
                    TraceLevel.CHUNK,
                    now,
                    EventType.DISK_OP,
                    disk=disk.disk_id,
                    op=op.op.value,
                    pba=op.pba,
                    nblocks=op.nblocks,
                    start=max(now, busy_before),
                    done=done,
                )
            if done > completion:
                completion = done
        return completion

    def service_volume_ops(
        self, obs: TraceRecorder, now: float, ops: Sequence[VolumeOp]
    ) -> float:
        """RAID-translate the node's volume extents and service them."""
        disk_ops: List[DiskOp] = []
        for vop in ops:
            if self.failed_disk is not None:
                disk_ops.extend(self.raid.map_degraded(vop, self.failed_disk))
            else:
                disk_ops.extend(self.raid.map(vop))
        return self.service_disk_ops(obs, now, disk_ops)

    def queue_lag(self, now: float) -> float:
        """Worst backlog across the node's member disks at ``now``."""
        lag = 0.0
        for disk in self.disks:
            behind = disk.busy_until - now
            if behind > lag:
                lag = behind
        return lag

    # ------------------------------------------------------------------

    def utilisation(self) -> Dict[int, Dict[str, float]]:
        """Per-disk utilisation keyed by cluster-unique disk id."""
        return {
            disk.disk_id: {
                "ops": disk.ops_serviced,
                "blocks": disk.blocks_moved,
                "busy_time": disk.busy_time,
                "seek_time": disk.seek_time_total,
                "rotation_time": disk.rotation_time_total,
                "transfer_time": disk.transfer_time_total,
            }
            for disk in self.disks
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterNode({self.name}, scheme={self.scheme.name!r}, "
            f"volumes={self.volume_ids})"
        )
