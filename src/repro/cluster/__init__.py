"""Sharded multi-node dedup domain (cluster layer).

POD is a per-node design; this package scales it out: N complete POD
nodes run inside one :class:`~repro.sim.engine.Simulator` event loop,
a consistent-hash :class:`~repro.cluster.router.FingerprintRouter`
shards the fingerprint directory across them, remote lookups pay a
:class:`~repro.cluster.netmodel.NetworkModel`, and membership changes
migrate shard ranges as paced background load
(:class:`~repro.cluster.rebalance.ShardMigrator`).

See docs/cluster.md for the design and ``repro run-cluster`` for the
CLI entry point.
"""

from __future__ import annotations

from repro.cluster.directory import (
    Consistency,
    DirectoryConfig,
    GcSpec,
    KillSpec,
    ReplicatedDirectory,
)
from repro.cluster.netmodel import NetworkFabric, NetworkModel
from repro.cluster.node import ClusterNode
from repro.cluster.rebalance import RebalanceSpec, ShardMigrator
from repro.cluster.replay import ClusterConfig, replay_cluster
from repro.cluster.router import DEFAULT_VNODES, FingerprintRouter, mix64

__all__ = [
    "ClusterConfig",
    "ClusterNode",
    "Consistency",
    "DEFAULT_VNODES",
    "DirectoryConfig",
    "FingerprintRouter",
    "GcSpec",
    "KillSpec",
    "NetworkFabric",
    "NetworkModel",
    "RebalanceSpec",
    "ReplicatedDirectory",
    "ShardMigrator",
    "mix64",
    "replay_cluster",
]
