"""The cluster network cost model.

Remote fingerprint lookups and shard migrations are not free: a
message pays propagation latency each way, occupies its directed link
for ``bytes / bandwidth`` seconds, and queues behind earlier messages
on the same link.  The model mirrors the analytic disk model in
:mod:`repro.storage.disk`: completion times are computed at issue time
from per-link busy horizons, which keeps the whole cluster replay on
the fast analytic path and bit-for-bit deterministic.

A :class:`NetworkFabric` tracks one busy horizon per *directed*
``(src, dst)`` link (full-duplex fabric: ``a -> b`` and ``b -> a`` are
independent).  Loopback (``src == dst``) is free -- a node consulting
its own shard pays nothing, which is what pins the one-node cluster
bit-identical to the single-node replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import ClusterError


@dataclass(frozen=True)
class NetworkModel:
    """Frozen parameters of the inter-node fabric.

    Attributes
    ----------
    latency:
        One-way propagation delay, seconds (paid twice per RPC).
    bandwidth:
        Per-directed-link bandwidth, bytes/second.
    lookup_bytes:
        Wire size of one fingerprint lookup (request + response
        amortised), bytes.
    entry_bytes:
        Wire size of one migrated shard entry (fingerprint + owner +
        framing), bytes -- matches the Map table's 20 B/entry order of
        magnitude with framing overhead.
    """

    latency: float = 100e-6
    bandwidth: float = 1e9
    lookup_bytes: int = 64
    entry_bytes: int = 40

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ClusterError(f"negative network latency {self.latency}")
        if self.bandwidth <= 0:
            raise ClusterError(f"network bandwidth must be positive, got {self.bandwidth}")
        if self.lookup_bytes <= 0:
            raise ClusterError(f"lookup_bytes must be positive, got {self.lookup_bytes}")
        if self.entry_bytes <= 0:
            raise ClusterError(f"entry_bytes must be positive, got {self.entry_bytes}")


class NetworkFabric:
    """Analytic per-link queueing state over a :class:`NetworkModel`."""

    def __init__(self, model: NetworkModel) -> None:
        self.model = model
        #: Directed link -> time the link frees up.
        self._busy: Dict[Tuple[int, int], float] = {}
        # -- counters ---------------------------------------------------
        self.rpcs = 0
        self.bytes_moved = 0
        self.queue_wait_total = 0.0
        self.busy_time_total = 0.0
        #: Queueing delay of the most recent RPC (for trace events).
        self.last_queue_wait = 0.0
        #: Link-occupancy (service) time of the most recent RPC -- lets
        #: callers feed per-link utilisation telemetry without reaching
        #: into the private busy map.
        self.last_service = 0.0

    def round_trip(self, now: float, src: int, dst: int, nbytes: int) -> float:
        """Completion time of an ``nbytes`` RPC issued at ``now``.

        Loopback completes immediately at ``now`` and records nothing.
        """
        if src == dst:
            return now
        if nbytes <= 0:
            raise ClusterError(f"RPC payload must be positive, got {nbytes}")
        link = (src, dst)
        service = nbytes / self.model.bandwidth
        start = max(now, self._busy.get(link, 0.0))
        self._busy[link] = start + service
        self.rpcs += 1
        self.bytes_moved += nbytes
        self.last_queue_wait = start - now
        self.last_service = service
        self.queue_wait_total += start - now
        self.busy_time_total += service
        return start + service + 2.0 * self.model.latency

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Fabric totals for run reports and ``repro stats``."""
        return {
            "rpcs": self.rpcs,
            "bytes_moved": self.bytes_moved,
            "queue_wait_total": self.queue_wait_total,
            "busy_time_total": self.busy_time_total,
            "links_used": len(self._busy),
        }
