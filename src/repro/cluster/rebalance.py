"""Membership changes and paced shard migration.

When the ring gains or loses a member, ownership of some fingerprint
arcs moves.  The directory entries backing those arcs do not teleport:
a :class:`ShardMigrator` walks the displaced entries in deterministic
order and moves them in bounded batches over the network fabric --
the same "bounded background load on a pacing timer" idiom as
:class:`~repro.storage.rebuild.RebuildController` uses for RAID
reconstruction.

Between the ring change (instantaneous, at the spec'd time) and the
moment a given entry lands at its new owner, lookups for that
fingerprint go to the *new* owner and miss.  Dedup treats a miss as
unique content -- exactly POD's miss-as-unique Index-table semantics
-- so correctness is never at stake; the replay counts these
``rebalance_misses`` as the (temporary) dedup-opportunity cost of the
migration.  A write during the window re-registers the fingerprint at
the new owner; the in-flight copy is then superseded and dropped on
arrival (first registration wins, matching the first-writer
semantics of the directory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.router import FingerprintRouter
from repro.errors import ClusterError


@dataclass(frozen=True)
class RebalanceSpec:
    """A scheduled membership change.

    Attributes
    ----------
    time:
        Simulated time the ring change takes effect and migration
        starts.
    add_nodes:
        How many fresh directory-only members to add (ids continue
        the dense node numbering).
    remove_node:
        A member id to remove, or None.
    entries_per_batch:
        Directory entries migrated per pacing tick.
    interval:
        Seconds between migration ticks.
    """

    time: float
    add_nodes: int = 0
    remove_node: Optional[int] = None
    entries_per_batch: int = 256
    interval: float = 0.01

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ClusterError(f"rebalance time must be >= 0, got {self.time}")
        if self.add_nodes < 0:
            raise ClusterError(f"negative add_nodes {self.add_nodes}")
        if self.add_nodes == 0 and self.remove_node is None:
            raise ClusterError("a rebalance must add or remove at least one node")
        if self.remove_node is not None and self.remove_node < 0:
            raise ClusterError(f"negative remove_node {self.remove_node}")
        if self.entries_per_batch <= 0:
            raise ClusterError(
                f"entries_per_batch must be positive, got {self.entries_per_batch}"
            )
        if self.interval <= 0:
            raise ClusterError(f"migration interval must be positive, got {self.interval}")


class ShardMigrator:
    """Paced migration of displaced directory entries.

    Built *after* the ring change has been applied to ``router``:
    compares each entry's current shard against its new route and
    queues the movers in deterministic (shard, fingerprint) order.

    ``shards`` maps shard-owner id -> (fingerprint -> first-writer
    node id) and is mutated in place as batches complete.
    """

    def __init__(
        self,
        router: FingerprintRouter,
        shards: Dict[int, Dict[int, int]],
    ) -> None:
        self._shards = shards
        #: (fingerprint, src shard, dst shard, first-writer) move list.
        self._moves: List[Tuple[int, int, int, int]] = []
        for src in sorted(shards):
            if src not in router:
                # Removed member: every entry it held must move.
                displaced = sorted(shards[src])
            else:
                displaced = sorted(
                    fp for fp in shards[src] if router.route(fp) != src
                )
            for fp in displaced:
                self._moves.append((fp, src, router.route(fp), shards[src][fp]))
        self._cursor = 0
        #: Fingerprints still in flight (lookup misses at the new owner).
        self.pending: Set[int] = {fp for fp, _, _, _ in self._moves}
        # -- counters ---------------------------------------------------
        self.entries_total = len(self._moves)
        self.entries_migrated = 0
        self.entries_superseded = 0

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._cursor >= len(self._moves)

    @property
    def remaining(self) -> int:
        return len(self._moves) - self._cursor

    @property
    def progress(self) -> float:
        """Fraction of queued movers processed (1.0 when nothing moved)."""
        if not self._moves:
            return 1.0
        return self._cursor / len(self._moves)

    @property
    def cursor(self) -> int:
        """Committed migration cursor: the next mover to process."""
        return self._cursor

    def plan_batch(
        self, start: int, entries: int
    ) -> Tuple[Dict[Tuple[int, int], int], int]:
        """Plan up to ``entries`` movers from ``start`` *without*
        touching the shards.

        Pure with respect to migrator state (wire costs depend only
        on the immutable move list), so a leased-job worker can
        re-plan the same step after a stale-lease re-claim.  Returns
        ``(links, end)`` where ``links`` is the per-directed-link wire
        cost the driver charges the fabric.
        """
        if entries <= 0:
            raise ClusterError(f"batch size must be positive, got {entries}")
        links: Dict[Tuple[int, int], int] = {}
        end = min(start + entries, len(self._moves))
        if end < start:
            end = start
        for i in range(start, end):
            _fp, src, dst, _writer = self._moves[i]
            links[(src, dst)] = links.get((src, dst), 0) + 1
        return links, end

    def commit_batch(self, start: int, end: int) -> None:
        """Apply one planned batch: move the directory entries.

        Rejects a commit whose start does not match the committed
        cursor -- the hard stop against a fenced worker's step being
        double-applied.
        """
        if start != self._cursor:
            raise ClusterError(
                f"migration commit at entry {start} does not match the "
                f"committed cursor {self._cursor}"
            )
        if end < start or end > len(self._moves):
            raise ClusterError(
                f"migration commit range [{start}, {end}) out of bounds"
            )
        for i in range(start, end):
            fp, src, dst, writer = self._moves[i]
            src_shard = self._shards.get(src)
            if src_shard is not None:
                src_shard.pop(fp, None)
            dst_shard = self._shards.setdefault(dst, {})
            if fp in dst_shard:
                self.entries_superseded += 1
            else:
                dst_shard[fp] = writer
            self.entries_migrated += 1
            self.pending.discard(fp)
        self._cursor = end

    def next_batch(self, entries: int) -> Dict[Tuple[int, int], int]:
        """Migrate up to ``entries`` queued movers.

        Returns the wire cost grouped per directed link:
        ``(src, dst) -> entries moved`` (the driver charges the
        network fabric per link).  Entries superseded by a write that
        already re-registered the fingerprint at the destination are
        dropped (first registration wins) but still counted against
        the batch -- the bytes were already on the wire.

        Equivalent to :meth:`plan_batch` + :meth:`commit_batch` in one
        call (the jobs-off pacing path).
        """
        links, end = self.plan_batch(self._cursor, entries)
        self.commit_batch(self._cursor, end)
        return links

    def note_registered(self, fingerprint: int) -> None:
        """A live write re-registered a fingerprint at its new owner;
        the in-flight copy (if any) is now superseded on arrival."""
        self.pending.discard(fingerprint)

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        return {
            "entries_total": self.entries_total,
            "entries_migrated": self.entries_migrated,
            "entries_superseded": self.entries_superseded,
            "entries_remaining": self.remaining,
        }
