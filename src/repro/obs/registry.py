"""Named counters, gauges and fixed-bucket latency histograms.

The registry is the *aggregating* half of the observability layer
(:mod:`repro.obs.trace` is the per-event half): hot paths bump
counters and observe latencies in O(1)/O(log buckets) without storing
samples, and the run report serialises the whole registry at the end.

The histogram uses log-spaced fixed buckets (HdrHistogram-style):
percentiles are answered by walking the cumulative counts and
linearly interpolating inside the target bucket, so p50/p95/p99/p999
cost no per-sample memory and two histograms merge by adding their
bucket counts -- which is what lets ``repro stats a.json b.json``
diff reports and lets sharded replays aggregate.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds",
]


def default_latency_bounds(
    lo: float = 1e-6, hi: float = 1e3, per_decade: int = 40
) -> List[float]:
    """Log-spaced bucket boundaries covering ``[lo, hi]`` seconds.

    ``per_decade`` controls resolution: 40/decade keeps interpolated
    percentiles within ~3% of the exact value for smooth
    distributions while costing only a few hundred integer slots.
    """
    if lo <= 0 or hi <= lo:
        raise ConfigError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise ConfigError("per_decade must be >= 1")
    decades = math.log10(hi / lo)
    n = int(round(decades * per_decade))
    ratio = (hi / lo) ** (1.0 / n)
    bounds = [lo * ratio**i for i in range(n)]
    bounds.append(hi)
    return bounds


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter {self.name}: negative increment {n}")
        self.value += n


class Gauge:
    """Point-in-time named value, tracking its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v


class Histogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    ``bounds`` are the upper edges of the finite buckets; sample ``v``
    lands in the first bucket whose upper edge is ``>= v``.  Values
    at or below the smallest edge share the underflow bucket (lower
    edge 0); values above the largest edge land in the overflow
    bucket, whose percentiles report the exact observed maximum.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: List[float] = (
            list(bounds) if bounds is not None else default_latency_bounds()
        )
        if not self.bounds:
            raise ConfigError(f"histogram {name}: empty bucket boundaries")
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ConfigError(f"histogram {name}: boundaries must strictly increase")
        if self.bounds[0] <= 0:
            raise ConfigError(f"histogram {name}: boundaries must be positive")
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    # ------------------------------------------------------------------

    def observe(self, v: float) -> None:
        """Record one sample (negative samples are a caller bug)."""
        if v < 0:
            raise ConfigError(f"histogram {self.name}: negative sample {v}")
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v
        i = bisect.bisect_left(self.bounds, v)
        if i == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[i] += 1

    def observe_many(self, values: Sequence[float]) -> None:
        for v in values:
            self.observe(v)

    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self.vmin if self.count else 0.0

    @property
    def max(self) -> float:
        return self.vmax if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated ``q``-th percentile (``0 <= q <= 100``).

        Walks the cumulative counts to the target rank and linearly
        interpolates within the containing bucket; the result is
        clamped to the observed ``[min, max]`` so tiny buckets can
        never report values outside the data.
        """
        if not (0.0 <= q <= 100.0):
            raise ConfigError(f"percentile {q} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (rank - cum) / c
                return self._clamp(lo + (hi - lo) * frac)
            cum += c
        # Target rank lives in the overflow bucket.
        return self._clamp(self.vmax)

    def _clamp(self, v: float) -> float:
        return max(self.vmin, min(self.vmax, v))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    # ------------------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Pointwise sum with ``other`` (must share boundaries)."""
        if self.bounds != other.bounds:
            raise ConfigError(
                f"cannot merge histograms {self.name!r} and {other.name!r}: "
                "bucket boundaries differ"
            )
        out = Histogram(self.name, self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.overflow = self.overflow + other.overflow
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.vmin = min(self.vmin, other.vmin)
        out.vmax = max(self.vmax, other.vmax)
        return out

    def nonzero_buckets(self) -> List[Tuple[float, float, int]]:
        """``(lower, upper, count)`` for every occupied bucket."""
        out: List[Tuple[float, float, int]] = []
        for i, c in enumerate(self.counts):
            if c:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                out.append((lo, self.bounds[i], c))
        if self.overflow:
            out.append((self.bounds[-1], math.inf, self.overflow))
        return out

    def as_dict(self, include_buckets: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
        }
        if include_buckets:
            out["buckets"] = [
                [lo, ("inf" if math.isinf(hi) else hi), c]
                for lo, hi, c in self.nonzero_buckets()
            ]
        return out


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    One registry accompanies one replay; schemes, caches, the engine
    and the collector all write into it through their attached
    observer, and the run report serialises it via :meth:`as_dict`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # -- convenience ---------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, v: float) -> None:
        self.gauge(name).set(v)

    def observe(self, name: str, v: float) -> None:
        self.histogram(name).observe(v)

    # -- export --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {k: c.value for k, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, Dict[str, float]]:
        return {
            k: {"value": g.value, "max": g.max_value}
            for k, g in sorted(self._gauges.items())
        }

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def as_dict(self, include_buckets: bool = False) -> Dict[str, Any]:
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                k: h.as_dict(include_buckets=include_buckets)
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Combine two registries (counters add, histograms merge,
        gauges keep the pointwise max of high-water marks)."""
        out = MetricsRegistry()
        # ``other`` is another MetricsRegistry: same-class access to the
        # backing stores is the merge's whole point.
        for name in set(self._counters) | set(other._counters):  # pod: ignore[POD007]
            a = self._counters.get(name)
            b = other._counters.get(name)  # pod: ignore[POD007]
            out.counter(name).value = (a.value if a else 0) + (b.value if b else 0)
        for name in set(self._gauges) | set(other._gauges):  # pod: ignore[POD007]
            g = out.gauge(name)
            for src in (self._gauges.get(name), other._gauges.get(name)):  # pod: ignore[POD007]
                if src is not None:
                    g.set(src.value)
                    if src.max_value > g.max_value:
                        g.max_value = src.max_value
        for name in set(self._histograms) | set(other._histograms):  # pod: ignore[POD007]
            a = self._histograms.get(name)
            b = other._histograms.get(name)  # pod: ignore[POD007]
            if a is not None and b is not None:
                out._histograms[name] = a.merge(b)  # pod: ignore[POD007]
            else:
                src = a if a is not None else b
                assert src is not None
                out._histograms[name] = src.merge(  # pod: ignore[POD007]
                    Histogram(name, src.bounds)
                )
        return out
