"""Causal span tracing for the request lifecycle.

A span is a named interval of simulated time with a parent pointer:
``request`` (root) → ``admission.stall`` / ``classify`` /
``scheme.lookup`` → ``rpc`` (remote directory lookups) → ``disk``
(per-volume-op service) → recovery spans emitted by the fault
injector.  Reconstructing one request's path across nodes, RPCs and
fault recoveries is a tree walk over ``parent`` ids.

Span ids are a deterministic incrementing counter (never random):
the same seed yields byte-identical span JSONL, which is what the
golden snapshot test pins.  The tracer is wired behind the same
``is not None`` guards as the fault hook and the timeline sampler,
so a replay without ``spans=True`` pays one pointer test per site.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

#: Bumped on any breaking change to the span record layout.
SPAN_SCHEMA_VERSION = 1

#: Safety valve: a CHUNK-grained cluster replay can emit several spans
#: per request; past this many the tracer counts drops instead of
#: growing without bound.  Deterministic (count-based, not size-based).
DEFAULT_MAX_SPANS = 500_000


class Span:
    """One recorded interval.  ``end < start`` means still open
    (only possible if a run aborts mid-request)."""

    __slots__ = ("span_id", "parent", "name", "req_id", "node", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent: int,
        name: str,
        req_id: int,
        node: int,
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.req_id = req_id
        self.node = node
        self.start = start
        self.end = -1.0
        self.attrs: Dict[str, Any] = {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t": self.start,
            "etype": "span",
            "span_id": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "req_id": self.req_id,
            "node": self.node,
            "end": self.end,
            "attrs": self.attrs,
        }


class SpanTracer:
    """Collects spans with deterministic ids.

    ``start`` returns a span id usable as ``parent`` for children and
    as the handle for ``end``; both take *simulated* timestamps.
    Over the cap, ``start`` returns 0 (a sentinel no span ever owns)
    and ``end(…, 0)`` is a no-op, so hot paths need no cap checks.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_id = 1
        self._open: Dict[int, Span] = {}

    def __len__(self) -> int:
        return len(self.spans)

    def start(
        self,
        t: float,
        name: str,
        parent: int = -1,
        req_id: int = -1,
        node: int = -1,
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id (0 when over the cap)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return 0
        sid = self._next_id
        self._next_id += 1
        span = Span(sid, parent, name, req_id, node, t)
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        self._open[sid] = span
        return sid

    def end(self, t: float, sid: int, **attrs: Any) -> None:
        """Close span ``sid`` at simulated time ``t``."""
        span = self._open.pop(sid, None)
        if span is None:
            return
        span.end = t
        if attrs:
            span.attrs.update(attrs)

    def emit(
        self,
        t0: float,
        t1: float,
        name: str,
        parent: int = -1,
        req_id: int = -1,
        node: int = -1,
        **attrs: Any,
    ) -> int:
        """Record an already-finished interval in one call (the
        analytic replay path knows completion times at issue time)."""
        sid = self.start(t0, name, parent, req_id, node, **attrs)
        if sid:
            self.end(t1, sid)
        return sid

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return {k: out[k] for k in sorted(out)}

    def summary(self) -> Dict[str, Any]:
        """The run report's ``spans`` section."""
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "spans": len(self.spans),
            "dropped": self.dropped,
            "open": len(self._open),
            "by_name": self.by_name(),
        }

    def header(self) -> Dict[str, Any]:
        return {
            "etype": "span.header",
            "schema_version": SPAN_SCHEMA_VERSION,
            "spans": len(self.spans),
            "dropped": self.dropped,
        }

    def write_jsonl(self, path_or_file: Union[str, IO[str]]) -> int:
        """Write header + one line per span (id order == start-call
        order); returns lines written."""
        if hasattr(path_or_file, "write"):
            return self._write(path_or_file)  # type: ignore[arg-type]
        with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            return self._write(fh)

    def _write(self, fh: IO[str]) -> int:
        fh.write(json.dumps(self.header(), sort_keys=True) + "\n")
        lines = 1
        for span in self.spans:
            fh.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
            lines += 1
        return lines


def span_children(spans: List[Span]) -> Dict[int, List[Span]]:
    """Parent id -> children, for tree reconstruction in tests/tools."""
    out: Dict[int, List[Span]] = {}
    for span in spans:
        out.setdefault(span.parent, []).append(span)
    return out


def find_root(spans: List[Span], req_id: int) -> Optional[Span]:
    """The root (parent == -1) span of request ``req_id``, if any."""
    for span in spans:
        if span.parent == -1 and span.req_id == req_id:
            return span
    return None
