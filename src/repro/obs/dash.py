"""Self-contained HTML dashboard for a run report's timeline.

``repro dash report.json -o dash.html`` renders the windowed series
as inline-SVG line charts — throughput, read/write p95 latency,
dedup ratio and read-cache hit rate, per-node latency, per-link
network utilisation — with shaded bands for background activity
(fail-slow, rebuild, rebalance, migration) and markers on SLO
violation windows.  The output is one HTML file with zero external
dependencies (no JS, no CSS frameworks, no fonts): it renders in any
browser, attaches to a paper artifact, and diffs deterministically.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigError

_WIDTH = 860
_HEIGHT = 180
_PAD_L = 64
_PAD_R = 12
_PAD_T = 10
_PAD_B = 22

_PALETTE = ("#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed",
            "#0891b2", "#be185d", "#4d7c0f")
_BAND_COLOURS = {
    "fail_slow": "#fecaca",
    "node_failure": "#fca5a5",
    "rebuild": "#fde68a",
    "rebalance": "#bfdbfe",
    "migration": "#ddd6fe",
}
_DEFAULT_BAND = "#e5e7eb"

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 920px; color: #111827; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #d1d5db; padding: 0.3em 0.7em; text-align: right; }
th { background: #f3f4f6; } td.name { text-align: left; }
.legend { font-size: 0.8em; margin: 0.2em 0 0.6em; }
.legend span { margin-right: 1.2em; }
.swatch { display: inline-block; width: 0.8em; height: 0.8em;
          margin-right: 0.3em; vertical-align: middle; }
.meta { color: #6b7280; font-size: 0.85em; }
.violation { color: #b91c1c; }
svg { background: #fafafa; border: 1px solid #e5e7eb; }
"""


def _fmt_val(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:.3g}"
    if abs(v) >= 1:
        return f"{v:.3g}"
    return f"{v:.3g}"


def _polyline(
    points: Sequence[Tuple[float, float]],
    t_lo: float,
    t_hi: float,
    v_hi: float,
    colour: str,
) -> str:
    if not points or t_hi <= t_lo:
        return ""
    span_t = t_hi - t_lo
    span_v = v_hi if v_hi > 0 else 1.0
    coords = []
    for t, v in points:
        x = _PAD_L + (t - t_lo) / span_t * (_WIDTH - _PAD_L - _PAD_R)
        y = _HEIGHT - _PAD_B - (min(v, span_v) / span_v) * (_HEIGHT - _PAD_T - _PAD_B)
        coords.append(f"{x:.1f},{y:.1f}")
    return (
        f'<polyline fill="none" stroke="{colour}" stroke-width="1.5" '
        f'points="{" ".join(coords)}" />'
    )


def _chart(
    title: str,
    series: Mapping[str, List[Tuple[float, float]]],
    t_lo: float,
    t_hi: float,
    bands: Sequence[Tuple[str, float, float]] = (),
    markers: Sequence[float] = (),
    unit: str = "",
) -> str:
    """One SVG line chart with an HTML legend above it."""
    v_hi = 0.0
    for points in series.values():
        for _, v in points:
            if v > v_hi:
                v_hi = v
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    parts: List[str] = [f"<h2>{escape(title)}</h2>"]
    legend = []
    for i, name in enumerate(sorted(series)):
        colour = _PALETTE[i % len(_PALETTE)]
        legend.append(
            f'<span><span class="swatch" style="background:{colour}"></span>'
            f"{escape(name)}</span>"
        )
    for name, colour in sorted(_BAND_COLOURS.items()):
        if any(b[0] == name for b in bands):
            legend.append(
                f'<span><span class="swatch" style="background:{colour}"></span>'
                f"{escape(name)}</span>"
            )
    parts.append(f'<div class="legend">{"".join(legend)}</div>')

    svg: List[str] = [
        f'<svg viewBox="0 0 {_WIDTH} {_HEIGHT}" width="{_WIDTH}" '
        f'height="{_HEIGHT}" xmlns="http://www.w3.org/2000/svg">'
    ]
    span_t = t_hi - t_lo
    for name, b_lo, b_hi in bands:
        colour = _BAND_COLOURS.get(name, _DEFAULT_BAND)
        x0 = _PAD_L + max(0.0, (b_lo - t_lo)) / span_t * (_WIDTH - _PAD_L - _PAD_R)
        x1 = _PAD_L + min(1.0, (b_hi - t_lo) / span_t) * (_WIDTH - _PAD_L - _PAD_R)
        if x1 > x0:
            svg.append(
                f'<rect x="{x0:.1f}" y="{_PAD_T}" width="{x1 - x0:.1f}" '
                f'height="{_HEIGHT - _PAD_T - _PAD_B}" fill="{colour}" '
                f'fill-opacity="0.6" />'
            )
    # axes + gridlines
    svg.append(
        f'<line x1="{_PAD_L}" y1="{_HEIGHT - _PAD_B}" x2="{_WIDTH - _PAD_R}" '
        f'y2="{_HEIGHT - _PAD_B}" stroke="#9ca3af" />'
    )
    svg.append(
        f'<line x1="{_PAD_L}" y1="{_PAD_T}" x2="{_PAD_L}" '
        f'y2="{_HEIGHT - _PAD_B}" stroke="#9ca3af" />'
    )
    for frac in (0.0, 0.5, 1.0):
        v = v_hi * frac
        y = _HEIGHT - _PAD_B - frac * (_HEIGHT - _PAD_T - _PAD_B)
        svg.append(
            f'<text x="{_PAD_L - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="10" fill="#6b7280">{_fmt_val(v)}{escape(unit)}</text>'
        )
    for frac in (0.0, 0.5, 1.0):
        t = t_lo + frac * span_t
        x = _PAD_L + frac * (_WIDTH - _PAD_L - _PAD_R)
        svg.append(
            f'<text x="{x:.1f}" y="{_HEIGHT - 6}" text-anchor="middle" '
            f'font-size="10" fill="#6b7280">{_fmt_val(t)}s</text>'
        )
    for t in markers:
        x = _PAD_L + (t - t_lo) / span_t * (_WIDTH - _PAD_L - _PAD_R)
        svg.append(
            f'<line x1="{x:.1f}" y1="{_PAD_T}" x2="{x:.1f}" '
            f'y2="{_HEIGHT - _PAD_B}" stroke="#b91c1c" stroke-width="1" '
            f'stroke-dasharray="3,2" />'
        )
    for i, (name, points) in enumerate(sorted(series.items())):
        svg.append(
            _polyline(points, t_lo, t_hi, v_hi, _PALETTE[i % len(_PALETTE)])
        )
    svg.append("</svg>")
    parts.append("".join(svg))
    return "\n".join(parts)


def _mid(window: Mapping[str, Any]) -> float:
    return (float(window["t0"]) + float(window["t1"])) / 2.0


def _activity_bands(
    windows: Sequence[Mapping[str, Any]]
) -> List[Tuple[str, float, float]]:
    """Coalesce per-window activity flags into contiguous bands."""
    open_bands: Dict[str, Tuple[float, float]] = {}
    bands: List[Tuple[str, float, float]] = []
    for window in windows:
        t0, t1 = float(window["t0"]), float(window["t1"])
        names = set(window.get("activity", {}))
        for name in list(sorted(open_bands)):
            if name not in names:
                lo, hi = open_bands.pop(name)
                bands.append((name, lo, hi))
        for name in names:
            if name in open_bands:
                lo, _ = open_bands[name]
                open_bands[name] = (lo, t1)
            else:
                open_bands[name] = (t0, t1)
    for name, (lo, hi) in sorted(open_bands.items()):
        bands.append((name, lo, hi))
    bands.sort(key=lambda b: (b[1], b[0]))
    return bands


def build_dashboard_html(report: Mapping[str, Any]) -> str:
    """Render a run report (must carry a ``timeline`` section) as a
    self-contained HTML dashboard."""
    timeline = report.get("timeline")
    if not timeline or not timeline.get("windows"):
        raise ConfigError(
            "report has no timeline windows -- re-run with --timeline"
        )
    windows: List[Mapping[str, Any]] = list(timeline["windows"])
    t_lo = float(windows[0]["t0"])
    t_hi = float(windows[-1]["t1"])
    width = float(timeline.get("window") or 1.0)
    bands = _activity_bands(windows)

    slo = report.get("slo")
    violation_times: List[float] = []
    if slo:
        for obj in slo.get("objectives", []):
            for v in obj.get("violations", []):
                violation_times.append((float(v["t0"]) + float(v["t1"])) / 2.0)
    violation_times = sorted(set(violation_times))

    charts: List[str] = []

    charts.append(_chart(
        "Throughput (requests/s)",
        {
            "total": [(_mid(w), w.get("requests", 0) / width) for w in windows],
            "reads": [(_mid(w), w.get("reads", 0) / width) for w in windows],
            "writes": [(_mid(w), w.get("writes", 0) / width) for w in windows],
        },
        t_lo, t_hi, bands, violation_times,
    ))
    charts.append(_chart(
        "Latency p95 (s)",
        {
            "read p95": [
                (_mid(w), w.get("read_latency", {}).get("p95", 0.0))
                for w in windows
            ],
            "write p95": [
                (_mid(w), w.get("write_latency", {}).get("p95", 0.0))
                for w in windows
            ],
        },
        t_lo, t_hi, bands, violation_times, unit="s",
    ))
    charts.append(_chart(
        "Dedup ratio & read-cache hit rate",
        {
            "dedup ratio": [(_mid(w), w.get("dedup_ratio", 0.0)) for w in windows],
            "cache hit rate": [
                (_mid(w), w.get("read_cache_hit_rate", 0.0)) for w in windows
            ],
        },
        t_lo, t_hi, bands,
    ))

    gauge_names = sorted({g for w in windows for g in w.get("gauges", {})})
    if gauge_names:
        charts.append(_chart(
            "Gauges (per-window max)",
            {
                name: [
                    (_mid(w), w.get("gauges", {}).get(name, 0.0)) for w in windows
                ]
                for name in gauge_names
            },
            t_lo, t_hi, bands,
        ))

    volume_ids = sorted({int(v) for w in windows for v in w.get("volumes", {})})
    if volume_ids:
        charts.append(_chart(
            "Per-volume p95 latency (s)",
            {
                f"volume {vid}": [
                    (
                        _mid(w),
                        max(
                            w.get("volumes", {}).get(str(vid), {})
                            .get("read_latency", {}).get("p95", 0.0),
                            w.get("volumes", {}).get(str(vid), {})
                            .get("write_latency", {}).get("p95", 0.0),
                        ),
                    )
                    for w in windows
                ]
                for vid in volume_ids
            },
            t_lo, t_hi, bands, violation_times, unit="s",
        ))

    node_ids = sorted({int(n) for w in windows for n in w.get("nodes", {})})
    if node_ids:
        charts.append(_chart(
            "Per-node p95 latency (s)",
            {
                f"node {nid}": [
                    (
                        _mid(w),
                        max(
                            w.get("nodes", {}).get(str(nid), {})
                            .get("read_latency", {}).get("p95", 0.0),
                            w.get("nodes", {}).get(str(nid), {})
                            .get("write_latency", {}).get("p95", 0.0),
                        ),
                    )
                    for w in windows
                ]
                for nid in node_ids
            },
            t_lo, t_hi, bands, violation_times, unit="s",
        ))

    links = sorted({l for w in windows for l in w.get("net", {})})
    if links:
        charts.append(_chart(
            "Network link utilisation",
            {
                link: [
                    (
                        _mid(w),
                        w.get("net", {}).get(link, {}).get("utilisation", 0.0),
                    )
                    for w in windows
                ]
                for link in links
            },
            t_lo, t_hi, bands,
        ))

    # SLO table
    slo_html = ""
    if slo:
        rows = []
        for obj in slo.get("objectives", []):
            cls = ' class="violation"' if obj.get("violation_count") else ""
            rows.append(
                "<tr>"
                f'<td class="name">{escape(str(obj.get("name")))}</td>'
                f'<td class="name">{escape(str(obj.get("scope")))}</td>'
                f'<td class="name">{escape(str(obj.get("metric")))}'
                f'/{escape(str(obj.get("op")))}</td>'
                f'<td>{_fmt_val(float(obj.get("threshold", 0)))}</td>'
                f'<td>{_fmt_val(float(obj.get("target", 0)))}</td>'
                f'<td>{obj.get("windows_evaluated", 0)}</td>'
                f'<td{cls}>{obj.get("violation_count", 0)}</td>'
                f'<td>{_fmt_val(float(obj.get("worst_burn", 0)))}</td>'
                "</tr>"
            )
        annotated = []
        for obj in slo.get("objectives", []):
            for v in obj.get("violations", []):
                if v.get("annotations"):
                    annotated.append(
                        f'<li class="violation">{escape(str(obj["name"]))} @ '
                        f'[{_fmt_val(float(v["t0"]))}s, {_fmt_val(float(v["t1"]))}s): '
                        f'concurrent {escape(", ".join(v["annotations"]))}</li>'
                    )
        slo_html = (
            "<h2>SLO objectives</h2>"
            "<table><tr><th>name</th><th>scope</th><th>metric</th>"
            "<th>threshold</th><th>target</th><th>windows</th>"
            "<th>violations</th><th>worst burn</th></tr>"
            + "".join(rows)
            + "</table>"
            + (
                "<h2>Violations with concurrent activity</h2><ul>"
                + "".join(annotated) + "</ul>"
                if annotated else ""
            )
        )

    trace = escape(str(report.get("trace", "?")))
    scheme = escape(str(report.get("scheme", "?")))
    meta = (
        f'<p class="meta">trace <b>{trace}</b> · scheme <b>{scheme}</b> · '
        f'{len(windows)} windows × {_fmt_val(width)}s · '
        f"t ∈ [{_fmt_val(t_lo)}s, {_fmt_val(t_hi)}s]</p>"
    )

    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>repro dash · {trace} · {scheme}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>POD replay timeline</h1>{meta}"
        + "\n".join(charts)
        + slo_html
        + "</body></html>\n"
    )
