"""Per-tenant SLO objectives and windowed burn-rate evaluation.

An :class:`SloPolicy` is a JSON-declared set of objectives — e.g.
"volume 1's write latency stays under 5 ms for 99% of requests" or
"node 0 serves at least 50 req/s" — evaluated over the windowed
timeline (:mod:`repro.obs.timeline`), never over whole-run aggregates:
a whole-run p99 can hide an SLO-busting fail-slow window entirely.

Latency objectives use exact per-window good/bad counts (the sampler
counts threshold crossings inline when a policy is armed, so no
histogram interpolation error leaks into compliance numbers) and a
burn rate in the SRE sense: ``error_rate / (1 - target)``, i.e. how
many times faster than budget the error budget is burning.  Windows
whose burn rate exceeds ``burn_threshold`` are violations, and each
violation is annotated with the background activity concurrently
flagged in that window (fail-slow, rebuild, rebalance, migration) so
"who hurt this tenant" is answerable from the report alone.

Mirrors :class:`repro.faults.plan.FaultPlan`'s shape deliberately:
frozen, ``is_empty``, ``from_dict``/``as_dict``/``load``, and the
armed-but-empty-policy bit-identity contract is pinned by a test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ConfigError

#: Bumped on any breaking change to the evaluation output layout.
SLO_SCHEMA_VERSION = 1

_METRICS = ("latency", "throughput")
_OPS = ("read", "write", "all")


@dataclass(frozen=True)
class SloObjective:
    """One objective.

    ``scope`` selects whose traffic counts: ``"run"`` (everything),
    ``"volume:<id>"`` (one tenant) or ``"node:<id>"`` (one cluster
    node).  ``metric`` is ``"latency"`` (``threshold`` in seconds,
    ``target`` the good-fraction objective, e.g. 0.99) or
    ``"throughput"`` (``threshold`` in requests/second; a window is
    bad when its rate drops below ``threshold * target``).
    """

    name: str
    metric: str
    threshold: float
    scope: str = "run"
    op: str = "all"
    target: float = 0.99
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("SLO objective needs a name")
        if self.metric not in _METRICS:
            raise ConfigError(
                f"SLO {self.name!r}: metric must be one of {_METRICS}, "
                f"got {self.metric!r}"
            )
        if self.op not in _OPS:
            raise ConfigError(
                f"SLO {self.name!r}: op must be one of {_OPS}, got {self.op!r}"
            )
        if self.threshold <= 0:
            raise ConfigError(f"SLO {self.name!r}: threshold must be positive")
        if not (0.0 < self.target < 1.0):
            raise ConfigError(
                f"SLO {self.name!r}: target must be in (0, 1), got {self.target}"
            )
        if self.burn_threshold <= 0:
            raise ConfigError(f"SLO {self.name!r}: burn_threshold must be positive")
        self.scope_kind, self.scope_id  # validates the scope string

    @property
    def scope_kind(self) -> str:
        """``"run"``, ``"volume"`` or ``"node"``."""
        if self.scope == "run":
            return "run"
        kind, sep, _ = self.scope.partition(":")
        if sep and kind in ("volume", "node"):
            return kind
        raise ConfigError(
            f"SLO {self.name!r}: scope must be 'run', 'volume:<id>' or "
            f"'node:<id>', got {self.scope!r}"
        )

    @property
    def scope_id(self) -> int:
        """The volume/node id, or -1 for run scope."""
        if self.scope == "run":
            return -1
        _, _, raw = self.scope.partition(":")
        try:
            return int(raw)
        except ValueError:
            raise ConfigError(
                f"SLO {self.name!r}: scope id {raw!r} is not an integer"
            ) from None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "scope": self.scope,
            "op": self.op,
            "target": self.target,
            "burn_threshold": self.burn_threshold,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SloObjective":
        known = {f for f in cls.__dataclass_fields__}
        extra = set(raw) - known
        if extra:
            raise ConfigError(f"SLO objective: unknown keys {sorted(extra)}")
        if "name" not in raw or "metric" not in raw or "threshold" not in raw:
            raise ConfigError(
                "SLO objective needs at least name, metric and threshold"
            )
        return cls(**dict(raw))


@dataclass(frozen=True)
class SloPolicy:
    """A (possibly empty) set of objectives.  Frozen and hashable so
    it can ride in :class:`~repro.sim.replay.ReplayConfig`."""

    objectives: Tuple[SloObjective, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate SLO objective names in {names}")

    def is_empty(self) -> bool:
        return not self.objectives

    def latency_objectives(self) -> Tuple[SloObjective, ...]:
        return tuple(o for o in self.objectives if o.metric == "latency")

    def as_dict(self) -> Dict[str, Any]:
        return {"objectives": [o.as_dict() for o in self.objectives]}

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SloPolicy":
        extra = set(raw) - {"objectives"}
        if extra:
            raise ConfigError(f"SLO policy: unknown keys {sorted(extra)}")
        objectives = raw.get("objectives", [])
        if not isinstance(objectives, (list, tuple)):
            raise ConfigError("SLO policy: 'objectives' must be a list")
        return cls(tuple(SloObjective.from_dict(o) for o in objectives))

    @classmethod
    def load(cls, path: str) -> "SloPolicy":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                try:
                    raw = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ConfigError(
                        f"SLO policy {path}: invalid JSON ({exc})"
                    ) from exc
        except OSError as exc:
            raise ConfigError(f"cannot read SLO policy {path}: {exc}") from exc
        if not isinstance(raw, dict):
            raise ConfigError(f"SLO policy {path}: top level must be an object")
        return cls.from_dict(raw)


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------


def _scope_doc(window: Mapping[str, Any], obj: SloObjective) -> Mapping[str, Any]:
    """The window sub-document the objective's scope refers to
    (empty dict when the scope saw no traffic in this window)."""
    kind = obj.scope_kind
    if kind == "run":
        return window
    key = "volumes" if kind == "volume" else "nodes"
    sub = window.get(key, {})
    return sub.get(str(obj.scope_id), {})


def _scope_requests(doc: Mapping[str, Any], op: str) -> int:
    if op == "read":
        return int(doc.get("reads", 0))
    if op == "write":
        return int(doc.get("writes", 0))
    return int(doc.get("requests", 0))


def evaluate_slo(policy: SloPolicy, timeline: Mapping[str, Any]) -> Dict[str, Any]:
    """Evaluate ``policy`` over a timeline document; returns the run
    report's ``slo`` section.

    Latency objectives consume the exact per-window ``slo_counts``
    the sampler recorded for them (index-aligned with the policy's
    latency-objective order).  Throughput objectives compare each
    window's request rate against ``threshold * target`` across the
    scope's active range (first to last window with any traffic for
    that scope), so a scope that finishes early isn't charged for the
    rest of the run.
    """
    windows: List[Mapping[str, Any]] = list(timeline.get("windows", []))
    width = float(timeline.get("window") or 1.0)
    latency_order = {o.name: i for i, o in enumerate(policy.latency_objectives())}
    out_objectives: List[Dict[str, Any]] = []
    violations_total = 0

    for obj in policy.objectives:
        violations: List[Dict[str, Any]] = []
        good_total = 0
        bad_total = 0
        evaluated = 0
        worst_burn = 0.0

        if obj.metric == "latency":
            li = latency_order[obj.name]
            for window in windows:
                counts = window.get("slo_counts")
                if not counts or li >= len(counts):
                    continue
                good, bad = counts[li]
                total = good + bad
                if total == 0:
                    continue
                evaluated += 1
                good_total += good
                bad_total += bad
                error_rate = bad / total
                burn = error_rate / (1.0 - obj.target)
                if burn > worst_burn:
                    worst_burn = burn
                if burn > obj.burn_threshold:
                    violations.append(
                        {
                            "index": window["index"],
                            "t0": window["t0"],
                            "t1": window["t1"],
                            "value": error_rate,
                            "burn_rate": burn,
                            "annotations": sorted(window.get("activity", {})),
                        }
                    )
        else:  # throughput
            active = [
                w for w in windows
                if _scope_requests(_scope_doc(w, obj), obj.op) > 0
            ]
            if active:
                lo = active[0]["index"]
                hi = active[-1]["index"]
                by_index = {w["index"]: w for w in windows}
                floor = obj.threshold * obj.target
                for idx in range(lo, hi + 1):
                    window = by_index.get(idx)
                    doc = _scope_doc(window, obj) if window is not None else {}
                    rate = _scope_requests(doc, obj.op) / width
                    evaluated += 1
                    if rate >= floor:
                        good_total += 1
                        continue
                    bad_total += 1
                    burn = (obj.threshold - rate) / obj.threshold
                    if burn > worst_burn:
                        worst_burn = burn
                    violations.append(
                        {
                            "index": idx,
                            "t0": (window["t0"] if window is not None
                                   else timeline.get("origin", 0.0) + idx * width),
                            "t1": (window["t1"] if window is not None
                                   else timeline.get("origin", 0.0) + (idx + 1) * width),
                            "value": rate,
                            "burn_rate": burn,
                            "annotations": sorted(
                                (window or {}).get("activity", {})
                            ),
                        }
                    )

        violations_total += len(violations)
        out_objectives.append(
            {
                **obj.as_dict(),
                "windows_evaluated": evaluated,
                "good_total": good_total,
                "bad_total": bad_total,
                "worst_burn": worst_burn,
                "violation_count": len(violations),
                "violations": violations,
            }
        )

    return {
        "schema_version": SLO_SCHEMA_VERSION,
        "objectives": out_objectives,
        "violations_total": violations_total,
        "windows_evaluated": len(windows),
    }
