"""Deterministic windowed time-series sampling over simulated time.

Whole-run aggregates (histograms, counters) answer *how fast* a run
was; they cannot answer *when* it was slow.  A fail-slow disk window,
a paced rebuild or a mid-run shard migration is invisible between
t=0 and t=end.  The :class:`TimelineSampler` fixes that: it partitions
the replay into fixed-width windows of **simulated** time (never wall
clock -- determinism is the whole point) and accumulates, per window:

* throughput (requests and blocks, read/write split),
* read/write latency percentiles via per-window histogram resets,
* dedup ratio and read-cache hit rate,
* NVRAM footprint and disk-queue-lag gauges (per-window maxima),
* rebuild / migration progress and fault activity annotations,
* per-directed-link network bytes and utilisation,

each broken down per volume and per cluster node.  Windows are stored
sparsely (a dict keyed by window index) because the analytic replay
path reports request completion times out of order -- a window is
never "closed" until the run ends, so late samples always land in the
right bucket.

The sampler is wired behind ``is not None`` guards exactly like the
fault hook: a replay without a timeline config pays one pointer test
per instrumentation site and allocates nothing
(``bench_obs_overhead.py`` pins the contract).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.obs.registry import Histogram, default_latency_bounds

#: Bumped on any breaking change to the window document layout.
#: Adding a new optional field is not a breaking change.
TIMELINE_SCHEMA_VERSION = 1

#: JSONL line tags (header first, then one line per window).
TIMELINE_HEADER_ETYPE = "timeline.header"
TIMELINE_WINDOW_ETYPE = "timeline.window"


@dataclass(frozen=True)
class TimelineConfig:
    """Sampler parameters (frozen and hashable: it rides inside
    :class:`~repro.sim.replay.ReplayConfig`, which memo keys hash).

    Attributes
    ----------
    window:
        Window width in simulated seconds (the paper's traces span
        hours, so 1 s is a useful default resolution).
    origin:
        Simulated time of window 0's left edge.
    max_windows:
        Hard cap on distinct windows; exceeding it is a configuration
        error (window too small for the trace), never silent dropping.
    latency_per_decade:
        Bucket resolution of the per-window latency histograms.  The
        default (10/decade) is coarser than the whole-run histograms
        (40/decade): per-window populations are small and the windows
        are many.
    """

    window: float = 1.0
    origin: float = 0.0
    max_windows: int = 200_000
    latency_per_decade: int = 10

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigError(f"timeline window must be positive, got {self.window}")
        if self.origin < 0:
            raise ConfigError(f"timeline origin must be >= 0, got {self.origin}")
        if self.max_windows <= 0:
            raise ConfigError("timeline max_windows must be positive")
        if self.latency_per_decade < 1:
            raise ConfigError("timeline latency_per_decade must be >= 1")


def _hist_summary(hist: Histogram) -> Dict[str, float]:
    """Per-window latency digest (empty histograms report zeros)."""
    return {
        "count": hist.count,
        "mean": hist.mean,
        "p50": hist.p50,
        "p95": hist.p95,
        "p99": hist.p99,
        "max": hist.max,
    }


class _Scope:
    """One window's accumulator for one scope (run / volume / node)."""

    __slots__ = (
        "reads", "writes", "read_blocks", "write_blocks",
        "eliminated_requests", "deduped_blocks", "cache_hit_blocks",
        "cross_volume_blocks", "net_delay_total", "remote_lookups",
        "read_hist", "write_hist",
    )

    def __init__(self, bounds: List[float]) -> None:
        self.reads = 0
        self.writes = 0
        self.read_blocks = 0
        self.write_blocks = 0
        self.eliminated_requests = 0
        self.deduped_blocks = 0
        self.cache_hit_blocks = 0
        self.cross_volume_blocks = 0
        self.net_delay_total = 0.0
        self.remote_lookups = 0
        #: Fresh per-window histograms -- this is the "histogram reset"
        #: that makes per-window percentiles honest (not cumulative).
        self.read_hist = Histogram("timeline.read", bounds)
        self.write_hist = Histogram("timeline.write", bounds)

    def note(
        self,
        is_read: bool,
        nblocks: int,
        response: float,
        eliminated: bool,
        deduped_blocks: int,
        cache_hit_blocks: int,
        cross_volume_blocks: int,
        net_delay: float,
        remote_lookups: int,
    ) -> None:
        if is_read:
            self.reads += 1
            self.read_blocks += nblocks
            self.read_hist.observe(response)
        else:
            self.writes += 1
            self.write_blocks += nblocks
            self.write_hist.observe(response)
        if eliminated:
            self.eliminated_requests += 1
        self.deduped_blocks += deduped_blocks
        self.cache_hit_blocks += cache_hit_blocks
        self.cross_volume_blocks += cross_volume_blocks
        self.net_delay_total += net_delay
        self.remote_lookups += remote_lookups

    def as_dict(self) -> Dict[str, Any]:
        """Stable-shape window scope document."""
        return {
            "requests": self.reads + self.writes,
            "reads": self.reads,
            "writes": self.writes,
            "read_blocks": self.read_blocks,
            "write_blocks": self.write_blocks,
            "eliminated_requests": self.eliminated_requests,
            "deduped_blocks": self.deduped_blocks,
            "cache_hit_blocks": self.cache_hit_blocks,
            "cross_volume_blocks": self.cross_volume_blocks,
            "net_delay_total": self.net_delay_total,
            "remote_lookups": self.remote_lookups,
            "dedup_ratio": (
                self.deduped_blocks / self.write_blocks if self.write_blocks else 0.0
            ),
            "read_cache_hit_rate": (
                self.cache_hit_blocks / self.read_blocks if self.read_blocks else 0.0
            ),
            "read_latency": _hist_summary(self.read_hist),
            "write_latency": _hist_summary(self.write_hist),
        }


class _Window:
    """One sampling window: run scope + per-volume/per-node scopes,
    gauges, per-link network accounting and activity annotations."""

    __slots__ = ("run", "volumes", "nodes", "gauges", "node_gauges",
                 "links", "activity", "slo_counts")

    def __init__(self, bounds: List[float], n_slo: int) -> None:
        self.run = _Scope(bounds)
        self.volumes: Dict[int, _Scope] = {}
        self.nodes: Dict[int, _Scope] = {}
        #: gauge name -> per-window maximum.
        self.gauges: Dict[str, float] = {}
        self.node_gauges: Dict[int, Dict[str, float]] = {}
        #: (src, dst) -> [bytes, busy_seconds, rpcs].
        self.links: Dict[Tuple[int, int], List[float]] = {}
        #: activity name -> per-window maximum (progress fractions or
        #: 1.0 presence flags).
        self.activity: Dict[str, float] = {}
        #: Per latency-objective [good, bad] counts (SLO engine input);
        #: empty when no policy is armed.
        self.slo_counts: List[List[int]] = [[0, 0] for _ in range(n_slo)]


class TimelineSampler:
    """Sparse windowed accumulator driven by simulated timestamps.

    ``policy`` (a :class:`repro.obs.slo.SloPolicy`) arms exact
    per-window good/bad counting for its latency objectives -- the SLO
    engine needs exact threshold counts, not interpolated percentiles.
    """

    def __init__(self, config: TimelineConfig, policy: Optional[Any] = None) -> None:
        self.config = config
        self._width = config.window
        self._origin = config.origin
        self._bounds = default_latency_bounds(
            per_decade=config.latency_per_decade
        )
        self._windows: Dict[int, _Window] = {}
        self._intervals: List[Tuple[str, float, float]] = []
        self.t_end = 0.0
        # Compile the policy's latency objectives into flat matchers:
        # (scope_kind, scope_id, op, threshold) tuples checked inline.
        self._latency_rules: List[Tuple[str, int, str, float]] = []
        self.policy = policy
        if policy is not None:
            for obj in policy.objectives:
                if obj.metric == "latency":
                    self._latency_rules.append(
                        (obj.scope_kind, obj.scope_id, obj.op, obj.threshold)
                    )

    # ------------------------------------------------------------------
    # window addressing
    # ------------------------------------------------------------------

    def window_index(self, t: float) -> int:
        """Window index containing simulated time ``t``."""
        if t < self._origin:
            return 0
        return int((t - self._origin) / self._width)

    def _window(self, t: float) -> _Window:
        idx = self.window_index(t)
        win = self._windows.get(idx)
        if win is None:
            if len(self._windows) >= self.config.max_windows:
                raise ConfigError(
                    f"timeline exceeded {self.config.max_windows} windows; "
                    f"use a wider --timeline window than {self._width}s"
                )
            win = _Window(self._bounds, len(self._latency_rules))
            self._windows[idx] = win
        if t > self.t_end:
            self.t_end = t
        return win

    # ------------------------------------------------------------------
    # sample intake (all observation-only; callers guard `is not None`)
    # ------------------------------------------------------------------

    def note_request(
        self,
        t: float,
        *,
        is_read: bool,
        nblocks: int,
        response: float,
        volume_id: int = -1,
        eliminated: bool = False,
        deduped_blocks: int = 0,
        cache_hit_blocks: int = 0,
        cross_volume_blocks: int = 0,
    ) -> None:
        """One measured request completion, keyed by completion time.

        Mirrors :meth:`repro.metrics.collector.MetricsCollector.record`
        argument-for-argument so window sums reconcile exactly with the
        whole-run aggregates (a test pins this).
        """
        win = self._window(t)
        win.run.note(
            is_read, nblocks, response, eliminated, deduped_blocks,
            cache_hit_blocks, cross_volume_blocks, 0.0, 0,
        )
        if volume_id >= 0:
            scope = win.volumes.get(volume_id)
            if scope is None:
                scope = _Scope(self._bounds)
                win.volumes[volume_id] = scope
            scope.note(
                is_read, nblocks, response, eliminated, deduped_blocks,
                cache_hit_blocks, cross_volume_blocks, 0.0, 0,
            )
        for i, (kind, sid, op, threshold) in enumerate(self._latency_rules):
            if kind == "run" or (kind == "volume" and sid == volume_id):
                if op == "all" or (op == "read") == is_read:
                    win.slo_counts[i][1 if response > threshold else 0] += 1

    def note_node_request(
        self,
        t: float,
        *,
        node_id: int,
        is_read: bool,
        nblocks: int,
        response: float,
        eliminated: bool = False,
        deduped_blocks: int = 0,
        cache_hit_blocks: int = 0,
        net_delay: float = 0.0,
        remote_lookups: int = 0,
    ) -> None:
        """One measured completion against its owner node (cluster
        replays call this *in addition to* :meth:`note_request`)."""
        win = self._window(t)
        scope = win.nodes.get(node_id)
        if scope is None:
            scope = _Scope(self._bounds)
            win.nodes[node_id] = scope
        scope.note(
            is_read, nblocks, response, eliminated, deduped_blocks,
            cache_hit_blocks, 0, net_delay, remote_lookups,
        )
        for i, (kind, sid, op, threshold) in enumerate(self._latency_rules):
            if kind == "node" and sid == node_id:
                if op == "all" or (op == "read") == is_read:
                    win.slo_counts[i][1 if response > threshold else 0] += 1

    def note_gauges(
        self, t: float, node_id: Optional[int] = None, **gauges: float
    ) -> None:
        """Record gauge samples (per-window maxima): NVRAM bytes,
        disk queue lag, iCache partition sizes, ..."""
        win = self._window(t)
        if node_id is None:
            store = win.gauges
        else:
            store = win.node_gauges.setdefault(node_id, {})
        for name, value in gauges.items():
            if value is None:
                continue
            prev = store.get(name)
            if prev is None or value > prev:
                store[name] = value

    def note_rpc(
        self, t: float, src: int, dst: int, nbytes: int, busy: float
    ) -> None:
        """One network RPC on the directed link ``src -> dst``
        (``busy`` is its link-occupancy/service time in seconds)."""
        win = self._window(t)
        link = win.links.get((src, dst))
        if link is None:
            win.links[(src, dst)] = [float(nbytes), busy, 1.0]
        else:
            link[0] += nbytes
            link[1] += busy
            link[2] += 1.0

    def note_activity(self, t: float, name: str, value: float = 1.0) -> None:
        """Flag background activity in ``t``'s window (rebuild or
        migration progress, recovery stalls, ...)."""
        win = self._window(t)
        prev = win.activity.get(name)
        if prev is None or value > prev:
            win.activity[name] = value

    def annotate_interval(self, name: str, start: float, end: float) -> None:
        """Annotate every window overlapping ``[start, end]`` with
        ``name`` (fail-slow windows, recovery stalls: known intervals
        rather than tick events).  Applied at rendering time."""
        if end < start:
            raise ConfigError(f"annotation {name!r} ends before it starts")
        self._intervals.append((name, start, end))

    def finish(self, t_end: float) -> None:
        """Mark the end of simulated time (idempotent)."""
        if t_end > self.t_end:
            self.t_end = t_end

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def _apply_intervals(self) -> None:
        if not self._windows and not self._intervals:
            return
        last_idx = max(self._windows) if self._windows else 0
        last_idx = max(last_idx, self.window_index(self.t_end))
        for name, start, end in self._intervals:
            lo = self.window_index(start)
            hi = min(self.window_index(end), last_idx)
            for idx in range(lo, hi + 1):
                win = self._windows.get(idx)
                if win is None:
                    if len(self._windows) >= self.config.max_windows:
                        break
                    win = _Window(self._bounds, len(self._latency_rules))
                    self._windows[idx] = win
                if name not in win.activity:
                    win.activity[name] = 1.0

    def window_docs(self) -> List[Dict[str, Any]]:
        """All windows as JSON-ready dicts, index-ordered."""
        self._apply_intervals()
        docs: List[Dict[str, Any]] = []
        for idx in sorted(self._windows):
            win = self._windows[idx]
            doc: Dict[str, Any] = {
                "index": idx,
                "t0": self._origin + idx * self._width,
                "t1": self._origin + (idx + 1) * self._width,
            }
            doc.update(win.run.as_dict())
            doc["volumes"] = {
                str(vid): win.volumes[vid].as_dict()
                for vid in sorted(win.volumes)
            }
            doc["nodes"] = {
                str(nid): win.nodes[nid].as_dict()
                for nid in sorted(win.nodes)
            }
            doc["gauges"] = {k: win.gauges[k] for k in sorted(win.gauges)}
            doc["node_gauges"] = {
                str(nid): {
                    k: win.node_gauges[nid][k]
                    for k in sorted(win.node_gauges[nid])
                }
                for nid in sorted(win.node_gauges)
            }
            doc["net"] = {
                f"{src}->{dst}": {
                    "bytes": int(win.links[(src, dst)][0]),
                    "busy": win.links[(src, dst)][1],
                    "rpcs": int(win.links[(src, dst)][2]),
                    "utilisation": win.links[(src, dst)][1] / self._width,
                }
                for src, dst in sorted(win.links)
            }
            doc["activity"] = {k: win.activity[k] for k in sorted(win.activity)}
            if self._latency_rules:
                doc["slo_counts"] = [list(c) for c in win.slo_counts]
            docs.append(doc)
        return docs

    def as_dict(self) -> Dict[str, Any]:
        """The full timeline document (the run report's ``timeline``
        section; also what the JSONL serialisation carries)."""
        docs = self.window_docs()
        return {
            "schema_version": TIMELINE_SCHEMA_VERSION,
            "window": self._width,
            "origin": self._origin,
            "t_end": self.t_end,
            "windows_total": len(docs),
            "windows": docs,
        }

    # ------------------------------------------------------------------
    # JSONL serialisation
    # ------------------------------------------------------------------

    def write_jsonl(self, path_or_file: Union[str, IO[str]]) -> int:
        """Write header + one line per window; returns lines written."""
        doc = self.as_dict()
        return write_timeline_jsonl(doc, path_or_file)


def write_timeline_jsonl(
    doc: Dict[str, Any], path_or_file: Union[str, IO[str]]
) -> int:
    """Serialise a timeline document as JSON Lines (header first)."""
    if hasattr(path_or_file, "write"):
        return _write_timeline(doc, path_or_file)  # type: ignore[arg-type]
    with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
        return _write_timeline(doc, fh)


def _write_timeline(doc: Dict[str, Any], fh: IO[str]) -> int:
    windows = doc.get("windows", [])
    header = {
        "etype": TIMELINE_HEADER_ETYPE,
        "schema_version": doc.get("schema_version", TIMELINE_SCHEMA_VERSION),
        "window": doc.get("window"),
        "origin": doc.get("origin", 0.0),
        "t_end": doc.get("t_end", 0.0),
        "windows": len(windows),
    }
    fh.write(json.dumps(header, sort_keys=True) + "\n")
    lines = 1
    for window in windows:
        fh.write(
            json.dumps({"etype": TIMELINE_WINDOW_ETYPE, **window}, sort_keys=True)
            + "\n"
        )
        lines += 1
    return lines


def read_timeline_jsonl(lines: Iterable[str]) -> Dict[str, Any]:
    """Parse a timeline JSONL stream back into one document."""
    doc: Dict[str, Any] = {
        "schema_version": TIMELINE_SCHEMA_VERSION,
        "window": None,
        "origin": 0.0,
        "t_end": 0.0,
        "windows_total": 0,
        "windows": [],
    }
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"not a timeline JSONL stream: {exc}") from exc
        etype = obj.get("etype")
        if etype == TIMELINE_HEADER_ETYPE:
            if obj.get("schema_version", 0) > TIMELINE_SCHEMA_VERSION:
                raise ConfigError(
                    f"timeline schema {obj.get('schema_version')} is newer "
                    f"than this build ({TIMELINE_SCHEMA_VERSION})"
                )
            doc["schema_version"] = obj.get("schema_version", TIMELINE_SCHEMA_VERSION)
            doc["window"] = obj.get("window")
            doc["origin"] = obj.get("origin", 0.0)
            doc["t_end"] = obj.get("t_end", 0.0)
        elif etype == TIMELINE_WINDOW_ETYPE:
            window = dict(obj)
            window.pop("etype", None)
            doc["windows"].append(window)
        else:
            raise ConfigError(f"unexpected timeline line etype {etype!r}")
    doc["windows_total"] = len(doc["windows"])
    return doc


def load_timeline(path: str) -> Dict[str, Any]:
    """Load a timeline document from a run report (JSON, ``timeline``
    section), a bare timeline JSON document, or a timeline JSONL file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ConfigError(f"cannot read timeline {path}: {exc}") from exc
    stripped = text.strip()
    if not stripped:
        raise ConfigError(f"{path} is empty")
    try:
        obj = json.loads(stripped)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict):
        if "timeline" in obj and isinstance(obj["timeline"], dict):
            return obj["timeline"]
        if "windows" in obj:
            return obj
        raise ConfigError(
            f"{path} is JSON but carries no timeline (no 'timeline' or "
            f"'windows' key) -- run with --timeline to record one"
        )
    return read_timeline_jsonl(stripped.splitlines())
