"""repro.obs -- the zero-dependency observability subsystem.

Three cooperating pieces, threaded through every layer of the replay
pipeline:

* :mod:`repro.obs.trace` -- :class:`TraceRecorder`, a level-guarded,
  ring-buffer-bounded recorder of typed simulation events
  (:mod:`repro.obs.events`) with JSONL serialisation;
* :mod:`repro.obs.registry` -- :class:`MetricsRegistry` of named
  counters, gauges and fixed-bucket latency histograms
  (p50/p95/p99/p999 without storing samples);
* :mod:`repro.obs.report` -- the versioned machine-readable run
  report written by ``repro run --report-out`` and consumed by
  ``repro stats``.

Everything is guarded so that a replay with tracing *off* pays one
integer compare per instrumentation site and allocates nothing.
"""

from __future__ import annotations

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_SCHEMA_VERSION,
    EventType,
    TraceEvent,
    TraceLevel,
)
from repro.obs.timeline import (
    TIMELINE_SCHEMA_VERSION,
    TimelineConfig,
    TimelineSampler,
    load_timeline,
    write_timeline_jsonl,
)
from repro.obs.spans import (
    SPAN_SCHEMA_VERSION,
    Span,
    SpanTracer,
)
from repro.obs.slo import (
    SLO_SCHEMA_VERSION,
    SloObjective,
    SloPolicy,
    evaluate_slo,
)
from repro.obs.openmetrics import to_openmetrics
from repro.obs.dash import build_dashboard_html
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_bounds,
)
from repro.obs.trace import (
    DEFAULT_MAX_EVENTS,
    NULL_RECORDER,
    TraceRecorder,
    read_jsonl,
)
from repro.obs.report import (
    REPORT_KIND_COMPARE,
    REPORT_KIND_RUN,
    REPORT_VERSION,
    build_compare_report,
    build_run_report,
    diff_reports,
    load_report,
    render_report,
    render_run_report,
    write_report,
)

__all__ = [
    "EVENT_FIELDS",
    "EVENT_SCHEMA_VERSION",
    "EventType",
    "TraceEvent",
    "TraceLevel",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds",
    "DEFAULT_MAX_EVENTS",
    "NULL_RECORDER",
    "TraceRecorder",
    "read_jsonl",
    "REPORT_KIND_COMPARE",
    "REPORT_KIND_RUN",
    "REPORT_VERSION",
    "build_compare_report",
    "build_run_report",
    "diff_reports",
    "load_report",
    "render_report",
    "render_run_report",
    "write_report",
    "TIMELINE_SCHEMA_VERSION",
    "TimelineConfig",
    "TimelineSampler",
    "load_timeline",
    "write_timeline_jsonl",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanTracer",
    "SLO_SCHEMA_VERSION",
    "SloObjective",
    "SloPolicy",
    "evaluate_slo",
    "to_openmetrics",
    "build_dashboard_html",
]
