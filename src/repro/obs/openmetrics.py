"""OpenMetrics text export of a timeline document.

Renders the windowed series as gauge samples with explicit
timestamps (the window's right edge, in simulated seconds), one
family per series with ``scope``/``op``/``link`` labels — the
standard exposition format, so the export drops into promtool,
Grafana or any OpenMetrics-aware tooling without adapters.  Pure
text generation: deterministic, no wall clock, no dependencies.
"""

from __future__ import annotations

from typing import Any, List, Mapping

_LATENCY_SERIES = (("p50", "p50"), ("p95", "p95"), ("p99", "p99"), ("mean", "mean"))


def _fmt(value: float) -> str:
    """Shortest faithful decimal (repr of float), ints unmarked."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(
    out: List[str], name: str, labels: Mapping[str, str], value: float, ts: float
) -> None:
    if labels:
        body = ",".join(sorted(f'{k}="{v}"' for k, v in labels.items()))
        out.append(f"{name}{{{body}}} {_fmt(value)} {_fmt(ts)}")
    else:
        out.append(f"{name} {_fmt(value)} {_fmt(ts)}")


def _scope_samples(
    out: List[str],
    prefix: str,
    scope_doc: Mapping[str, Any],
    labels: Mapping[str, str],
    ts: float,
    width: float,
) -> None:
    _sample(out, f"{prefix}_requests_per_second", labels,
            scope_doc.get("requests", 0) / width, ts)
    _sample(out, f"{prefix}_dedup_ratio", labels,
            scope_doc.get("dedup_ratio", 0.0), ts)
    _sample(out, f"{prefix}_read_cache_hit_rate", labels,
            scope_doc.get("read_cache_hit_rate", 0.0), ts)
    for op in ("read", "write"):
        lat = scope_doc.get(f"{op}_latency", {})
        if not lat.get("count"):
            continue
        for key, suffix in _LATENCY_SERIES:
            _sample(
                out, f"{prefix}_{op}_latency_{suffix}_seconds",
                labels, lat.get(key, 0.0), ts,
            )


def to_openmetrics(timeline: Mapping[str, Any], prefix: str = "pod") -> str:
    """Render ``timeline`` (a timeline document) as OpenMetrics text."""
    windows: List[Mapping[str, Any]] = list(timeline.get("windows", []))
    width = float(timeline.get("window") or 1.0)
    lines: List[str] = []
    families = [
        f"{prefix}_requests_per_second",
        f"{prefix}_dedup_ratio",
        f"{prefix}_read_cache_hit_rate",
        f"{prefix}_read_latency_p50_seconds",
        f"{prefix}_read_latency_p95_seconds",
        f"{prefix}_read_latency_p99_seconds",
        f"{prefix}_read_latency_mean_seconds",
        f"{prefix}_write_latency_p50_seconds",
        f"{prefix}_write_latency_p95_seconds",
        f"{prefix}_write_latency_p99_seconds",
        f"{prefix}_write_latency_mean_seconds",
        f"{prefix}_gauge",
        f"{prefix}_net_link_utilisation",
        f"{prefix}_net_link_bytes",
        f"{prefix}_activity",
    ]
    for family in families:
        lines.append(f"# TYPE {family} gauge")

    for window in windows:
        ts = float(window.get("t1", 0.0))
        _scope_samples(lines, prefix, window, {"scope": "run"}, ts, width)
        for vid in sorted(window.get("volumes", {}), key=int):
            _scope_samples(
                lines, prefix, window["volumes"][vid],
                {"scope": f"volume:{vid}"}, ts, width,
            )
        for nid in sorted(window.get("nodes", {}), key=int):
            _scope_samples(
                lines, prefix, window["nodes"][nid],
                {"scope": f"node:{nid}"}, ts, width,
            )
        for gname in sorted(window.get("gauges", {})):
            _sample(lines, f"{prefix}_gauge",
                    {"scope": "run", "name": gname},
                    window["gauges"][gname], ts)
        for nid in sorted(window.get("node_gauges", {}), key=int):
            for gname in sorted(window["node_gauges"][nid]):
                _sample(lines, f"{prefix}_gauge",
                        {"scope": f"node:{nid}", "name": gname},
                        window["node_gauges"][nid][gname], ts)
        for link in sorted(window.get("net", {})):
            doc = window["net"][link]
            _sample(lines, f"{prefix}_net_link_utilisation",
                    {"link": link}, doc.get("utilisation", 0.0), ts)
            _sample(lines, f"{prefix}_net_link_bytes",
                    {"link": link}, doc.get("bytes", 0), ts)
        for aname in sorted(window.get("activity", {})):
            _sample(lines, f"{prefix}_activity",
                    {"name": aname}, window["activity"][aname], ts)

    lines.append("# EOF")
    return "\n".join(lines) + "\n"
