"""The TraceRecorder: bounded, level-guarded event capture.

Design constraints (the hot replay path runs millions of requests):

* **no-op when disabled** -- every emission site guards with a single
  integer compare (``recorder.level >= TraceLevel.X``); the shared
  :data:`NULL_RECORDER` has level ``OFF`` so un-instrumented runs pay
  one attribute read + compare per site and allocate nothing;
* **bounded memory** -- events land in a ring buffer
  (``collections.deque(maxlen=...)``); overflow drops the *oldest*
  events and counts them in :attr:`TraceRecorder.dropped`;
* **machine readable** -- :meth:`TraceRecorder.write_jsonl` emits one
  JSON object per line with a leading header line carrying the schema
  version, so consumers can validate before parsing.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import ConfigError
from repro.obs.events import EVENT_SCHEMA_VERSION, TraceEvent, TraceLevel

#: Default ring-buffer bound: enough for a full small-scale replay at
#: CHUNK level without unbounded growth on production-size runs.
DEFAULT_MAX_EVENTS = 1_000_000


class TraceRecorder:
    """Collects :class:`TraceEvent` objects up to a verbosity level.

    Parameters
    ----------
    level:
        Maximum :class:`TraceLevel` to record (``OFF`` records nothing).
    max_events:
        Ring-buffer bound; ``None`` means unbounded (tests only).
    """

    __slots__ = ("level", "_events", "dropped")

    def __init__(
        self,
        level: Union[TraceLevel, str, int] = TraceLevel.REQUEST,
        max_events: Optional[int] = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ConfigError(f"max_events must be positive, got {max_events}")
        #: Plain int for the cheapest possible guard at emission sites.
        self.level: int = int(TraceLevel.parse(level))
        self._events: "deque[TraceEvent]" = deque(maxlen=max_events)
        #: Events lost to the ring buffer (oldest-first overwrite).
        self.dropped: int = 0

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.level > TraceLevel.OFF

    def wants(self, level: int) -> bool:
        """True when events of ``level`` would be recorded."""
        return self.level >= level

    def emit(self, level: int, t: float, etype: str, **fields: Any) -> None:
        """Record one event if ``level`` is enabled.

        Emission sites on hot paths should guard with
        ``if recorder.level >= level`` *before* building ``fields`` so
        the disabled case does zero allocation.
        """
        if self.level < level:
            return
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(TraceEvent(t=t, etype=etype, fields=fields))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the recorded events (oldest first)."""
        return list(self._events)

    def events_of(self, etype: str) -> List[TraceEvent]:
        return [e for e in self._events if e.etype == etype]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def counts_by_type(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.etype] = out.get(e.etype, 0) + 1
        return out

    def summary(self) -> Dict[str, Any]:
        """Recorder self-description for run reports."""
        return {
            "schema_version": EVENT_SCHEMA_VERSION,
            "level": TraceLevel(self.level).name.lower(),
            "events_recorded": len(self._events),
            "events_dropped": self.dropped,
            "events_by_type": self.counts_by_type(),
        }

    # ------------------------------------------------------------------
    # JSONL serialisation
    # ------------------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        """The JSONL header line (first line of every trace file)."""
        return {
            "etype": "trace.header",
            "schema_version": EVENT_SCHEMA_VERSION,
            "level": TraceLevel(self.level).name.lower(),
            "events": len(self._events),
            "dropped": self.dropped,
        }

    def write_jsonl(self, path_or_file) -> int:
        """Write header + events as JSON Lines; returns lines written."""
        if hasattr(path_or_file, "write"):
            return self._write(path_or_file)
        with open(path_or_file, "w", encoding="utf-8") as fh:
            return self._write(fh)

    def _write(self, fh: io.TextIOBase) -> int:
        lines = 1
        fh.write(json.dumps(self.header(), sort_keys=True) + "\n")
        for event in self._events:
            fh.write(json.dumps(event.as_dict()) + "\n")
            lines += 1
        return lines


def read_jsonl(path_or_file) -> Iterator[Dict[str, Any]]:
    """Parse a trace file back into dicts (header line included)."""
    if hasattr(path_or_file, "read"):
        yield from _read(path_or_file)
        return
    with open(path_or_file, "r", encoding="utf-8") as fh:
        yield from _read(fh)


def _read(fh: Iterable[str]) -> Iterator[Dict[str, Any]]:
    for line in fh:
        line = line.strip()
        if line:
            yield json.loads(line)


#: Shared disabled recorder: emission guards against it are a single
#: int compare and it never stores anything.
NULL_RECORDER = TraceRecorder(level=TraceLevel.OFF, max_events=1)
