"""Typed simulation trace events and verbosity levels.

The event *schema* is a contract between the data plane and its
observers (tests snapshot it, external tools parse it), so every event
type has a stable name and a documented field set, and the whole
vocabulary carries a version number that is bumped on any breaking
change (DedupFS's M4 hardening applies the same discipline to its
fsck/report formats).

Levels form a strict ladder -- an event is recorded iff its level is
at or below the recorder's configured level:

=========  ====================================================
level      what is emitted
=========  ====================================================
OFF        nothing (the default; guards are single int compares)
SUMMARY    per-epoch iCache decisions, replay lifecycle marks
REQUEST    request arrival / completion records
CHUNK      per-chunk dedup decisions, cache and disk micro-events
=========  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

#: Bumped whenever an existing event type changes meaning or drops a
#: field.  Adding a new event type or a new optional field is not a
#: breaking change.
EVENT_SCHEMA_VERSION = 1


class TraceLevel(enum.IntEnum):
    """Recorder verbosity ladder (higher = more events)."""

    OFF = 0
    SUMMARY = 1
    REQUEST = 2
    CHUNK = 3

    @classmethod
    def parse(cls, name: "str | int | TraceLevel") -> "TraceLevel":
        """Parse a CLI string (``off``/``summary``/``request``/``chunk``)."""
        if isinstance(name, cls):
            return name
        if isinstance(name, int):
            return cls(name)
        try:
            return cls[str(name).upper()]
        except KeyError:
            raise ValueError(
                f"unknown trace level {name!r}; "
                f"choose from {', '.join(l.name.lower() for l in cls)}"
            ) from None


class EventType:
    """Stable event-type names (the ``etype`` field of every event).

    Grouped by emitting layer; the docstring of each constant is the
    field contract (see docs/observability.md for the full schema).
    """

    # -- replay lifecycle (SUMMARY) ------------------------------------
    RUN_START = "run.start"            # trace, scheme, requests, warmup
    RUN_END = "run.end"                # events_processed, makespan

    # -- request path (REQUEST) ----------------------------------------
    REQUEST_ARRIVE = "request.arrive"      # req_id, op, lba, nblocks
    REQUEST_COMPLETE = "request.complete"  # req_id, op, nblocks, response,
    #                                        eliminated, deduped_blocks,
    #                                        cache_hit_blocks, measured

    # -- write classification (CHUNK) ----------------------------------
    REQUEST_CLASSIFY = "request.classify"  # req_id, category, category_name,
    #                                        nchunks, redundant_chunks,
    #                                        deduped_chunks, runs

    # -- cache micro-events (CHUNK) ------------------------------------
    CACHE_READ = "cache.read"          # req_id, hits, misses
    CACHE_GHOST_HIT = "cache.ghost_hit"    # cache ("index"|"read"), key

    # -- iCache epochs (SUMMARY) ---------------------------------------
    ICACHE_EPOCH = "icache.epoch"      # epoch, index_bytes, read_bytes,
    #                                    ghost_index_hits, ghost_read_hits,
    #                                    index_benefit, read_benefit,
    #                                    direction, swapped_bytes

    # -- disk layer (CHUNK) --------------------------------------------
    DISK_OP = "disk.op"                # disk, op, pba, nblocks, start, done

    # -- fault injection (SUMMARY) -------------------------------------
    FAULT_INJECT = "fault.inject"      # kind, detail
    FAULT_RECOVER = "fault.recover"    # kind, latency, detail

    # -- cluster layer (see repro.cluster) -----------------------------
    NET_RPC = "net.rpc"                # src, dst, bytes, queued, done  (CHUNK)
    CLUSTER_REBALANCE = "cluster.rebalance"  # added, removed, moves,
    #                                          ring_size             (SUMMARY)
    CLUSTER_MIGRATE = "cluster.migrate"      # moved, remaining      (SUMMARY)
    CLUSTER_NODE_FAIL = "cluster.node_fail"  # node, disk            (SUMMARY)

    # -- causal span tracing (repro.obs.spans JSONL) -------------------
    SPAN = "span"                      # span_id, parent, name, req_id,
    #                                    node, end, attrs


#: Event type -> required field names (schema-stability tests check
#: emitted events against this table).
EVENT_FIELDS: Dict[str, tuple] = {
    EventType.RUN_START: ("trace", "scheme", "requests", "warmup"),
    EventType.RUN_END: ("events_processed", "makespan"),
    EventType.REQUEST_ARRIVE: ("req_id", "op", "lba", "nblocks"),
    EventType.REQUEST_COMPLETE: (
        "req_id", "op", "nblocks", "response", "eliminated",
        "deduped_blocks", "cache_hit_blocks", "measured",
    ),
    EventType.REQUEST_CLASSIFY: (
        "req_id", "category", "category_name", "nchunks",
        "redundant_chunks", "deduped_chunks", "runs",
    ),
    EventType.CACHE_READ: ("req_id", "hits", "misses"),
    EventType.CACHE_GHOST_HIT: ("cache", "key"),
    EventType.ICACHE_EPOCH: (
        "epoch", "index_bytes", "read_bytes", "ghost_index_hits",
        "ghost_read_hits", "index_benefit", "read_benefit",
        "direction", "swapped_bytes",
    ),
    EventType.DISK_OP: ("disk", "op", "pba", "nblocks", "start", "done"),
    EventType.FAULT_INJECT: ("kind", "detail"),
    EventType.FAULT_RECOVER: ("kind", "latency", "detail"),
    EventType.NET_RPC: ("src", "dst", "bytes", "queued", "done"),
    EventType.CLUSTER_REBALANCE: ("added", "removed", "moves", "ring_size"),
    EventType.CLUSTER_MIGRATE: ("moved", "remaining"),
    EventType.CLUSTER_NODE_FAIL: ("node", "disk"),
    EventType.SPAN: (
        "span_id", "parent", "name", "req_id", "node", "end", "attrs",
    ),
}

#: Event types only emitted under fault injection (the golden no-fault
#: trace cannot contain them; its coverage test excludes this set).
FAULT_EVENT_TYPES = frozenset({EventType.FAULT_INJECT, EventType.FAULT_RECOVER})

#: Event types only emitted by multi-node cluster replays (likewise
#: excluded from the single-node golden trace's coverage check).
CLUSTER_EVENT_TYPES = frozenset(
    {
        EventType.NET_RPC,
        EventType.CLUSTER_REBALANCE,
        EventType.CLUSTER_MIGRATE,
        EventType.CLUSTER_NODE_FAIL,
    }
)

#: Span records live in their own JSONL stream (``--spans-out``), not
#: the event trace, so the golden trace coverage check excludes them.
SPAN_EVENT_TYPES = frozenset({EventType.SPAN})


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event.

    ``t`` is *simulated* seconds; ``fields`` is the per-type payload
    (see :data:`EVENT_FIELDS`).
    """

    t: float
    etype: str
    fields: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        """JSONL-ready representation (stable key order: t, etype, ...)."""
        out: Dict[str, Any] = {"t": self.t, "etype": self.etype}
        out.update(self.fields)
        return out
