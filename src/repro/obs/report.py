"""Machine-readable run reports: build, save, load, render, diff.

One replay produces one versioned JSON document holding everything an
observer needs to answer "*why* was this run fast or slow": the
configuration and effective seed, every counter, the response-time
histograms (p50/p95/p99/p999), the per-epoch iCache timeline and the
recorder's own accounting (so the cost of watching is itself
watched).  ``repro stats`` renders one report or diffs two.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError, ReproError
from repro.metrics.report import render_table

#: Bumped on any breaking change to the report document layout.
REPORT_VERSION = 1
REPORT_KIND_RUN = "pod-run-report"
REPORT_KIND_COMPARE = "pod-compare-report"

#: A clock is any zero-argument callable returning seconds.  Reports
#: default to the wall clock but accept an injected clock so that a
#: fixed seed + fixed clock yields a byte-stable report document (the
#: POD001 lint rule bans *calling* wall clocks in this package; binding
#: one as an injectable default is the sanctioned idiom).
Clock = Callable[[], float]
_WALL_CLOCK: Clock = time.time


def build_run_report(
    result: Any,
    *,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    trace_level: str = "off",
    recorder: Optional[Any] = None,
    config: Optional[Dict[str, Any]] = None,
    overhead: Optional[Dict[str, float]] = None,
    clock: Optional[Clock] = None,
) -> Dict[str, Any]:
    """Assemble the versioned report document for one replay.

    ``result`` is a :class:`repro.sim.replay.ReplayResult`; the report
    is a plain JSON-serialisable dict (no repro objects inside).
    ``clock`` overrides the wall clock stamped into ``generated_unix``
    (inject a constant for byte-stable documents).
    """
    metrics = result.metrics
    counters: Dict[str, Any] = dict(metrics.as_dict())
    counters["capacity_blocks"] = result.capacity_blocks
    counters["removed_write_pct"] = result.removed_write_pct
    for key, value in result.scheme_stats.items():
        if isinstance(value, (int, float, str, bool)):
            counters[f"scheme.{key}"] = value

    histograms = {
        name: hist.as_dict(include_buckets=True)
        for name, hist in metrics.histograms().items()
    }

    report: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "kind": REPORT_KIND_RUN,
        "generated_unix": (clock if clock is not None else _WALL_CLOCK)(),
        "trace": result.trace_name,
        "scheme": result.scheme_name,
        "seed": seed,
        "scale": scale,
        "config": config or {},
        "counters": counters,
        "histograms": histograms,
        "icache_timeline": list(result.epoch_timeline),
        "utilisation": {str(k): v for k, v in result.utilisation.items()},
        "tracing": (
            recorder.summary()
            if recorder is not None
            else {"level": trace_level, "events_recorded": 0, "events_dropped": 0}
        ),
        "overhead": overhead or {},
        "sanitizer": (
            result.sanitizer.summary()
            if getattr(result, "sanitizer", None) is not None
            else {}
        ),
        # Fault-injection summary (counters, recovery-latency and
        # blast-radius histograms, oracle verdict).  Empty dict for
        # healthy replays so the document shape is stable.
        "faults": getattr(result, "fault_stats", None) or {},
    }
    volumes = getattr(result, "volumes", None)
    if volumes:
        # Multi-volume replays: per-tenant response times and dedup
        # splits (cross- vs intra-volume), one entry per namespace.
        report["volumes"] = list(volumes)
    nodes = getattr(result, "nodes", None)
    if nodes:
        # Cluster replays: per-node response times, elimination and
        # network-cost breakdowns, one entry per POD node.
        report["nodes"] = list(nodes)
    cluster = getattr(result, "cluster_stats", None)
    if cluster is not None:
        # Cluster-wide summary: ring state, network fabric totals,
        # rebalance and node-failure progress.
        report["cluster"] = dict(cluster)
    # Telemetry sections appear only when armed (absent, not empty,
    # when disabled -- report bytes must not change for old configs).
    timeline = getattr(result, "timeline", None)
    if timeline is not None:
        report["timeline"] = (
            timeline.as_dict() if hasattr(timeline, "as_dict") else dict(timeline)
        )
    spans = getattr(result, "spans", None)
    if spans is not None:
        report["spans"] = (
            spans.summary() if hasattr(spans, "summary") else dict(spans)
        )
    slo_stats = getattr(result, "slo_stats", None)
    if slo_stats is not None:
        report["slo"] = dict(slo_stats)
    jobs_stats = getattr(result, "jobs_stats", None)
    if jobs_stats is not None:
        # Leased-job subsystem: lease/claim counters, per-job records,
        # step-ledger verdict, admission totals.
        report["jobs"] = dict(jobs_stats)
    return report


def build_compare_report(
    runs: List[Dict[str, Any]], clock: Optional[Clock] = None
) -> Dict[str, Any]:
    """Bundle several run reports into one compare document.

    ``clock`` as in :func:`build_run_report`.
    """
    return {
        "version": REPORT_VERSION,
        "kind": REPORT_KIND_COMPARE,
        "generated_unix": (clock if clock is not None else _WALL_CLOCK)(),
        "runs": runs,
    }


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a report file (version/kind checked)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read report {path}: {exc}") from exc
    if not isinstance(doc, dict) or "version" not in doc or "kind" not in doc:
        raise ConfigError(f"{path} is not a repro report (missing version/kind)")
    if doc["version"] > REPORT_VERSION:
        raise ConfigError(
            f"{path} has report version {doc['version']}; "
            f"this build understands <= {REPORT_VERSION}"
        )
    if doc["kind"] not in (REPORT_KIND_RUN, REPORT_KIND_COMPARE):
        raise ConfigError(f"{path}: unknown report kind {doc['kind']!r}")
    return doc


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

#: Headline counters rendered first, in this order.
_HEADLINE = (
    "requests",
    "mean_response",
    "read_mean_response",
    "write_mean_response",
    "p95_response",
    "writes_eliminated_requests",
    "writes_eliminated_blocks",
    "removed_write_pct",
    "capacity_blocks",
)


def _fmt_val(v: Any) -> Any:
    if isinstance(v, float):
        return f"{v:.6g}"
    return v


def render_run_report(report: Dict[str, Any]) -> str:
    """Human-readable view of one run report."""
    parts: List[str] = []
    title = (
        f"{report.get('scheme')} on {report.get('trace')} "
        f"(seed={report.get('seed')}, scale={report.get('scale')}, "
        f"report v{report.get('version')})"
    )
    counters = report.get("counters", {})
    rows = [[k, _fmt_val(counters[k])] for k in _HEADLINE if k in counters]
    rows += [
        [k, _fmt_val(v)]
        for k, v in sorted(counters.items())
        if k not in _HEADLINE
    ]
    parts.append(render_table(title, ["counter", "value"], rows))

    volumes = report.get("volumes", [])
    if volumes:
        vrows = [
            [
                v.get("volume_id"),
                v.get("name"),
                v.get("requests", 0),
                _fmt_val(v.get("mean_response", 0.0) * 1e3),
                _fmt_val(v.get("p95_response", 0.0) * 1e3),
                v.get("writes_eliminated_blocks", 0),
                v.get("cross_volume_deduped_blocks", 0),
                v.get("intra_volume_deduped_blocks", 0),
            ]
            for v in volumes
        ]
        parts.append(
            render_table(
                "per-volume breakdown",
                ["vol", "name", "reqs", "mean ms", "p95 ms",
                 "wr elim", "x-vol dedup", "intra dedup"],
                vrows,
            )
        )

    nodes = report.get("nodes", [])
    if nodes:
        nrows = [
            [
                n.get("node_id"),
                n.get("name"),
                n.get("requests", 0),
                _fmt_val(n.get("mean_response", 0.0) * 1e3),
                _fmt_val(n.get("p99_response", 0.0) * 1e3),
                n.get("writes_eliminated_blocks", 0),
                n.get("remote_lookups", 0),
                n.get("remote_duplicate_blocks", 0),
                n.get("rebalance_misses", 0),
                _fmt_val(n.get("net_delay_mean", 0.0) * 1e6),
            ]
            for n in nodes
        ]
        parts.append(
            render_table(
                "per-node breakdown",
                ["node", "name", "reqs", "mean ms", "p99 ms", "wr elim",
                 "remote lkp", "remote dup", "rebal miss", "net us"],
                nrows,
            )
        )

    cluster = report.get("cluster", {})
    if cluster:
        crows: List[List[Any]] = [
            ["nodes", cluster.get("nodes")],
            ["vnodes", cluster.get("vnodes")],
            ["ring_members", str(cluster.get("ring_members"))],
            ["remote_lookups", cluster.get("remote_lookups")],
            ["remote_duplicate_blocks", cluster.get("remote_duplicate_blocks")],
            ["rebalance_misses", cluster.get("rebalance_misses")],
        ]
        net = cluster.get("net", {})
        crows += [[f"net.{k}", _fmt_val(v)] for k, v in sorted(net.items())]
        fabric = cluster.get("fabric", {})
        crows += [[f"fabric.{k}", _fmt_val(v)] for k, v in sorted(fabric.items())]
        rb = cluster.get("rebalance")
        if rb:
            crows += [[f"rebalance.{k}", _fmt_val(v)] for k, v in sorted(rb.items())]
        nf = cluster.get("node_failure")
        if nf:
            crows += [[f"node_failure.{k}", _fmt_val(v)] for k, v in sorted(nf.items())]
        directory = cluster.get("directory")
        if directory:
            gc = directory.get("gc")
            crows += [
                [f"directory.{k}", _fmt_val(v)]
                for k, v in sorted(directory.items())
                if k != "gc"
            ]
            if gc:
                crows += [[f"directory.gc.{k}", _fmt_val(v)]
                          for k, v in sorted(gc.items())]
        parts.append(render_table("cluster", ["field", "value"], crows))

    hists = report.get("histograms", {})
    if hists:
        hrows = [
            [
                name,
                h.get("count", 0),
                _fmt_val(h.get("mean", 0.0) * 1e3),
                _fmt_val(h.get("p50", 0.0) * 1e3),
                _fmt_val(h.get("p95", 0.0) * 1e3),
                _fmt_val(h.get("p99", 0.0) * 1e3),
                _fmt_val(h.get("p999", 0.0) * 1e3),
            ]
            for name, h in sorted(hists.items())
        ]
        parts.append(
            render_table(
                "response-time histograms (ms)",
                ["series", "count", "mean", "p50", "p95", "p99", "p999"],
                hrows,
            )
        )

    timeline = report.get("icache_timeline", [])
    if timeline:
        trows = [
            [
                e.get("epoch"),
                _fmt_val(e.get("t")),
                e.get("index_bytes"),
                e.get("read_bytes"),
                e.get("ghost_index_hits"),
                e.get("ghost_read_hits"),
                e.get("direction"),
                e.get("swapped_bytes"),
            ]
            for e in timeline
        ]
        parts.append(
            render_table(
                "iCache epoch timeline",
                ["epoch", "t", "index B", "read B", "ghost idx", "ghost rd",
                 "direction", "swapped B"],
                trows,
            )
        )

    timeline_doc = report.get("timeline")
    if timeline_doc and timeline_doc.get("windows"):
        windows = timeline_doc["windows"]
        width = timeline_doc.get("window") or 1.0
        wrows = [
            [
                w.get("index"),
                _fmt_val(w.get("t0")),
                w.get("requests", 0),
                _fmt_val(w.get("requests", 0) / width),
                _fmt_val(w.get("read_latency", {}).get("p95", 0.0) * 1e3),
                _fmt_val(w.get("write_latency", {}).get("p95", 0.0) * 1e3),
                _fmt_val(w.get("dedup_ratio", 0.0)),
                _fmt_val(w.get("read_cache_hit_rate", 0.0)),
                ",".join(sorted(w.get("activity", {}))) or "-",
            ]
            for w in windows
        ]
        parts.append(
            render_table(
                f"timeline ({len(windows)} windows x {_fmt_val(width)}s, "
                f"schema v{timeline_doc.get('schema_version')})",
                ["win", "t0", "reqs", "req/s", "rd p95 ms", "wr p95 ms",
                 "dedup", "cache hit", "activity"],
                wrows,
            )
        )

    spans_doc = report.get("spans")
    if spans_doc:
        srows: List[List[Any]] = [
            ["schema_version", spans_doc.get("schema_version")],
            ["spans", spans_doc.get("spans")],
            ["dropped", spans_doc.get("dropped")],
        ]
        srows += [
            [f"by_name.{k}", v]
            for k, v in sorted(spans_doc.get("by_name", {}).items())
        ]
        parts.append(render_table("span tracing", ["field", "value"], srows))

    slo_doc = report.get("slo")
    if slo_doc:
        orows = [
            [
                o.get("name"),
                o.get("scope"),
                f"{o.get('metric')}/{o.get('op')}",
                _fmt_val(o.get("threshold")),
                _fmt_val(o.get("target")),
                o.get("windows_evaluated", 0),
                o.get("violation_count", 0),
                _fmt_val(o.get("worst_burn", 0.0)),
            ]
            for o in slo_doc.get("objectives", [])
        ]
        parts.append(
            render_table(
                f"SLO objectives (schema v{slo_doc.get('schema_version')}, "
                f"{slo_doc.get('violations_total', 0)} violation windows)",
                ["name", "scope", "metric", "threshold", "target",
                 "windows", "violations", "worst burn"],
                orows,
            )
        )
        vrows = [
            [
                o.get("name"),
                v.get("index"),
                _fmt_val(v.get("t0")),
                _fmt_val(v.get("value")),
                _fmt_val(v.get("burn_rate")),
                ",".join(v.get("annotations", [])) or "-",
            ]
            for o in slo_doc.get("objectives", [])
            for v in o.get("violations", [])
        ]
        if vrows:
            parts.append(
                render_table(
                    "SLO violation windows",
                    ["objective", "win", "t0", "value", "burn", "concurrent activity"],
                    vrows,
                )
            )

    tracing = report.get("tracing", {})
    if tracing:
        parts.append(
            render_table(
                "tracing",
                ["field", "value"],
                [[k, _fmt_val(v)] for k, v in sorted(tracing.items())
                 if not isinstance(v, dict)],
            )
        )

    faults = report.get("faults", {})
    if faults:
        frows: List[List[Any]] = [["fault_seed", faults.get("seed")]]
        frows += [
            [k, _fmt_val(v)]
            for k, v in sorted(faults.get("counters", {}).items())
        ]
        oracle = faults.get("oracle", {})
        frows += [
            [f"oracle.{k}", _fmt_val(v)]
            for k, v in sorted(oracle.items())
            if not isinstance(v, (dict, list))
        ]
        rebuild = faults.get("rebuild")
        if rebuild:
            frows += [
                [f"rebuild.{k}", _fmt_val(v)] for k, v in sorted(rebuild.items())
            ]
        parts.append(render_table("fault injection", ["field", "value"], frows))
        hrows2 = []
        for name in ("recovery_latency", "blast_radius"):
            h = faults.get(name, {})
            if h.get("count"):
                unit = 1e3 if name == "recovery_latency" else 1.0
                hrows2.append([
                    name,
                    h.get("count", 0),
                    _fmt_val(h.get("mean", 0.0) * unit),
                    _fmt_val(h.get("p50", 0.0) * unit),
                    _fmt_val(h.get("p95", 0.0) * unit),
                    _fmt_val(h.get("p99", 0.0) * unit),
                    _fmt_val(h.get("max", 0.0) * unit),
                ])
        if hrows2:
            parts.append(
                render_table(
                    "fault histograms (recovery in ms, blast radius in blocks)",
                    ["series", "count", "mean", "p50", "p95", "p99", "max"],
                    hrows2,
                )
            )

    jobs_doc = report.get("jobs")
    if jobs_doc:
        jrows: List[List[Any]] = [["workers", jobs_doc.get("workers")]]
        jrows += [
            [f"lease.{k}", _fmt_val(v)]
            for k, v in sorted(jobs_doc.get("lease", {}).items())
        ]
        jrows += [
            [k, _fmt_val(v)]
            for k, v in sorted(jobs_doc.get("counters", {}).items())
        ]
        jrows += [
            [f"oracle.{k}", _fmt_val(v)]
            for k, v in sorted(jobs_doc.get("oracle", {}).items())
            if not isinstance(v, (dict, list))
        ]
        admission_doc = jobs_doc.get("admission")
        if admission_doc:
            jrows += [
                [f"admission.{k}", _fmt_val(v)]
                for k, v in sorted(admission_doc.items())
            ]
        parts.append(
            render_table(
                f"leased jobs (schema v{jobs_doc.get('schema_version')})",
                ["field", "value"],
                jrows,
            )
        )
        jobrows = [
            [
                j.get("id"),
                j.get("name"),
                j.get("kind"),
                j.get("state"),
                j.get("epoch"),
                j.get("claims"),
                j.get("stale_reclaims"),
                j.get("steps_committed"),
                _fmt_val(j.get("progress")),
            ]
            for j in jobs_doc.get("jobs", [])
        ]
        if jobrows:
            parts.append(
                render_table(
                    "jobs",
                    ["id", "name", "kind", "state", "epoch", "claims",
                     "reclaims", "steps", "progress"],
                    jobrows,
                )
            )
    return "\n\n".join(parts)


def render_report(report: Dict[str, Any]) -> str:
    """Render a run or compare report."""
    if report.get("kind") == REPORT_KIND_COMPARE:
        return "\n\n".join(render_run_report(r) for r in report.get("runs", []))
    return render_run_report(report)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------


def diff_reports(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Side-by-side diff of two *run* reports (counters + percentiles).

    Relative change is computed b vs a; counters present in only one
    report show ``--`` on the missing side.
    """
    for doc, name in ((a, "first"), (b, "second")):
        if doc.get("kind") != REPORT_KIND_RUN:
            raise ConfigError(f"stats diff needs two run reports; {name} is "
                              f"{doc.get('kind')!r}")
    rows = []
    ca, cb = a.get("counters", {}), b.get("counters", {})
    for key in sorted(set(ca) | set(cb)):
        va, vb = ca.get(key), cb.get(key)
        if va == vb:
            continue
        delta = ""
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            delta = f"{(vb - va) / abs(va) * 100.0:+.1f}%"
        rows.append([
            key,
            "--" if va is None else _fmt_val(va),
            "--" if vb is None else _fmt_val(vb),
            delta,
        ])
    title = (
        f"{a.get('scheme')}/{a.get('trace')}  vs  "
        f"{b.get('scheme')}/{b.get('trace')}"
    )
    parts = [render_table(title, ["counter", "A", "B", "delta"], rows or
                          [["(identical counters)", "", "", ""]])]

    ha, hb = a.get("histograms", {}), b.get("histograms", {})
    hrows = []
    for name in sorted(set(ha) | set(hb)):
        if name not in ha:
            hrows.append([name, "--", "(only in B)", ""])
            continue
        if name not in hb:
            hrows.append([name, "(only in A)", "--", ""])
            continue
        for q in ("p50", "p95", "p99", "p999"):
            va, vb = ha[name].get(q, 0.0), hb[name].get(q, 0.0)
            delta = f"{(vb - va) / va * 100.0:+.1f}%" if va else ""
            hrows.append([f"{name}.{q}", _fmt_val(va * 1e3), _fmt_val(vb * 1e3), delta])
    if hrows:
        parts.append(render_table("histogram percentiles (ms)",
                                  ["series", "A", "B", "delta"], hrows))

    # Sections present in only one report (e.g. a report from a newer
    # build with a timeline vs an old golden) get an explicit marker
    # instead of silently vanishing from the diff.
    section_rows = []
    for section in ("volumes", "nodes", "cluster", "faults", "timeline",
                    "spans", "slo", "jobs", "icache_timeline"):
        in_a = bool(a.get(section))
        in_b = bool(b.get(section))
        if in_a != in_b:
            section_rows.append(
                [section, "present" if in_a else "--",
                 "present" if in_b else "--",
                 "only in A" if in_a else "only in B"]
            )
    if section_rows:
        parts.append(render_table("sections present in only one report",
                                  ["section", "A", "B", "marker"],
                                  section_rows))
    return "\n\n".join(parts)
