"""Open-loop trace replay: trace(s) + scheme + array -> response times.

Reproduces the paper's methodology (Section IV-A): requests are
injected at their trace timestamps (open loop -- a slow disk builds a
queue rather than slowing the workload down), the first part of the
trace warms the caches and is excluded from the metrics, and user
response time is completion minus arrival.

Per request, the scheme plans a :class:`PlannedIO`: a processing delay
(fingerprinting), the extent ops the request must wait for, and
optional background ops (iCache swap traffic) that load the disks
without gating completion.  Schemes with an ``epoch_interval`` get a
periodic callback for cache management.

Two replay drivers share one engine loop:

* :func:`replay_trace` -- the classic single-volume replay;
* :func:`replay_traces` -- N timestamped trace streams merge-sorted
  open-loop onto one array, each stream mapped to its own
  :class:`~repro.storage.namespace.VolumeNamespace` inside one shared
  dedup domain (the paper's cross-VM cloud scenario, Section I).
  ``replay_trace`` is exactly the N=1 special case: a single-volume
  replay through either entry point is bit-identical (pinned by the
  golden regression tests).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.sanitizer import PodSanitizer
from repro.baselines.base import DedupScheme, PlannedIO
from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.jobs.admission import AdmissionController
from repro.jobs.jobs import ScrubJob
from repro.jobs.plan import JobsConfig
from repro.jobs.runtime import JobRuntime
from repro.metrics.collector import MetricsCollector
from repro.obs.events import EventType, TraceLevel
from repro.obs.slo import SloPolicy, evaluate_slo
from repro.obs.spans import SpanTracer
from repro.obs.timeline import TimelineConfig, TimelineSampler
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.request import IORequest, OpType
from repro.storage.disk import Disk, DiskParams
from repro.storage.namespace import NamespaceMapper
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.scheduler import DiskScheduler, SchedulingPolicy
from repro.storage.ssd import Ssd, SsdParams
from repro.storage.volume import VolumeOp
from repro.traces.columnar import ColumnarTrace
from repro.traces.format import Trace


@dataclass(frozen=True)
class ReplayConfig:
    """Array geometry and replay options.

    Defaults mirror the paper's main setup: a 4-disk RAID-5 with a
    64 KB stripe unit (Section IV-B).
    """

    raid_level: RaidLevel = RaidLevel.RAID5
    ndisks: int = 4
    stripe_unit_blocks: int = BLOCKS_PER_STRIPE_UNIT
    disk_params: Optional[DiskParams] = None
    #: Include warm-up requests in the metrics (diagnostics only).
    collect_warmup: bool = False
    #: Disk queue discipline.  ``None`` = the fast analytic FCFS path;
    #: a :class:`SchedulingPolicy` switches to event-driven service
    #: (FCFS for validation, CLOOK for the elevator ablation).
    scheduler: Optional[SchedulingPolicy] = None
    #: Run the RAID-5 array in degraded mode with this member failed:
    #: reads touching it reconstruct from the row's survivors.
    failed_disk: Optional[int] = None
    #: SSD staging device for SAR-style schemes (None = no SSD; a
    #: scheme emitting SSD traffic without one is a config error).
    ssd_params: Optional[SsdParams] = None
    #: Debug mode: run the :class:`~repro.analysis.sanitizer.PodSanitizer`
    #: against the scheme every :attr:`sanitize_every` requests, at every
    #: epoch boundary and at end of run, raising on the first broken POD
    #: invariant.  Observation only -- enabling this must not change a
    #: single simulated completion time.
    check_invariants: bool = False
    #: Structural-check cadence, in arrived requests.
    sanitize_every: int = 1000
    #: Deterministic fault plan (see :mod:`repro.faults`).  ``None``
    #: keeps the replay on the healthy path, bit-identical to a build
    #: without the fault subsystem (zero-overhead off path).
    faults: Optional[FaultPlan] = None
    #: Override the plan's RNG seed (CLI ``--fault-seed``; requires
    #: :attr:`faults`).
    fault_seed: Optional[int] = None
    #: Windowed time-series sampling (see :mod:`repro.obs.timeline`).
    #: ``None`` keeps the replay on the zero-overhead path -- one
    #: ``is not None`` test per instrumentation site, bit-identical
    #: output to a build without the telemetry subsystem.
    timeline: Optional[TimelineConfig] = None
    #: Causal span tracing through the request lifecycle
    #: (see :mod:`repro.obs.spans`).  Observation only.
    spans: bool = False
    #: Per-tenant SLO objectives evaluated over the timeline
    #: (see :mod:`repro.obs.slo`).  Arming a policy implies a default
    #: timeline when none is configured explicitly.
    slo: Optional[SloPolicy] = None
    #: Leased background-job subsystem (see :mod:`repro.jobs`):
    #: simulated workers claim maintenance jobs under epoch-fenced
    #: leases, with stale-lease recovery, an optional scrubber and
    #: per-tenant admission control.  ``None`` keeps the replay
    #: bit-identical to a build without the jobs subsystem.
    jobs: Optional[JobsConfig] = None

    def geometry(self) -> RaidGeometry:
        return RaidGeometry(
            level=self.raid_level,
            ndisks=self.ndisks,
            stripe_unit_blocks=self.stripe_unit_blocks,
        )

    def effective_timeline(self) -> Optional[TimelineConfig]:
        """The timeline config this replay samples with: the explicit
        one, a default when an SLO policy needs windows, else None."""
        if self.timeline is not None:
            return self.timeline
        if self.slo is not None:
            return TimelineConfig()
        return None


@dataclass
class ReplayResult:
    """Everything one replay produced."""

    trace_name: str
    scheme_name: str
    metrics: MetricsCollector
    scheme_stats: Dict[str, Any]
    utilisation: Dict[int, Dict[str, float]]
    capacity_blocks: int
    writes_total: int
    write_requests_removed: int
    #: Per-epoch iCache decision records (list of dicts; empty for
    #: schemes without an adaptive cache).
    epoch_timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: The trace recorder used for this replay, when one was attached.
    recorder: Optional[TraceRecorder] = None
    #: The invariant sanitizer, when ``check_invariants`` was enabled
    #: (its ``summary()`` lands in run reports).
    sanitizer: Optional[PodSanitizer] = None
    #: Per-volume metric breakdowns (one dict per volume, id-ordered;
    #: empty for classic single-volume replays via ``replay_trace``).
    volumes: List[Dict[str, Any]] = field(default_factory=list)
    #: Fault-injection summary (counters, recovery-latency and
    #: blast-radius histograms, oracle verdict); ``None`` for healthy
    #: replays.
    fault_stats: Optional[Dict[str, Any]] = None
    #: Per-node metric breakdowns (one dict per node, id-ordered;
    #: empty outside :func:`repro.cluster.replay.replay_cluster`
    #: multi-node runs).
    nodes: List[Dict[str, Any]] = field(default_factory=list)
    #: Cluster-wide summary (router/ring state, network fabric totals,
    #: rebalance and node-failure progress); ``None`` outside cluster
    #: replays.
    cluster_stats: Optional[Dict[str, Any]] = None
    #: Windowed time-series sampler (``None`` unless the replay armed
    #: ``ReplayConfig.timeline``/``slo``); its ``as_dict()`` is the run
    #: report's ``timeline`` section.
    timeline: Optional[TimelineSampler] = None
    #: Causal span tracer (``None`` unless ``ReplayConfig.spans``).
    spans: Optional[SpanTracer] = None
    #: SLO evaluation output (``None`` unless ``ReplayConfig.slo``).
    slo_stats: Optional[Dict[str, Any]] = None
    #: Leased-job subsystem summary (lease/claim counters, per-job
    #: records, step-ledger verdict, admission totals); ``None``
    #: unless ``ReplayConfig.jobs`` armed the subsystem.
    jobs_stats: Optional[Dict[str, Any]] = None

    @property
    def removed_write_pct(self) -> float:
        """Fig. 11's metric: % of write requests eliminated."""
        if self.writes_total == 0:
            return 0.0
        return self.write_requests_removed / self.writes_total * 100.0

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"trace": self.trace_name, "scheme": self.scheme_name}
        out.update(self.metrics.as_dict())
        out["capacity_blocks"] = self.capacity_blocks
        out["removed_write_pct"] = self.removed_write_pct
        if self.volumes:
            out["volumes"] = self.volumes
        if self.nodes:
            out["nodes"] = self.nodes
        if self.cluster_stats is not None:
            out["cluster"] = self.cluster_stats
        return out


def _size_disks(total_volume_blocks: int, config: ReplayConfig) -> DiskParams:
    """Pick per-disk capacity so the array exposes the needed volume."""
    geometry = config.geometry()
    data_disks = geometry.data_disks
    su = geometry.stripe_unit_blocks
    units = math.ceil(total_volume_blocks / su)
    rows = math.ceil(units / data_disks)
    per_disk = (rows + 2) * su  # small slack row
    base = config.disk_params if config.disk_params is not None else DiskParams()
    if base.total_blocks >= per_disk:
        return base
    return DiskParams(
        total_blocks=per_disk,
        rpm=base.rpm,
        seek_min=base.seek_min,
        seek_max=base.seek_max,
        transfer_rate=base.transfer_rate,
        controller_overhead=base.controller_overhead,
    )


def size_disks(total_volume_blocks: int, config: ReplayConfig) -> DiskParams:
    """Public accessor for the disk-sizing rule (the cluster replay
    sizes each node's private array with exactly the same arithmetic
    as the single-node replay -- a bit-identity requirement)."""
    return _size_disks(total_volume_blocks, config)


def _merge_streams(
    traces: Sequence[Trace], mapper: NamespaceMapper
) -> Tuple[List[IORequest], List[bool]]:
    """Merge-sort N timestamped streams into one global request list.

    Each stream's requests are rebased into its volume's slice of the
    shared domain and tagged with the volume id; global ``req_id``s
    are assigned in merged order.  The merge is stable: equal
    timestamps keep volume order, so the merged stream is a pure
    function of its inputs (determinism).  Returns the requests plus a
    parallel measured-flag list (a request is measured when it is past
    its *own* volume's warm-up prefix).

    For N=1 this degenerates to exactly ``list(trace.requests())``
    with ``measured[i] = i >= warmup_count`` -- the classic path.
    """

    def stream(vid: int, trace: Trace) -> Iterator[Tuple[float, int, IORequest, bool]]:
        base = mapper.volume(vid).base
        warmup = trace.warmup_count
        for i, rec in enumerate(trace.records):
            req = IORequest(
                time=rec.time,
                op=rec.op,
                lba=base + rec.lba,
                nblocks=rec.nblocks,
                fingerprints=rec.fingerprints,
                req_id=-1,
                volume_id=vid,
            )
            yield rec.time, vid, req, i >= warmup

    merged = heapq.merge(
        *(stream(vid, t) for vid, t in enumerate(traces)),
        key=lambda item: item[0],
    )
    requests: List[IORequest] = []
    measured: List[bool] = []
    for req_id, (_t, _vid, req, is_measured) in enumerate(merged):
        req.req_id = req_id
        requests.append(req)
        measured.append(is_measured)
    return requests, measured


def replay_trace(
    trace: Union[Trace, ColumnarTrace],
    scheme: DedupScheme,
    config: ReplayConfig = ReplayConfig(),
    collector: Optional[MetricsCollector] = None,
    recorder: Optional[TraceRecorder] = None,
    batch_size: Optional[int] = None,
) -> ReplayResult:
    """Replay ``trace`` through ``scheme`` on the configured array.

    ``collector`` lets callers supply a richer collector (e.g.
    :class:`repro.metrics.analysis.DetailedCollector` for per-request
    samples); the default records summary statistics only.

    ``recorder`` attaches a :class:`~repro.obs.trace.TraceRecorder` to
    every layer (scheme, cache, engine).  Recording is observation
    only -- with any level, including ``OFF``, the simulated results
    are identical to an un-instrumented replay; the disabled path
    costs one integer compare per instrumentation site.

    ``batch_size`` opts into the columnar batch driver
    (:mod:`repro.sim.batch`): requests are planned in vectorized
    batches and completions replayed through a specialised loop --
    bit-identical to the event-loop path (pinned by golden tests) at a
    multiple of its throughput.  Configs outside the fast path fall
    back to the object path silently.

    This is the N=1 special case of :func:`replay_traces` (without
    the per-volume metric breakdowns); the two are bit-identical for
    a single volume.
    """
    return replay_traces(
        [trace],
        scheme,
        config,
        collector=collector,
        recorder=recorder,
        per_volume_metrics=False,
        batch_size=batch_size,
    )


def replay_traces(
    traces: Sequence[Union[Trace, ColumnarTrace]],
    scheme: DedupScheme,
    config: ReplayConfig = ReplayConfig(),
    collector: Optional[MetricsCollector] = None,
    recorder: Optional[TraceRecorder] = None,
    per_volume_metrics: bool = True,
    batch_size: Optional[int] = None,
) -> ReplayResult:
    """Replay N trace streams onto one shared-dedup-domain array.

    Each trace becomes one :class:`~repro.storage.namespace.VolumeNamespace`
    laid out back-to-back in the global logical space; the streams are
    merge-sorted by timestamp and injected open-loop, so tenants whose
    bursts collide genuinely queue against each other.  Because every
    volume shares one scheme (one Map table, one index, one allocator),
    identical content written by different volumes deduplicates to a
    single physical copy -- the paper's cross-VM scenario.

    With ``per_volume_metrics`` (default), the collector additionally
    tracks per-volume response times and eliminated writes, and each
    inline-deduplicated block is classified as *cross-volume* (its
    content was first written by another volume) or *intra-volume*.
    """
    if not traces:
        raise ConfigError("replay_traces needs at least one trace")
    if scheme.chunker is not None and config.faults is not None:
        # The fault oracle checks reads against the raw trace
        # fingerprints; CDC rewrites what the scheme stores, so the
        # two are incompatible by construction.
        raise ConfigError("content-defined chunking cannot run under fault injection")
    if batch_size is not None and recorder is None:
        from repro.sim.batch import batch_eligible, replay_columnar

        if batch_eligible(config):
            return replay_columnar(
                traces,
                scheme,
                config,
                collector=collector,
                batch_size=batch_size,
                per_volume_metrics=per_volume_metrics,
            )
    # Columnar inputs that did not take the batch driver (or were
    # passed with batch_size=None) materialise back to request-level
    # traces -- the round-trip is lossless, so the result is identical.
    traces = [
        t.to_trace() if isinstance(t, ColumnarTrace) else t for t in traces
    ]
    mapper = NamespaceMapper((t.name, t.logical_blocks) for t in traces)
    multi = len(traces) > 1
    if mapper.total_logical_blocks > scheme.regions.logical_blocks:
        raise ConfigError(
            f"trace touches {mapper.total_logical_blocks} logical blocks but "
            f"the scheme was configured for {scheme.regions.logical_blocks}"
        )
    geometry = config.geometry()
    params = _size_disks(scheme.regions.total_blocks, config)
    disks = [Disk(params, disk_id=i) for i in range(geometry.ndisks)]
    schedulers = (
        [DiskScheduler(disk, config.scheduler) for disk in disks]
        if config.scheduler is not None
        else None
    )
    array = RaidArray(geometry)
    sim = Simulator(
        disks,
        array,
        schedulers=schedulers,
        failed_disk=config.failed_disk,
    )
    metrics = collector if collector is not None else MetricsCollector()
    if per_volume_metrics:
        metrics.track_volumes()
    ssd = Ssd(config.ssd_params) if config.ssd_params is not None else None

    # Telemetry (all observation only; None = zero-overhead off path).
    tl_config = config.effective_timeline()
    sampler: Optional[TimelineSampler] = (
        TimelineSampler(tl_config, policy=config.slo)
        if tl_config is not None
        else None
    )
    if sampler is not None:
        metrics.attach_timeline(sampler)
    tracer: Optional[SpanTracer] = SpanTracer() if config.spans else None
    if tracer is not None:
        scheme.spans = tracer

    obs = recorder if recorder is not None else NULL_RECORDER
    if recorder is not None:
        scheme.attach_observer(recorder)
        sim.attach_observer(recorder)

    sanitizer: Optional[PodSanitizer] = None
    if config.check_invariants:
        if config.sanitize_every <= 0:
            raise ConfigError("sanitize_every must be positive")
        sanitizer = PodSanitizer(registry=metrics.registry)
        sanitizer.attach(scheme)

    injector: Optional[FaultInjector] = None
    if config.faults is not None:
        plan = config.faults
        if config.fault_seed is not None:
            plan = plan.with_seed(config.fault_seed)
        injector = FaultInjector(plan, registry=metrics.registry)
        injector.install(sim, scheme)
        if recorder is not None:
            injector.attach_observer(recorder)
        injector.timeline = sampler
        injector.spans = tracer
        # Volume-id -> namespace resolution for per-volume NVRAM-loss
        # recovery (NvramLossSpec.scope == "volume").
        injector.mapper = mapper
        if sampler is not None:
            # Known-in-advance fault intervals become window bands up
            # front; tick-driven activity (rebuild progress) is noted
            # live by the injector.
            for fs in plan.fail_slow:
                sampler.annotate_interval("fail_slow", fs.start, fs.end)
    elif config.fault_seed is not None:
        raise ConfigError("fault_seed given without a fault plan")

    requests, measured_flags = _merge_streams(traces, mapper)
    for request in requests:
        sim.schedule_arrival(request.time, request)

    # Leased background jobs (see repro.jobs): workers claim
    # maintenance work under epoch-fenced leases; an optional scrubber
    # walks the volume hunting latent sector errors; per-tenant
    # admission throttles foreground arrivals.  None = the jobs-off
    # path, bit-identical to a build without the subsystem.
    jobs_runtime: Optional[JobRuntime] = None
    admission: Optional[AdmissionController] = None
    if config.jobs is not None:
        if config.scheduler is not None:
            raise ConfigError(
                "leased jobs issue maintenance I/O through the analytic "
                "service path (event-driven schedulers are not supported)"
            )
        jobs_runtime = JobRuntime(
            config.jobs,
            sim,
            horizon=requests[-1].time if requests else 0.0,
            oracle=injector.oracle if injector is not None else None,
            registry=metrics.registry,
        )
        jobs_runtime.timeline = sampler
        jobs_runtime.spans = tracer
        admission = jobs_runtime.admission
        if injector is not None:
            # Member-failure rebuilds become leased jobs instead of
            # self-paced ticks.
            injector.jobs = jobs_runtime
        scrub_spec = config.jobs.scrub
        if scrub_spec is not None:

            def scrub_read(pba: int, nblocks: int) -> float:
                ops = array.map(VolumeOp(OpType.READ, pba, nblocks))
                holder: Dict[str, float] = {}
                if injector is not None:
                    injector.in_scrub = True
                try:
                    sim.issue_disk_ops(ops, lambda t: holder.setdefault("t", t))
                finally:
                    if injector is not None:
                        injector.in_scrub = False
                return holder.get("t", sim.now)

            jobs_runtime.submit(
                "scrub",
                ScrubJob(
                    scheme.regions.total_blocks,
                    scrub_spec.region_blocks,
                    scrub_read,
                    regions_cap=(
                        scrub_spec.regions
                        if scrub_spec.regions is not None
                        else 0
                    ),
                ),
                scrub_spec.interval,
                not_before=scrub_spec.start,
            )
        jobs_runtime.start()

    run_name = traces[0].name if not multi else "+".join(t.name for t in traces)
    total_warmup = sum(t.warmup_count for t in traces)
    #: First writer of each fingerprint, for the cross-volume vs
    #: intra-volume split (multi-volume replays only -- the single
    #: volume path must not pay for a dict it cannot use).
    fp_owner: Optional[Dict[int, int]] = {} if multi else None
    if obs.level >= TraceLevel.SUMMARY:
        extra_run = {"volumes": len(traces)} if multi else {}
        obs.emit(
            TraceLevel.SUMMARY,
            requests[0].time if requests else 0.0,
            EventType.RUN_START,
            trace=run_name,
            scheme=scheme.name,
            requests=len(requests),
            warmup=total_warmup,
            **extra_run,
        )

    def finish(
        request: IORequest,
        planned: PlannedIO,
        arrival: float,
        cross: int,
        root: int = -1,
    ) -> None:
        issue_time = sim.now

        ssd_done = issue_time
        if planned.ssd_read_blocks or planned.ssd_write_blocks:
            if ssd is None:
                raise ConfigError(
                    f"scheme {scheme.name} emitted SSD traffic but the replay "
                    "has no ssd_params configured"
                )
            if planned.ssd_read_blocks:
                ssd_done = ssd.service(issue_time, planned.ssd_read_blocks)
            if planned.ssd_write_blocks:
                ssd.service(issue_time, planned.ssd_write_blocks)  # background

        def complete(completion: float) -> None:
            completion = max(completion, ssd_done)
            measured = config.collect_warmup or measured_flags[request.req_id]
            completed_at = max(completion, issue_time)
            if tracer is not None and root > 0:
                if planned.volume_ops:
                    tracer.emit(
                        issue_time, completed_at, "disk",
                        parent=root, req_id=request.req_id,
                    )
                tracer.end(completed_at, root, response=completed_at - arrival)
            if measured:
                metrics.record(
                    request,
                    arrival,
                    completed_at,
                    eliminated=planned.eliminated,
                    cache_hit_blocks=planned.cache_hit_blocks,
                    deduped_blocks=planned.deduped_blocks,
                    cross_volume_blocks=cross,
                )
            if obs.level >= TraceLevel.REQUEST:
                extra = {"volume": request.volume_id} if multi else {}
                obs.emit(
                    TraceLevel.REQUEST,
                    completed_at,
                    EventType.REQUEST_COMPLETE,
                    req_id=request.req_id,
                    op=request.op.value,
                    nblocks=request.nblocks,
                    response=completed_at - arrival,
                    eliminated=planned.eliminated,
                    deduped_blocks=planned.deduped_blocks,
                    cache_hit_blocks=planned.cache_hit_blocks,
                    measured=measured,
                    **extra,
                )

        sim.issue_volume_ops(planned.volume_ops, complete)
        if planned.background_ops:
            sim.issue_volume_ops(planned.background_ops, lambda _t: None)

    # Fig. 11 counts removed write requests over the measured day
    # only, so snapshot the scheme's counters at the warm-up boundary
    # (the first arrival that is past its volume's warm-up prefix).
    boundary = {"writes": 0, "removed": 0, "taken": total_warmup == 0}
    arrivals = {"count": 0}

    def handle_request(request: IORequest, arrival: float) -> None:
        now = sim.now
        if not boundary["taken"] and measured_flags[request.req_id]:
            boundary["writes"] = scheme.writes_total
            boundary["removed"] = scheme.write_requests_removed
            boundary["taken"] = True
        root = -1
        if tracer is not None:
            # Root span: arrival to completion (ended in complete()).
            root = tracer.start(arrival, "request", req_id=request.req_id)
            if now > arrival:
                # Admission stalled behind crash recovery.
                tracer.emit(
                    arrival, now, "admission.stall",
                    parent=root, req_id=request.req_id,
                )
            scheme.span_parent = root
        if sampler is not None:
            sampler.note_gauges(
                now,
                nvram_bytes=float(scheme.nvram.bytes_used),
                queue_lag=sim.queue_lag(now),
            )
        if obs.level >= TraceLevel.REQUEST:
            extra = {"volume": request.volume_id} if multi else {}
            obs.emit(
                TraceLevel.REQUEST,
                now,
                EventType.REQUEST_ARRIVE,
                req_id=request.req_id,
                op=request.op.value,
                lba=request.lba,
                nblocks=request.nblocks,
                **extra,
            )
        planned = scheme.process(request, now)
        if injector is not None:
            # Content-oracle shadow: writes establish the truth,
            # reads are checked against it at processing time.
            if request.is_write:
                injector.oracle.note_write(request)
            else:
                injector.oracle.check_read(request, scheme)
        cross = 0
        if fp_owner is not None and request.fingerprints is not None:
            vid = request.volume_id
            for i in planned.deduped_idx:
                owner = fp_owner.get(request.fingerprints[i])
                if owner is not None and owner != vid:
                    cross += 1
            for fp in request.fingerprints:
                fp_owner.setdefault(fp, vid)
        if sanitizer is not None:
            arrivals["count"] += 1
            if arrivals["count"] % config.sanitize_every == 0:
                sanitizer.assert_clean(scheme, now)
        if planned.delay > 0:
            if tracer is not None and root > 0:
                # Fingerprint classification: the planning delay
                # between arrival handling and op issue.
                tracer.emit(
                    now, now + planned.delay, "classify",
                    parent=root, req_id=request.req_id,
                )
            sim.schedule_callback(
                now + planned.delay, finish, request, planned, arrival, cross, root
            )
        else:
            finish(request, planned, arrival, cross, root)

    def on_arrival(now: float, request: IORequest) -> None:
        release = now
        if injector is not None:
            # Crash recovery stalls admission: globally, or only for
            # the volume whose namespace is replaying (per-volume
            # NVRAM-loss scope).  For a global-scope stall this is
            # exactly the legacy blocked_until value.
            blocked = injector.blocked_until_for(request.volume_id)
            if blocked > release:
                release = blocked
        if admission is not None:
            # Per-tenant token bucket; charged even when not
            # throttling so the bucket drains deterministically.
            admitted = admission.admit(request.volume_id, release, request.nblocks)
            if admitted > release:
                release = admitted
        if release > now:
            # The request keeps its arrival timestamp (the stall is
            # charged to its response time) and is processed once
            # recovery/throttling releases it.
            sim.schedule_callback(release, handle_request, request, now)
            return
        handle_request(request, now)

    # Periodic cache-management epochs (POD's iCache).
    if scheme.epoch_interval is not None and requests:
        interval = scheme.epoch_interval
        if interval <= 0:
            raise ConfigError("epoch interval must be positive")
        last_arrival = requests[-1].time

        def epoch_tick() -> None:
            ops = scheme.on_epoch(sim.now)
            if sampler is not None:
                # iCache partition sizes are only interesting at epoch
                # boundaries -- that is when they move.
                sampler.note_gauges(
                    sim.now,
                    icache_index_bytes=float(scheme.cache.index.capacity_bytes),
                    icache_read_bytes=float(scheme.cache.read.capacity_bytes),
                )
            if sanitizer is not None:
                # Epoch boundaries are where iCache repartitions; check
                # the partition budgets right after the move.
                sanitizer.assert_clean(scheme, sim.now)
            if ops:
                sim.issue_volume_ops(ops, lambda _t: None)
            next_time = sim.now + interval
            if next_time <= last_arrival + interval:
                sim.schedule_callback(next_time, epoch_tick)

        sim.schedule_callback(requests[0].time + interval, epoch_tick)

    sim.run(arrival_handler=on_arrival)

    if sanitizer is not None:
        sanitizer.assert_clean(scheme, sim.now)

    if jobs_runtime is not None:
        # Mirror job counters into the registry and verify the step
        # ledger (no step lost, none double-applied).
        jobs_runtime.finalize()

    if injector is not None:
        # Sweep still-latent faults into the blast-radius histogram and
        # run the end-to-end content oracle over the final state.
        injector.finalize(scheme)

    if obs.level >= TraceLevel.SUMMARY:
        obs.emit(
            TraceLevel.SUMMARY,
            sim.now,
            EventType.RUN_END,
            events_processed=sim.events_processed,
            makespan=metrics.as_dict()["makespan"],
        )

    volumes: List[Dict[str, Any]] = []
    if per_volume_metrics:
        tracked = set(metrics.volume_ids())
        for ns in mapper:
            entry: Dict[str, Any] = {
                "volume_id": ns.volume_id,
                "name": ns.name,
                "logical_blocks": ns.logical_blocks,
            }
            if ns.volume_id in tracked:
                entry.update(metrics.volume_as_dict(ns.volume_id))
            else:  # volume with no measured traffic
                entry["requests"] = 0
            volumes.append(entry)

    slo_stats: Optional[Dict[str, Any]] = None
    if sampler is not None:
        sampler.finish(sim.now)
        if config.slo is not None:
            slo_stats = evaluate_slo(config.slo, sampler.as_dict())

    timeline = getattr(scheme.cache, "epoch_timeline", [])
    return ReplayResult(
        trace_name=run_name,
        scheme_name=scheme.name,
        metrics=metrics,
        scheme_stats=scheme.stats(),
        utilisation=sim.utilisation(),
        capacity_blocks=scheme.capacity_blocks(),
        writes_total=scheme.writes_total - boundary["writes"],
        write_requests_removed=scheme.write_requests_removed - boundary["removed"],
        epoch_timeline=[
            e.as_dict() if hasattr(e, "as_dict") else dict(e) for e in timeline
        ],
        recorder=recorder,
        sanitizer=sanitizer,
        volumes=volumes,
        fault_stats=injector.summary() if injector is not None else None,
        timeline=sampler,
        spans=tracer,
        slo_stats=slo_stats,
        jobs_stats=jobs_runtime.summary() if jobs_runtime is not None else None,
    )
