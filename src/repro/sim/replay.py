"""Open-loop trace replay: trace + scheme + array -> response times.

Reproduces the paper's methodology (Section IV-A): requests are
injected at their trace timestamps (open loop -- a slow disk builds a
queue rather than slowing the workload down), the first part of the
trace warms the caches and is excluded from the metrics, and user
response time is completion minus arrival.

Per request, the scheme plans a :class:`PlannedIO`: a processing delay
(fingerprinting), the extent ops the request must wait for, and
optional background ops (iCache swap traffic) that load the disks
without gating completion.  Schemes with an ``epoch_interval`` get a
periodic callback for cache management.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.sanitizer import PodSanitizer
from repro.baselines.base import DedupScheme, PlannedIO
from repro.constants import BLOCKS_PER_STRIPE_UNIT
from repro.errors import ConfigError
from repro.metrics.collector import MetricsCollector
from repro.obs.events import EventType, TraceLevel
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.request import IORequest
from repro.storage.disk import Disk, DiskParams
from repro.storage.raid import RaidArray, RaidGeometry, RaidLevel
from repro.storage.scheduler import DiskScheduler, SchedulingPolicy
from repro.storage.ssd import Ssd, SsdParams
from repro.traces.format import Trace


@dataclass(frozen=True)
class ReplayConfig:
    """Array geometry and replay options.

    Defaults mirror the paper's main setup: a 4-disk RAID-5 with a
    64 KB stripe unit (Section IV-B).
    """

    raid_level: RaidLevel = RaidLevel.RAID5
    ndisks: int = 4
    stripe_unit_blocks: int = BLOCKS_PER_STRIPE_UNIT
    disk_params: Optional[DiskParams] = None
    #: Include warm-up requests in the metrics (diagnostics only).
    collect_warmup: bool = False
    #: Disk queue discipline.  ``None`` = the fast analytic FCFS path;
    #: a :class:`SchedulingPolicy` switches to event-driven service
    #: (FCFS for validation, CLOOK for the elevator ablation).
    scheduler: Optional[SchedulingPolicy] = None
    #: Run the RAID-5 array in degraded mode with this member failed:
    #: reads touching it reconstruct from the row's survivors.
    failed_disk: Optional[int] = None
    #: SSD staging device for SAR-style schemes (None = no SSD; a
    #: scheme emitting SSD traffic without one is a config error).
    ssd_params: Optional[SsdParams] = None
    #: Debug mode: run the :class:`~repro.analysis.sanitizer.PodSanitizer`
    #: against the scheme every :attr:`sanitize_every` requests, at every
    #: epoch boundary and at end of run, raising on the first broken POD
    #: invariant.  Observation only -- enabling this must not change a
    #: single simulated completion time.
    check_invariants: bool = False
    #: Structural-check cadence, in arrived requests.
    sanitize_every: int = 1000

    def geometry(self) -> RaidGeometry:
        return RaidGeometry(
            level=self.raid_level,
            ndisks=self.ndisks,
            stripe_unit_blocks=self.stripe_unit_blocks,
        )


@dataclass
class ReplayResult:
    """Everything one replay produced."""

    trace_name: str
    scheme_name: str
    metrics: MetricsCollector
    scheme_stats: dict
    utilisation: dict
    capacity_blocks: int
    writes_total: int
    write_requests_removed: int
    #: Per-epoch iCache decision records (list of dicts; empty for
    #: schemes without an adaptive cache).
    epoch_timeline: List[dict] = field(default_factory=list)
    #: The trace recorder used for this replay, when one was attached.
    recorder: Optional[TraceRecorder] = None
    #: The invariant sanitizer, when ``check_invariants`` was enabled
    #: (its ``summary()`` lands in run reports).
    sanitizer: Optional[PodSanitizer] = None

    @property
    def removed_write_pct(self) -> float:
        """Fig. 11's metric: % of write requests eliminated."""
        if self.writes_total == 0:
            return 0.0
        return self.write_requests_removed / self.writes_total * 100.0

    def summary(self) -> dict:
        out = {"trace": self.trace_name, "scheme": self.scheme_name}
        out.update(self.metrics.as_dict())
        out["capacity_blocks"] = self.capacity_blocks
        out["removed_write_pct"] = self.removed_write_pct
        return out


def _size_disks(total_volume_blocks: int, config: ReplayConfig) -> DiskParams:
    """Pick per-disk capacity so the array exposes the needed volume."""
    geometry = config.geometry()
    data_disks = geometry.data_disks
    su = geometry.stripe_unit_blocks
    units = math.ceil(total_volume_blocks / su)
    rows = math.ceil(units / data_disks)
    per_disk = (rows + 2) * su  # small slack row
    base = config.disk_params if config.disk_params is not None else DiskParams()
    if base.total_blocks >= per_disk:
        return base
    return DiskParams(
        total_blocks=per_disk,
        rpm=base.rpm,
        seek_min=base.seek_min,
        seek_max=base.seek_max,
        transfer_rate=base.transfer_rate,
        controller_overhead=base.controller_overhead,
    )


def replay_trace(
    trace: Trace,
    scheme: DedupScheme,
    config: ReplayConfig = ReplayConfig(),
    collector: Optional[MetricsCollector] = None,
    recorder: Optional[TraceRecorder] = None,
) -> ReplayResult:
    """Replay ``trace`` through ``scheme`` on the configured array.

    ``collector`` lets callers supply a richer collector (e.g.
    :class:`repro.metrics.analysis.DetailedCollector` for per-request
    samples); the default records summary statistics only.

    ``recorder`` attaches a :class:`~repro.obs.trace.TraceRecorder` to
    every layer (scheme, cache, engine).  Recording is observation
    only -- with any level, including ``OFF``, the simulated results
    are identical to an un-instrumented replay; the disabled path
    costs one integer compare per instrumentation site.
    """
    if trace.logical_blocks > scheme.regions.logical_blocks:
        raise ConfigError(
            f"trace touches {trace.logical_blocks} logical blocks but the "
            f"scheme was configured for {scheme.regions.logical_blocks}"
        )
    geometry = config.geometry()
    params = _size_disks(scheme.regions.total_blocks, config)
    disks = [Disk(params, disk_id=i) for i in range(geometry.ndisks)]
    schedulers = (
        [DiskScheduler(disk, config.scheduler) for disk in disks]
        if config.scheduler is not None
        else None
    )
    sim = Simulator(
        disks,
        RaidArray(geometry),
        schedulers=schedulers,
        failed_disk=config.failed_disk,
    )
    metrics = collector if collector is not None else MetricsCollector()
    ssd = Ssd(config.ssd_params) if config.ssd_params is not None else None

    obs = recorder if recorder is not None else NULL_RECORDER
    if recorder is not None:
        scheme.attach_observer(recorder)
        sim.attach_observer(recorder)

    sanitizer: Optional[PodSanitizer] = None
    if config.check_invariants:
        if config.sanitize_every <= 0:
            raise ConfigError("sanitize_every must be positive")
        sanitizer = PodSanitizer()
        sanitizer.attach(scheme)

    requests: List[IORequest] = list(trace.requests())
    for request in requests:
        sim.schedule_arrival(request.time, request)

    measured_from = trace.warmup_count
    if obs.level >= TraceLevel.SUMMARY:
        obs.emit(
            TraceLevel.SUMMARY,
            requests[0].time if requests else 0.0,
            EventType.RUN_START,
            trace=trace.name,
            scheme=scheme.name,
            requests=len(requests),
            warmup=measured_from,
        )

    def finish(request: IORequest, planned: PlannedIO, arrival: float) -> None:
        issue_time = sim.now

        ssd_done = issue_time
        if planned.ssd_read_blocks or planned.ssd_write_blocks:
            if ssd is None:
                raise ConfigError(
                    f"scheme {scheme.name} emitted SSD traffic but the replay "
                    "has no ssd_params configured"
                )
            if planned.ssd_read_blocks:
                ssd_done = ssd.service(issue_time, planned.ssd_read_blocks)
            if planned.ssd_write_blocks:
                ssd.service(issue_time, planned.ssd_write_blocks)  # background

        def complete(completion: float) -> None:
            completion = max(completion, ssd_done)
            measured = config.collect_warmup or request.req_id >= measured_from
            completed_at = max(completion, issue_time)
            if measured:
                metrics.record(
                    request,
                    arrival,
                    completed_at,
                    eliminated=planned.eliminated,
                    cache_hit_blocks=planned.cache_hit_blocks,
                    deduped_blocks=planned.deduped_blocks,
                )
            if obs.level >= TraceLevel.REQUEST:
                obs.emit(
                    TraceLevel.REQUEST,
                    completed_at,
                    EventType.REQUEST_COMPLETE,
                    req_id=request.req_id,
                    op=request.op.value,
                    nblocks=request.nblocks,
                    response=completed_at - arrival,
                    eliminated=planned.eliminated,
                    deduped_blocks=planned.deduped_blocks,
                    cache_hit_blocks=planned.cache_hit_blocks,
                    measured=measured,
                )

        sim.issue_volume_ops(planned.volume_ops, complete)
        if planned.background_ops:
            sim.issue_volume_ops(planned.background_ops, lambda _t: None)

    # Fig. 11 counts removed write requests over the measured day
    # only, so snapshot the scheme's counters at the warm-up boundary.
    boundary = {"writes": 0, "removed": 0, "taken": measured_from == 0}
    arrivals = {"count": 0}

    def on_arrival(now: float, request: IORequest) -> None:
        if not boundary["taken"] and request.req_id >= measured_from:
            boundary["writes"] = scheme.writes_total
            boundary["removed"] = scheme.write_requests_removed
            boundary["taken"] = True
        if obs.level >= TraceLevel.REQUEST:
            obs.emit(
                TraceLevel.REQUEST,
                now,
                EventType.REQUEST_ARRIVE,
                req_id=request.req_id,
                op=request.op.value,
                lba=request.lba,
                nblocks=request.nblocks,
            )
        planned = scheme.process(request, now)
        if sanitizer is not None:
            arrivals["count"] += 1
            if arrivals["count"] % config.sanitize_every == 0:
                sanitizer.assert_clean(scheme, now)
        if planned.delay > 0:
            sim.schedule_callback(now + planned.delay, finish, request, planned, now)
        else:
            finish(request, planned, now)

    # Periodic cache-management epochs (POD's iCache).
    if scheme.epoch_interval is not None and requests:
        interval = scheme.epoch_interval
        if interval <= 0:
            raise ConfigError("epoch interval must be positive")
        last_arrival = requests[-1].time

        def epoch_tick() -> None:
            ops = scheme.on_epoch(sim.now)
            if sanitizer is not None:
                # Epoch boundaries are where iCache repartitions; check
                # the partition budgets right after the move.
                sanitizer.assert_clean(scheme, sim.now)
            if ops:
                sim.issue_volume_ops(ops, lambda _t: None)
            next_time = sim.now + interval
            if next_time <= last_arrival + interval:
                sim.schedule_callback(next_time, epoch_tick)

        sim.schedule_callback(requests[0].time + interval, epoch_tick)

    sim.run(arrival_handler=on_arrival)

    if sanitizer is not None:
        sanitizer.assert_clean(scheme, sim.now)

    if obs.level >= TraceLevel.SUMMARY:
        obs.emit(
            TraceLevel.SUMMARY,
            sim.now,
            EventType.RUN_END,
            events_processed=sim.events_processed,
            makespan=metrics.as_dict()["makespan"],
        )

    timeline = getattr(scheme.cache, "epoch_timeline", [])
    return ReplayResult(
        trace_name=trace.name,
        scheme_name=scheme.name,
        metrics=metrics,
        scheme_stats=scheme.stats(),
        utilisation=sim.utilisation(),
        capacity_blocks=scheme.capacity_blocks(),
        writes_total=scheme.writes_total - boundary["writes"],
        write_requests_removed=scheme.write_requests_removed - boundary["removed"],
        epoch_timeline=[
            e.as_dict() if hasattr(e, "as_dict") else dict(e) for e in timeline
        ],
        recorder=recorder,
        sanitizer=sanitizer,
    )
