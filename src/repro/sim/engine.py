"""The discrete-event simulator core.

The engine owns the clock, the event queue, the member disks and the
RAID mapper.  Disks are serviced FCFS: because :meth:`Disk.service`
computes completion analytically from the disk's busy horizon, an op
*issued* at simulation time *t* starts at ``max(t, busy_until)`` --
ops are therefore served in issue order, which the event loop keeps
equal to timestamp order.

Higher layers interact through two calls:

* :meth:`Simulator.schedule_callback` -- run a function at a future
  simulated time (used for fingerprint delays, iCache epochs, request
  finalisation).
* :meth:`Simulator.service_volume_ops` -- translate volume extents
  through the RAID layer onto the disks and return the time at which
  the *last* of them completes (a request is done when all its disk
  ops are done).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.obs.events import EventType, TraceLevel
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.request import DiskOp
from repro.storage.disk import Disk
from repro.storage.raid import RaidArray
from repro.storage.volume import VolumeOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.scheduler import DiskScheduler

#: Fault-injection hook signature: consulted per disk op on the
#: analytic path; returns a completion time to override normal
#: service, or ``None`` to fall through.
FaultHook = Callable[["Simulator", float, DiskOp], Optional[float]]


class Simulator:
    """Discrete-event engine over a set of disks behind a RAID layer.

    Two disk-service modes:

    * **analytic FCFS** (default, ``schedulers=None``) -- completion
      times computed at issue time from each disk's busy horizon; fast
      and exact for FCFS.
    * **event-driven** -- pass per-disk
      :class:`~repro.storage.scheduler.DiskScheduler` objects and use
      :meth:`issue_disk_ops` / :meth:`issue_volume_ops`; ops complete
      via events, which permits reordering policies such as C-LOOK.
    """

    def __init__(
        self,
        disks: Sequence[Disk],
        raid: Optional[RaidArray],
        schedulers: Optional[Sequence["DiskScheduler"]] = None,
        failed_disk: Optional[int] = None,
    ) -> None:
        if raid is None:
            # Bare event-loop mode (clock + queue only): the caller owns
            # all disk state and services ops itself -- used by the
            # cluster replay, where each node has a private array.
            if disks:
                raise SimulationError("bare event-loop mode takes no disks")
            if schedulers:
                raise SimulationError("bare event-loop mode takes no schedulers")
            if failed_disk is not None:
                raise SimulationError("bare event-loop mode has no disks to fail")
        elif len(disks) != raid.geometry.ndisks:
            raise SimulationError(
                f"raid geometry wants {raid.geometry.ndisks} disks, got {len(disks)}"
            )
        self.disks: List[Disk] = list(disks)
        self.raid: Optional[RaidArray] = raid
        self.schedulers: Optional[List["DiskScheduler"]] = (
            list(schedulers) if schedulers is not None else None
        )
        if self.schedulers is not None and len(self.schedulers) != len(self.disks):
            raise SimulationError("need one scheduler per disk")
        self.failed_disk = failed_disk
        if failed_disk is not None and not (0 <= failed_disk < len(self.disks)):
            raise SimulationError(f"no member disk {failed_disk} to fail")
        self.queue = EventQueue()
        self.now: float = 0.0
        self.events_processed: int = 0
        #: Attached trace recorder (observation only; the disabled
        #: default costs one integer compare per guarded site).
        self.obs: TraceRecorder = NULL_RECORDER
        #: Fault-injection hook consulted per disk op on the analytic
        #: path: return a completion time to *override* normal service
        #: (the hook did the mechanical work itself, e.g. a failed
        #: read plus its parity reconstruction), or ``None`` to fall
        #: through.  ``None`` by default -- the healthy path pays one
        #: ``is not None`` test per op.
        self.fault_hook: Optional[FaultHook] = None

    def attach_observer(self, recorder: TraceRecorder) -> None:
        """Attach a trace recorder for disk-level micro-events."""
        self.obs = recorder

    def queue_lag(self, now: float) -> float:
        """Worst backlog across member disks: how far the busiest
        disk's busy horizon extends past ``now`` (0 when idle).  The
        timeline sampler records this as a per-window gauge."""
        lag = 0.0
        for disk in self.disks:
            d = disk.busy_until - now
            if d > lag:
                lag = d
        return lag

    def _translate(self, vop: VolumeOp) -> List[DiskOp]:
        if self.raid is None:
            raise SimulationError("bare event-loop engine cannot translate volume ops")
        if self.failed_disk is not None:
            return self.raid.map_degraded(vop, self.failed_disk)
        return self.raid.map(vop)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule_callback(
        self, time: float, fn: Callable[..., None], *args: object
    ) -> Event:
        """Run ``fn(*args)`` at simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"callback scheduled in the past ({time} < {self.now})")
        return self.queue.schedule(time, EventKind.CALLBACK, (fn, args))

    def schedule_arrival(self, time: float, payload: object) -> Event:
        """Schedule a REQUEST_ARRIVAL event (consumed by the replay
        harness's registered handler)."""
        return self.queue.schedule(time, EventKind.REQUEST_ARRIVAL, payload)

    # ------------------------------------------------------------------
    # disk service
    # ------------------------------------------------------------------

    def service_disk_ops(self, now: float, ops: Sequence[DiskOp]) -> float:
        """Issue raw per-disk ops FCFS; return the last completion time.

        An empty op list completes immediately at ``now``.
        """
        if self.schedulers is not None:
            raise SimulationError(
                "analytic service is unavailable with event-driven "
                "schedulers; use issue_disk_ops"
            )
        completion = now
        trace_ops = self.obs.level >= TraceLevel.CHUNK
        for op in ops:
            if not (0 <= op.disk_id < len(self.disks)):
                raise SimulationError(f"op addressed to unknown disk {op.disk_id}")
            if self.fault_hook is not None:
                hooked = self.fault_hook(self, now, op)
                if hooked is not None:
                    if hooked > completion:
                        completion = hooked
                    continue
            disk = self.disks[op.disk_id]
            busy_before = disk.busy_until if trace_ops else 0.0
            done = disk.service(now, op.pba, op.nblocks)
            if trace_ops:
                self.obs.emit(
                    TraceLevel.CHUNK,
                    now,
                    EventType.DISK_OP,
                    disk=op.disk_id,
                    op=op.op.value,
                    pba=op.pba,
                    nblocks=op.nblocks,
                    start=max(now, busy_before),
                    done=done,
                )
            if done > completion:
                completion = done
        return completion

    def service_volume_ops(self, now: float, ops: Sequence[VolumeOp]) -> float:
        """Translate volume extents through RAID and service them."""
        disk_ops: List[DiskOp] = []
        for vop in ops:
            disk_ops.extend(self._translate(vop))
        return self.service_disk_ops(now, disk_ops)

    # ------------------------------------------------------------------
    # callback-style issue (works in both service modes)
    # ------------------------------------------------------------------

    def issue_disk_ops(
        self, ops: Sequence[DiskOp], on_complete: Callable[[float], None]
    ) -> None:
        """Issue ops at the current time; ``on_complete(t)`` fires once
        the last of them is done.

        In analytic mode the callback runs synchronously with the
        computed (possibly future) completion timestamp; in event-
        driven mode it runs when the completion event fires, with the
        then-current clock.
        """
        if self.schedulers is None:
            on_complete(self.service_disk_ops(self.now, ops))
            return
        if not ops:
            on_complete(self.now)
            return
        state = {"left": len(ops)}

        def one_done() -> None:
            state["left"] -= 1
            if state["left"] == 0:
                on_complete(self.now)

        for op in ops:
            if not (0 <= op.disk_id < len(self.schedulers)):
                raise SimulationError(f"op addressed to unknown disk {op.disk_id}")
            self.schedulers[op.disk_id].submit(self, op, one_done)

    def issue_volume_ops(
        self, ops: Sequence[VolumeOp], on_complete: Callable[[float], None]
    ) -> None:
        """RAID-translate and issue with a completion callback."""
        disk_ops: List[DiskOp] = []
        for vop in ops:
            disk_ops.extend(self._translate(vop))
        self.issue_disk_ops(disk_ops, on_complete)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(
        self,
        arrival_handler: Optional[Callable[[float, object], None]] = None,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        arrival_handler:
            Called as ``handler(now, payload)`` for every
            REQUEST_ARRIVAL event.  Required if any are scheduled.
        until:
            Stop (leaving events queued) once the clock passes this.
        max_events:
            Safety valve for tests.
        """
        # Hot loop: hoist every invariant attribute/global into locals
        # (measured: the pop/dispatch overhead is paid once per event,
        # millions of times on production-size replays).
        queue = self.queue
        pop = queue.pop
        callback_kind = EventKind.CALLBACK
        arrival_kind = EventKind.REQUEST_ARRIVAL
        processed = self.events_processed
        try:
            while queue:
                if until is not None:
                    next_time = queue.peek_time()
                    if next_time is not None and next_time > until:
                        break
                event = pop()
                time = event.time
                if time < self.now:
                    raise SimulationError("event queue returned an event in the past")
                self.now = time
                processed += 1
                kind = event.kind
                if kind is callback_kind:
                    fn, args = event.payload
                    fn(*args)
                elif kind is arrival_kind:
                    if arrival_handler is None:
                        raise SimulationError("arrival event with no registered handler")
                    arrival_handler(time, event.payload)
                else:  # pragma: no cover - future event kinds
                    raise SimulationError(f"unhandled event kind {kind}")
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self.events_processed = processed

    # ------------------------------------------------------------------

    def utilisation(self) -> Dict[int, Dict[str, float]]:
        """Per-disk utilisation summary (for reports and debugging)."""
        return disk_utilisation(self.disks)


def disk_utilisation(disks: Sequence[Disk]) -> Dict[int, Dict[str, float]]:
    """Per-disk utilisation summary for any disk set.

    Shared by the engine and the columnar batch driver (which services
    disks without a :class:`Simulator`) so both report identically.
    """
    return {
        disk.disk_id: {
            "ops": disk.ops_serviced,
            "blocks": disk.blocks_moved,
            "busy_time": disk.busy_time,
            "seek_time": disk.seek_time_total,
            "rotation_time": disk.rotation_time_total,
            "transfer_time": disk.transfer_time_total,
        }
        for disk in disks
    }
