"""I/O request model.

An :class:`IORequest` is a block-granular read or write as seen at the
block-device interface, i.e. *after* the file-system / buffer-cache
layers (the FIU traces the paper replays were collected beneath the
buffer cache).  Write requests carry one fingerprint per 4 KB chunk;
the fingerprint stands in for the SHA-1 of the chunk's content, so two
chunks are duplicates iff their fingerprints are equal.

Both classes here are deliberately *not* dataclasses: the replay hot
path materialises one ``IORequest`` per trace record and several
``DiskOp`` objects per request, so they are hand-written ``__slots__``
classes (no per-instance ``__dict__``, no generated-``__init__``
indirection).  The columnar batch driver additionally constructs
requests through :meth:`IORequest.raw`, which skips re-validation of
fields the trace layer already validated.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from repro.constants import BLOCK_SIZE
from repro.errors import TraceError


class OpType(enum.Enum):
    """Direction of an I/O request."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IORequest:
    """A single block-level I/O request.

    Parameters
    ----------
    time:
        Arrival timestamp, in seconds from the start of the trace.
    op:
        :attr:`OpType.READ` or :attr:`OpType.WRITE`.
    lba:
        First logical block address, in 4 KB blocks.
    nblocks:
        Request length in 4 KB blocks (>= 1).
    fingerprints:
        For writes, a tuple with one content fingerprint per block.
        ``None`` for reads.
    req_id:
        Optional stable identifier (assigned by the replay harness).
    volume_id:
        Which logical volume (tenant namespace) issued the request.
        ``0`` for single-volume replays; the multi-volume replay
        driver assigns one id per merged trace stream.  Note that
        :attr:`lba` is interpreted in whatever address space the
        consumer operates on -- the replay harness hands schemes
        requests whose LBAs were already translated to the *global*
        (shared dedup domain) space by the
        :class:`~repro.storage.namespace.NamespaceMapper`.
    """

    __slots__ = ("time", "op", "lba", "nblocks", "fingerprints", "req_id", "volume_id")

    def __init__(
        self,
        time: float,
        op: OpType,
        lba: int,
        nblocks: int,
        fingerprints: Optional[Tuple[int, ...]] = None,
        req_id: int = -1,
        volume_id: int = 0,
    ) -> None:
        if nblocks < 1:
            raise TraceError(f"request length must be >= 1 block, got {nblocks}")
        if lba < 0:
            raise TraceError(f"negative LBA {lba}")
        if volume_id < 0:
            raise TraceError(f"negative volume id {volume_id}")
        if time < 0:
            raise TraceError(f"negative timestamp {time}")
        if op is OpType.WRITE:
            if fingerprints is None:
                raise TraceError("write request requires per-block fingerprints")
            if len(fingerprints) != nblocks:
                raise TraceError(
                    f"write of {nblocks} blocks carries "
                    f"{len(fingerprints)} fingerprints"
                )
        elif fingerprints is not None:
            raise TraceError("read request must not carry fingerprints")
        self.time = time
        self.op = op
        self.lba = lba
        self.nblocks = nblocks
        self.fingerprints = fingerprints
        self.req_id = req_id
        self.volume_id = volume_id

    @classmethod
    def raw(
        cls,
        time: float,
        op: OpType,
        lba: int,
        nblocks: int,
        fingerprints: Optional[Tuple[int, ...]],
        req_id: int,
        volume_id: int,
    ) -> "IORequest":
        """Construct without validation.

        Only for callers that re-materialise requests from an already
        validated source (a :class:`~repro.traces.format.Trace` checks
        every record in ``__post_init__``; the columnar layer round-
        trips through it) -- the hot path must not pay for the same
        checks twice.
        """
        self = cls.__new__(cls)
        self.time = time
        self.op = op
        self.lba = lba
        self.nblocks = nblocks
        self.fingerprints = fingerprints
        self.req_id = req_id
        self.volume_id = volume_id
        return self

    def __repr__(self) -> str:
        return (
            f"IORequest(time={self.time!r}, op={self.op!r}, lba={self.lba!r}, "
            f"nblocks={self.nblocks!r}, fingerprints={self.fingerprints!r}, "
            f"req_id={self.req_id!r}, volume_id={self.volume_id!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IORequest):
            return NotImplemented
        # Value equality over the record's fields (what the replaced
        # dataclass generated): timestamps here are trace *identity*,
        # not derived simulation times.
        return (
            self.time == other.time  # pod: ignore[POD003]
            and self.op is other.op
            and self.lba == other.lba
            and self.nblocks == other.nblocks
            and self.fingerprints == other.fingerprints
            and self.req_id == other.req_id
            and self.volume_id == other.volume_id
        )

    @property
    def size_bytes(self) -> int:
        """Request size in bytes."""
        return self.nblocks * BLOCK_SIZE

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ

    @property
    def end_lba(self) -> int:
        """One past the last LBA touched by this request."""
        return self.lba + self.nblocks

    def blocks(self) -> range:
        """Iterate the LBAs covered by this request."""
        return range(self.lba, self.lba + self.nblocks)

    @staticmethod
    def write(
        time: float,
        lba: int,
        fingerprints: Sequence[int],
        req_id: int = -1,
        volume_id: int = 0,
    ) -> "IORequest":
        """Convenience constructor for a write covering ``len(fingerprints)`` blocks."""
        return IORequest(
            time=time,
            op=OpType.WRITE,
            lba=lba,
            nblocks=len(fingerprints),
            fingerprints=tuple(fingerprints),
            req_id=req_id,
            volume_id=volume_id,
        )

    @staticmethod
    def read(
        time: float, lba: int, nblocks: int, req_id: int = -1, volume_id: int = 0
    ) -> "IORequest":
        """Convenience constructor for a read of ``nblocks`` blocks."""
        return IORequest(
            time=time,
            op=OpType.READ,
            lba=lba,
            nblocks=nblocks,
            req_id=req_id,
            volume_id=volume_id,
        )


class DiskOp:
    """A physical operation issued to one member disk.

    Produced by the RAID layer when it translates a volume-level
    extent operation; consumed by the engine, which serialises the
    per-disk queue and computes mechanical service times.  Value
    semantics (equality, hashing) are those of the frozen dataclass it
    replaced; instances are treated as immutable by convention.

    Attributes
    ----------
    disk_id:
        Index of the member disk.
    op:
        READ or WRITE (parity updates are writes).
    pba:
        First physical block address *on that disk*.
    nblocks:
        Length in blocks.
    """

    __slots__ = ("disk_id", "op", "pba", "nblocks")

    def __init__(self, disk_id: int, op: OpType, pba: int, nblocks: int) -> None:
        if nblocks < 1:
            raise TraceError(f"disk op length must be >= 1, got {nblocks}")
        if pba < 0:
            raise TraceError(f"negative PBA {pba}")
        self.disk_id = disk_id
        self.op = op
        self.pba = pba
        self.nblocks = nblocks

    def __repr__(self) -> str:
        return (
            f"DiskOp(disk_id={self.disk_id!r}, op={self.op!r}, "
            f"pba={self.pba!r}, nblocks={self.nblocks!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiskOp):
            return NotImplemented
        return (
            self.disk_id == other.disk_id
            and self.op is other.op
            and self.pba == other.pba
            and self.nblocks == other.nblocks
        )

    def __hash__(self) -> int:
        return hash((self.disk_id, self.op, self.pba, self.nblocks))
