"""I/O request model.

An :class:`IORequest` is a block-granular read or write as seen at the
block-device interface, i.e. *after* the file-system / buffer-cache
layers (the FIU traces the paper replays were collected beneath the
buffer cache).  Write requests carry one fingerprint per 4 KB chunk;
the fingerprint stands in for the SHA-1 of the chunk's content, so two
chunks are duplicates iff their fingerprints are equal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.constants import BLOCK_SIZE
from repro.errors import TraceError


class OpType(enum.Enum):
    """Direction of an I/O request."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class IORequest:
    """A single block-level I/O request.

    Parameters
    ----------
    time:
        Arrival timestamp, in seconds from the start of the trace.
    op:
        :attr:`OpType.READ` or :attr:`OpType.WRITE`.
    lba:
        First logical block address, in 4 KB blocks.
    nblocks:
        Request length in 4 KB blocks (>= 1).
    fingerprints:
        For writes, a tuple with one content fingerprint per block.
        ``None`` for reads.
    req_id:
        Optional stable identifier (assigned by the replay harness).
    volume_id:
        Which logical volume (tenant namespace) issued the request.
        ``0`` for single-volume replays; the multi-volume replay
        driver assigns one id per merged trace stream.  Note that
        :attr:`lba` is interpreted in whatever address space the
        consumer operates on -- the replay harness hands schemes
        requests whose LBAs were already translated to the *global*
        (shared dedup domain) space by the
        :class:`~repro.storage.namespace.NamespaceMapper`.
    """

    time: float
    op: OpType
    lba: int
    nblocks: int
    fingerprints: Optional[Tuple[int, ...]] = None
    req_id: int = field(default=-1)
    volume_id: int = 0

    def __post_init__(self) -> None:
        if self.nblocks < 1:
            raise TraceError(f"request length must be >= 1 block, got {self.nblocks}")
        if self.lba < 0:
            raise TraceError(f"negative LBA {self.lba}")
        if self.volume_id < 0:
            raise TraceError(f"negative volume id {self.volume_id}")
        if self.time < 0:
            raise TraceError(f"negative timestamp {self.time}")
        if self.op is OpType.WRITE:
            if self.fingerprints is None:
                raise TraceError("write request requires per-block fingerprints")
            if len(self.fingerprints) != self.nblocks:
                raise TraceError(
                    f"write of {self.nblocks} blocks carries "
                    f"{len(self.fingerprints)} fingerprints"
                )
        elif self.fingerprints is not None:
            raise TraceError("read request must not carry fingerprints")

    @property
    def size_bytes(self) -> int:
        """Request size in bytes."""
        return self.nblocks * BLOCK_SIZE

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ

    @property
    def end_lba(self) -> int:
        """One past the last LBA touched by this request."""
        return self.lba + self.nblocks

    def blocks(self) -> range:
        """Iterate the LBAs covered by this request."""
        return range(self.lba, self.lba + self.nblocks)

    @staticmethod
    def write(
        time: float,
        lba: int,
        fingerprints: Sequence[int],
        req_id: int = -1,
        volume_id: int = 0,
    ) -> "IORequest":
        """Convenience constructor for a write covering ``len(fingerprints)`` blocks."""
        return IORequest(
            time=time,
            op=OpType.WRITE,
            lba=lba,
            nblocks=len(fingerprints),
            fingerprints=tuple(fingerprints),
            req_id=req_id,
            volume_id=volume_id,
        )

    @staticmethod
    def read(
        time: float, lba: int, nblocks: int, req_id: int = -1, volume_id: int = 0
    ) -> "IORequest":
        """Convenience constructor for a read of ``nblocks`` blocks."""
        return IORequest(
            time=time,
            op=OpType.READ,
            lba=lba,
            nblocks=nblocks,
            req_id=req_id,
            volume_id=volume_id,
        )


@dataclass(frozen=True)
class DiskOp:
    """A physical operation issued to one member disk.

    Produced by the RAID layer when it translates a volume-level
    extent operation; consumed by the engine, which serialises the
    per-disk queue and computes mechanical service times.

    Attributes
    ----------
    disk_id:
        Index of the member disk.
    op:
        READ or WRITE (parity updates are writes).
    pba:
        First physical block address *on that disk*.
    nblocks:
        Length in blocks.
    """

    disk_id: int
    op: OpType
    pba: int
    nblocks: int

    def __post_init__(self) -> None:
        if self.nblocks < 1:
            raise TraceError(f"disk op length must be >= 1, got {self.nblocks}")
        if self.pba < 0:
            raise TraceError(f"negative PBA {self.pba}")
