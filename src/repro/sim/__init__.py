"""Discrete-event simulation substrate.

This subpackage provides the event engine that all experiments run on:

* :mod:`repro.sim.request` -- the I/O request model (block-granular
  reads and writes carrying per-chunk fingerprints).
* :mod:`repro.sim.events` -- the event queue.
* :mod:`repro.sim.engine` -- the simulator core: clock, disk service
  scheduling, request completion tracking.
* :mod:`repro.sim.replay` -- the open-loop trace replay harness that
  drives a deduplication scheme with a trace and collects metrics.
"""

from __future__ import annotations

from repro.sim.request import IORequest, OpType
from repro.sim.events import Event, EventKind, EventQueue

_LAZY_EXPORTS = {
    # Lazy: the engine depends on repro.storage (which imports
    # repro.sim.request) and replay depends on repro.baselines (which
    # also imports repro.sim.request); importing either eagerly here
    # would create a package-level cycle.
    "Simulator": "repro.sim.engine",
    "ReplayConfig": "repro.sim.replay",
    "ReplayResult": "repro.sim.replay",
    "replay_trace": "repro.sim.replay",
    "replay_traces": "repro.sim.replay",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "IORequest",
    "OpType",
    "Event",
    "EventKind",
    "EventQueue",
    "Simulator",
    "ReplayConfig",
    "ReplayResult",
    "replay_trace",
    "replay_traces",
]
